//! Static zap-vulnerability classification: the per-cell analogue of the
//! k=1 injection campaign.
//!
//! A **cell** is a (code address, fault site) pair: zap register `r` (or
//! `d`, or a pc, or a store-queue slot) in a machine state about to fetch
//! or execute the instruction at that address. Each cell is classified:
//!
//! * [`ZapClass::Detected`] — some path routes the corruption into a
//!   dual-compare (`stB`, `jmpB`, `bzB`, a `d`-guard, the fetch pc check),
//!   so the machine faults before corrupt data can escape; the corruption
//!   may also die or be masked first.
//! * [`ZapClass::Benign`] — the corruption provably dies (overwritten or
//!   never consumed) without meeting any compare: at worst a dissimilar
//!   final state, never a wrong output.
//! * [`ZapClass::Vulnerable`] — some path lets the corruption reach
//!   *both* sides of a compare (or the analysis had to bail), so a wrong
//!   output can be committed: potential silent data corruption.
//!
//! The soundness argument mirrors Theorem 4: outputs happen only at `stB`
//! commits and control transfers only at `jmpB`/`bzB` commits, all of
//! which compare a green value against a blue one. A single zap that
//! taints only one side either trips the compare (detected) or — because
//! the compare passed — held the golden value all along, which is why the
//! may-taint transfer *sanitizes* compared registers on pass edges.
//! `Detected`/`Benign` cells therefore admit no SDC, which is exactly what
//! [`cross_validate`](crate::diff::cross_validate) checks against the
//! dynamic [`FaultGrid`](talft_faultsim::FaultGrid).
//!
//! Special sites need no fixpoint:
//!
//! * **pc zaps** are detected by the very next fetch (`pcG` vs `pcB`),
//!   healed by a committed transfer (both pcs overwritten), or masked by
//!   `halt` — never silent. Classified `Detected` everywhere.
//! * **`d` zaps**: every consumer of `d` guards it (`jmpG`/`bzG`/untaken
//!   `bz` require `d = 0`; `jmpB`/taken `bzB` require `rd = d`), so the
//!   zap faults at the first consumer — `Detected` when a `jmp`/`bz` is
//!   reachable, `Benign` otherwise.
//!
//! The transfer function is **lane-generic**: the same may-taint semantics
//! propagate `L` independently-seeded taints in lockstep, with every
//! compare check taken over the lane *union*. `L = 1` is the classic k=1
//! classifier above; `L = 2` is the composition step of the pair-fault
//! analyzer ([`crate::pair`]), where the union check is exactly the
//! cooperation condition — two one-sided taints meeting opposite sides of
//! one compare.

use std::collections::{BTreeMap, BTreeSet};

use talft_isa::{Color, Gpr, Instr, OpSrc, Program};

use crate::cfg::Cfg;
use crate::live::{liveness, Liveness};
use crate::mask::{RegMask, MAX_GPRS};

/// Static verdict for one (address, site) cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ZapClass {
    /// Routed into a dual-compare: the machine faults (or masks) — no SDC.
    Detected,
    /// Provably dies without consequence — no SDC.
    Benign,
    /// May corrupt both sides of a compare: SDC possible.
    Vulnerable,
}

impl std::fmt::Display for ZapClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZapClass::Detected => write!(f, "detected"),
            ZapClass::Benign => write!(f, "benign"),
            ZapClass::Vulnerable => write!(f, "vulnerable"),
        }
    }
}

/// Static coverage over every reachable cell of a program.
#[derive(Debug, Clone, Default)]
pub struct ZapReport {
    /// GPR cells, keyed `(addr, register index)`.
    pub gpr: BTreeMap<(i64, u16), ZapClass>,
    /// Store-queue slot cells, keyed `(addr, slot index from the back)`
    /// (slot 0 = oldest = next to be popped by `stB`).
    pub queue: BTreeMap<(i64, usize), ZapClass>,
    /// pc cells (one per address; green and blue are symmetric).
    pub pc: BTreeMap<i64, ZapClass>,
    /// `d` (destination latch) cells.
    pub dst: BTreeMap<i64, ZapClass>,
    /// Set when the analyzer refused to classify (then all maps are empty).
    pub bailed: Option<String>,
}

impl ZapReport {
    fn classes(&self) -> impl Iterator<Item = ZapClass> + '_ {
        self.gpr
            .values()
            .chain(self.queue.values())
            .chain(self.pc.values())
            .chain(self.dst.values())
            .copied()
    }

    /// Cell counts as `(detected, benign, vulnerable)`.
    #[must_use]
    pub fn tally(&self) -> (usize, usize, usize) {
        let mut t = (0, 0, 0);
        for c in self.classes() {
            match c {
                ZapClass::Detected => t.0 += 1,
                ZapClass::Benign => t.1 += 1,
                ZapClass::Vulnerable => t.2 += 1,
            }
        }
        t
    }

    /// Total classified cells.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.classes().count()
    }

    /// Fraction of cells provably safe (detected or benign); the static
    /// analogue of campaign fault coverage. 1.0 for an empty report.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        let (d, b, v) = self.tally();
        let total = d + b + v;
        if total == 0 {
            1.0
        } else {
            (d + b) as f64 / total as f64
        }
    }

    /// Fraction of cells classified `Detected`.
    #[must_use]
    pub fn detected_fraction(&self) -> f64 {
        let (d, b, v) = self.tally();
        let total = d + b + v;
        if total == 0 {
            0.0
        } else {
            d as f64 / total as f64
        }
    }
}

/// The taint state: which locations *may* differ from the golden run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash, PartialOrd, Ord)]
pub(crate) struct Taint {
    /// Tainted GPRs.
    pub regs: RegMask,
    /// `d` may differ from golden.
    pub d: bool,
    /// Queue slots, bit 0 = back/oldest (the next `stB` pop).
    pub queue: u64,
}

impl Taint {
    pub(crate) fn any(self) -> bool {
        !self.regs.is_empty() || self.d || self.queue != 0
    }

    fn join(self, o: Taint) -> Taint {
        Taint {
            regs: self.regs | o.regs,
            d: self.d || o.d,
            queue: self.queue | o.queue,
        }
    }

    fn tr(self, g: Gpr) -> bool {
        self.regs.test(g.0)
    }

    fn set(&mut self, g: Gpr, tainted: bool) {
        if tainted {
            self.regs.set(g.0);
        } else {
            self.regs.clear(g.0);
        }
    }

    fn clear(&mut self, g: Gpr) {
        self.set(g, false);
    }
}

#[inline]
pub(crate) fn ix(addr: i64) -> usize {
    (addr - 1) as usize
}

/// Which side of a dual-compare a taint reaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Side {
    /// The compare state carried from the green half: a queue slot at
    /// `stB`, or the `d` latch at `jmpB`/`bzB`.
    Green,
    /// The blue register operand(s) the compare checks against.
    Blue,
}

/// One dual-compare a cell's taint may reach, and on which side — the
/// building block of the pair analyzer's taint-reach summaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Touch {
    /// Address of the comparing instruction (`stB`, `jmpB`, or `bzB`).
    pub at: i64,
    /// Which side of the compare the taint feeds.
    pub side: Side,
}

/// How a may-taint run defeats (or escapes) the fault detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VulnKind {
    /// Both sides of a `stB` compare tainted: a matched wrong pair commits.
    StoreCompare,
    /// `d` and the `jmpB` operand both tainted: a wrong transfer commits.
    JmpCompare,
    /// `d` and a `bzB` operand both tainted: wrong direction or target.
    BzCompare,
    /// A tainted push where the static queue depth is unknown or
    /// conflict-pessimized: the analysis cannot place the taint.
    QueuePush,
    /// Taint survives into an unresolvable blue transfer target.
    UnresolvedTarget,
}

/// Where and how the propagated taints defeat the detection, with lane
/// provenance (`bit i` = taint seeded in lane `i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Vuln {
    /// Address of the defeated compare (or escaping instruction).
    pub at: i64,
    /// What was defeated.
    pub kind: VulnKind,
    /// Lanes contributing the green/compare-state side.
    pub green: u8,
    /// Lanes contributing the blue/register side.
    pub blue: u8,
}

/// Build the CFG and liveness, then classify every reachable cell.
#[must_use]
pub fn analyze_zaps(program: &Program) -> ZapReport {
    let cfg = Cfg::build(program);
    let Some(live) = liveness(program, &cfg) else {
        return ZapReport {
            bailed: Some(format!(
                "{} GPRs exceed the {MAX_GPRS}-register taint mask",
                program.num_gprs
            )),
            ..ZapReport::default()
        };
    };
    analyze_zaps_with(program, &cfg, &live)
}

/// Per-address queue pessimism: `true` exactly at addresses reachable from
/// a depth-conflicting join (including the join itself). Only there does
/// the static queue indexing possibly disagree with some dynamic path;
/// blocks upstream of (or unrelated to) every conflict keep precise
/// queue-slot placement.
pub(crate) fn queue_pessimism(cfg: &Cfg) -> Vec<bool> {
    let mut p = vec![false; cfg.n];
    let mut work = Vec::new();
    for c in &cfg.depth_conflicts {
        if !p[ix(c.addr)] {
            p[ix(c.addr)] = true;
            work.push(c.addr);
        }
    }
    while let Some(a) = work.pop() {
        for &s in &cfg.succs[ix(a)] {
            if !p[ix(s)] {
                p[ix(s)] = true;
                work.push(s);
            }
        }
    }
    p
}

/// Classify every reachable cell against a prebuilt CFG and liveness.
#[must_use]
pub fn analyze_zaps_with(program: &Program, cfg: &Cfg, live: &Liveness) -> ZapReport {
    let mut report = ZapReport::default();
    if program.num_gprs > MAX_GPRS {
        report.bailed = Some(format!(
            "{} GPRs exceed the {MAX_GPRS}-register taint mask",
            program.num_gprs
        ));
        return report;
    }
    let cx = Ctx {
        program,
        cfg,
        pessimistic: &queue_pessimism(cfg),
    };
    let reaches_check = reaches_check(program, cfg);
    for a in 1..=cfg.n as i64 {
        if !cfg.reachable[ix(a)] {
            continue;
        }
        report.pc.insert(a, ZapClass::Detected);
        report.dst.insert(
            a,
            if reaches_check[ix(a)] {
                ZapClass::Detected
            } else {
                ZapClass::Benign
            },
        );
        for g in 0..program.num_gprs {
            let class = if !live.live_in[ix(a)].test(g) {
                // Dead registers are never read again: at worst a
                // dissimilar (non-output) final state.
                ZapClass::Benign
            } else {
                run_seed(
                    &cx,
                    a,
                    Taint {
                        regs: RegMask::bit(g),
                        ..Taint::default()
                    },
                )
            };
            report.gpr.insert((a, g), class);
        }
        if let Some(depth) = cfg.depth_in[ix(a)] {
            for slot in 0..depth {
                let class = if slot >= 64 {
                    ZapClass::Vulnerable
                } else {
                    run_seed(
                        &cx,
                        a,
                        Taint {
                            queue: 1u64 << slot,
                            ..Taint::default()
                        },
                    )
                };
                report.queue.insert((a, slot), class);
            }
        }
    }
    report
}

/// Per-address: can execution starting here reach any `jmp`/`bz` (all of
/// which guard `d`)?
fn reaches_check(program: &Program, cfg: &Cfg) -> Vec<bool> {
    let mut rc: Vec<bool> = program
        .instrs
        .iter()
        .map(|i| matches!(i, Instr::Jmp { .. } | Instr::Bz { .. }))
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for a in (1..=cfg.n as i64).rev() {
            if !rc[ix(a)] && cfg.succs[ix(a)].iter().any(|&s| rc[ix(s)]) {
                rc[ix(a)] = true;
                changed = true;
            }
        }
    }
    rc
}

/// Shared immutable inputs of a taint run.
pub(crate) struct Ctx<'a> {
    /// The program under analysis.
    pub program: &'a Program,
    /// Its control-flow graph.
    pub cfg: &'a Cfg,
    /// Per-address queue pessimism (see [`queue_pessimism`]).
    pub pessimistic: &'a [bool],
}

/// What a lane run should additionally record.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Record {
    /// Collect per-side dual-compare [`Touch`]es.
    pub touches: bool,
    /// Keep the full entry-state reach map.
    pub reach: bool,
}

/// Result of propagating `L` lane-seeded taints to a fixpoint.
pub(crate) struct LaneRun<const L: usize> {
    /// Set when the union taint defeats a compare (or escapes).
    pub vuln: Option<Vuln>,
    /// A tainted value flowed into some dual-compare or guard: a dynamic
    /// instance may fault there.
    pub checked: bool,
    /// Dual-compare touches (when [`Record::touches`]; deduplicated).
    pub touches: Vec<Touch>,
    /// May-taint at *entry* to each address with any surviving taint
    /// (when [`Record::reach`]; partial if the run aborted vulnerable).
    pub reach: BTreeMap<i64, [Taint; L]>,
}

/// Propagate `L` independently-seeded taints in lockstep to a fixpoint.
pub(crate) fn run_lanes<const L: usize>(
    cx: &Ctx,
    at: i64,
    seed: [Taint; L],
    record: Record,
) -> LaneRun<L> {
    let mut state: Vec<Option<[Taint; L]>> = vec![None; cx.cfg.n];
    state[ix(at)] = Some(seed);
    let mut work = vec![at];
    let mut probe = Probe {
        checked: false,
        record_touches: record.touches,
        touches: BTreeSet::new(),
    };
    let mut vuln = None;
    while let Some(a) = work.pop() {
        let t = state[ix(a)].expect("worklist entries have state");
        match transfer(cx, a, &t, &mut probe) {
            Err(v) => {
                vuln = Some(v);
                break;
            }
            Ok(edges) => {
                for (s, ts) in edges {
                    if !union(&ts).any() {
                        continue;
                    }
                    let merged = match state[ix(s)] {
                        None => ts,
                        Some(cur) => {
                            let mut m = cur;
                            for l in 0..L {
                                m[l] = m[l].join(ts[l]);
                            }
                            m
                        }
                    };
                    if state[ix(s)] != Some(merged) {
                        state[ix(s)] = Some(merged);
                        work.push(s);
                    }
                }
            }
        }
    }
    let reach = if record.reach {
        (1..=cx.cfg.n as i64)
            .filter_map(|a| state[ix(a)].map(|t| (a, t)))
            .collect()
    } else {
        BTreeMap::new()
    };
    LaneRun {
        vuln,
        checked: probe.checked,
        touches: probe.touches.into_iter().collect(),
        reach,
    }
}

/// Propagate one seeded taint to a fixpoint; classify the cell.
fn run_seed(cx: &Ctx, at: i64, seed: Taint) -> ZapClass {
    let run = run_lanes::<1>(cx, at, [seed], Record::default());
    if run.vuln.is_some() {
        ZapClass::Vulnerable
    } else if run.checked {
        ZapClass::Detected
    } else {
        ZapClass::Benign
    }
}

/// Mutable observations of one run: the `checked` flag and (optionally)
/// the dual-compare touch set.
struct Probe {
    checked: bool,
    record_touches: bool,
    touches: BTreeSet<Touch>,
}

impl Probe {
    fn touch(&mut self, at: i64, side: Side) {
        self.checked = true;
        if self.record_touches {
            self.touches.insert(Touch { at, side });
        }
    }
}

fn union<const L: usize>(t: &[Taint; L]) -> Taint {
    t.iter().fold(Taint::default(), |u, &l| u.join(l))
}

/// Bitmask of lanes satisfying `f`.
fn lanes<const L: usize>(t: &[Taint; L], f: impl Fn(&Taint) -> bool) -> u8 {
    let mut m = 0u8;
    for (i, l) in t.iter().enumerate() {
        if f(l) {
            m |= 1 << i;
        }
    }
    m
}

/// One instruction's taint transfer over `L` lanes. Dataflow is linear in
/// the taint, so lane states update independently; every compare check is
/// taken over the lane **union** (a dynamic state carries all seeded
/// corruptions at once), with pass edges sanitizing compared values (the
/// compare passing proves they held golden values). `checked` fires
/// whenever any tainted value flows into a dual-compare or guard.
fn transfer<const L: usize>(
    cx: &Ctx,
    a: i64,
    t: &[Taint; L],
    probe: &mut Probe,
) -> Result<Vec<(i64, [Taint; L])>, Vuln> {
    let program = cx.program;
    let fall = |t: [Taint; L]| -> Vec<(i64, [Taint; L])> {
        if program.is_code_addr(a + 1) {
            vec![(a + 1, t)]
        } else {
            Vec::new()
        }
    };
    // Follow a committed blue transfer; with an unresolved target the
    // analysis cannot continue — surviving taint means "anything may
    // happen", so bail.
    let goto_blue = |out: [Taint; L]| -> Result<Vec<(i64, [Taint; L])>, Vuln> {
        match cx.cfg.blue_target[ix(a)] {
            Some(tgt) if program.is_code_addr(tgt) => Ok(vec![(tgt, out)]),
            _ if union(&out).any() => Err(Vuln {
                at: a,
                kind: VulnKind::UnresolvedTarget,
                green: lanes(&out, |l| l.any()),
                blue: 0,
            }),
            _ => Ok(Vec::new()),
        }
    };
    let u = union(t);
    match program.instrs[ix(a)] {
        Instr::Op { rd, rs, src2, .. } => {
            let mut o = *t;
            for l in o.iter_mut() {
                let taint = l.tr(rs)
                    || match src2 {
                        OpSrc::Reg(rt) => l.tr(rt),
                        OpSrc::Imm(_) => false,
                    };
                l.set(rd, taint);
            }
            Ok(fall(o))
        }
        Instr::Mov { rd, .. } => {
            let mut o = *t;
            for l in o.iter_mut() {
                l.clear(rd);
            }
            Ok(fall(o))
        }
        Instr::Ld {
            color: Color::Green,
            rd,
            rs,
        } => {
            // ldG snoops the queue by address: any tainted slot may alias.
            let mut o = *t;
            for l in o.iter_mut() {
                l.set(rd, l.tr(rs) || l.queue != 0);
            }
            Ok(fall(o))
        }
        Instr::Ld {
            color: Color::Blue,
            rd,
            rs,
        } => {
            let mut o = *t;
            for l in o.iter_mut() {
                l.set(rd, l.tr(rs));
            }
            Ok(fall(o))
        }
        Instr::St {
            color: Color::Green,
            rd,
            rs,
        } => {
            let mut o = *t;
            if u.tr(rd) || u.tr(rs) {
                // Place each lane's tainted pair at the front of the queue,
                // i.e. at bit `depth` counting from the back.
                match cx.cfg.depth_in[ix(a)] {
                    Some(depth) if depth < 64 && !cx.pessimistic[ix(a)] => {
                        for l in o.iter_mut() {
                            if l.tr(rd) || l.tr(rs) {
                                l.queue |= 1u64 << depth;
                            }
                        }
                    }
                    _ => {
                        return Err(Vuln {
                            at: a,
                            kind: VulnKind::QueuePush,
                            green: lanes(t, |l| l.tr(rd) || l.tr(rs)),
                            blue: 0,
                        })
                    }
                }
            }
            Ok(fall(o))
        }
        Instr::St {
            color: Color::Blue,
            rd,
            rs,
        } => {
            let slot = lanes(t, |l| l.queue & 1 != 0);
            let regs = lanes(t, |l| l.tr(rd) || l.tr(rs));
            if slot != 0 && regs != 0 {
                // Queue entry and compare registers both corrupt: the
                // compare can pass on a non-golden pair — SDC.
                return Err(Vuln {
                    at: a,
                    kind: VulnKind::StoreCompare,
                    green: slot,
                    blue: regs,
                });
            }
            if slot != 0 {
                probe.touch(a, Side::Green);
            }
            if regs != 0 {
                probe.touch(a, Side::Blue);
            }
            let mut o = *t;
            for l in o.iter_mut() {
                l.queue >>= 1;
                l.clear(rd);
                l.clear(rs);
            }
            Ok(fall(o))
        }
        Instr::Jmp {
            color: Color::Green,
            rd,
        } => {
            if u.d {
                // jmpG requires d = 0; a corrupt d faults here.
                probe.checked = true;
            }
            let mut o = *t;
            for l in o.iter_mut() {
                l.d = l.tr(rd);
            }
            Ok(fall(o))
        }
        Instr::Jmp {
            color: Color::Blue,
            rd,
        } => {
            let d = lanes(t, |l| l.d);
            let regs = lanes(t, |l| l.tr(rd));
            if d != 0 && regs != 0 {
                return Err(Vuln {
                    at: a,
                    kind: VulnKind::JmpCompare,
                    green: d,
                    blue: regs,
                });
            }
            if d != 0 {
                probe.touch(a, Side::Green);
            }
            if regs != 0 {
                probe.touch(a, Side::Blue);
            }
            let mut o = *t;
            for l in o.iter_mut() {
                l.d = false;
                l.clear(rd);
            }
            goto_blue(o)
        }
        Instr::Bz {
            color: Color::Green,
            rz,
            rd,
        } => {
            if u.d {
                // Both arms of bzG require d = 0.
                probe.checked = true;
            }
            let mut o = *t;
            for l in o.iter_mut() {
                // A corrupt rz flips whether d latches; a corrupt rd
                // latches a wrong target. Either way d may now differ
                // from golden.
                l.d = l.tr(rz) || l.tr(rd);
            }
            Ok(fall(o))
        }
        Instr::Bz {
            color: Color::Blue,
            rz,
            rd,
        } => {
            let d = lanes(t, |l| l.d);
            let regs = lanes(t, |l| l.tr(rz) || l.tr(rd));
            if d != 0 && regs != 0 {
                // d plus a blue operand corrupt: a wrong-target commit or
                // a silent wrong-direction fall-through becomes possible.
                return Err(Vuln {
                    at: a,
                    kind: VulnKind::BzCompare,
                    green: d,
                    blue: regs,
                });
            }
            if d != 0 {
                probe.touch(a, Side::Green);
            }
            if regs != 0 {
                probe.touch(a, Side::Blue);
            }
            // One-sided taint cannot flip the branch direction (the d
            // guard catches it), so both CFG edges correspond to golden
            // directions. Untaken keeps operand taint; taken compares
            // rd = d and rz = 0, proving them golden.
            let mut untaken = *t;
            for l in untaken.iter_mut() {
                l.d = false;
            }
            let mut taken = *t;
            for l in taken.iter_mut() {
                l.d = false;
                l.clear(rz);
                l.clear(rd);
            }
            let mut edges = fall(untaken);
            edges.extend(goto_blue(taken)?);
            Ok(edges)
        }
        Instr::Halt => Ok(Vec::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use talft_isa::assemble;

    const STORE: &str = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  mov r3, B 5
  mov r4, B 4096
  stB r4, r3
  halt
"#;

    #[test]
    fn protected_store_has_no_vulnerable_cells() {
        let asm = assemble(STORE).expect("assembles");
        let report = analyze_zaps(&asm.program);
        assert!(report.bailed.is_none());
        let (d, b, v) = report.tally();
        assert_eq!(v, 0, "duplicated store is single-fault safe");
        assert!(d > 0 && b > 0);
        // r1 feeds the green store side: zapping it right after its def
        // is caught by the stB compare.
        assert_eq!(report.gpr.get(&(2, 1)), Some(&ZapClass::Detected));
        // The queued pair between stG and stB is guarded by the pop.
        assert_eq!(report.queue.get(&(4, 0)), Some(&ZapClass::Detected));
        // pc zaps always hit the fetch comparison.
        assert!(report.pc.values().all(|&c| c == ZapClass::Detected));
    }

    #[test]
    fn unduplicated_store_is_vulnerable() {
        // One register feeds *both* sides of the store pair: a single zap
        // of r1 between stG and stB corrupts both compare sides at once.
        let src = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  stB r2, r1
  halt
"#;
        let asm = assemble(src).expect("assembles");
        let report = analyze_zaps(&asm.program);
        // Zapping r1 *before* the stG poisons the queued pair and the
        // register the stB will compare against it — both sides corrupt.
        assert_eq!(
            report.gpr.get(&(3, 1)),
            Some(&ZapClass::Vulnerable),
            "shared store operand defeats the dual compare"
        );
        // Zapping r1 *after* the push only corrupts the register side:
        // the compare against the golden queued pair catches it.
        assert_eq!(report.gpr.get(&(4, 1)), Some(&ZapClass::Detected));
        let (_, _, v) = report.tally();
        assert!(v > 0);
    }

    /// Satellite: programs wider than 64 GPRs now get real per-cell
    /// verdicts from the two-word mask instead of a whole-report bail.
    #[test]
    fn wide_programs_are_classified_not_bailed() {
        let src = r#"
.gprs 128
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r100, G 5
  mov r2, G 4096
  stG r2, r100
  mov r101, B 5
  mov r4, B 4096
  stB r4, r101
  halt
"#;
        let asm = assemble(src).expect("assembles");
        assert!(asm.program.num_gprs > 64);
        let report = analyze_zaps(&asm.program);
        assert!(report.bailed.is_none(), "two-word mask covers 128 GPRs");
        let (d, b, v) = report.tally();
        assert_eq!(v, 0, "duplicated wide store is single-fault safe");
        assert!(d > 0 && b > 0);
        // The high-word register feeding the green store side is caught
        // by the stB compare, exactly like its low-word twin.
        assert_eq!(report.gpr.get(&(2, 100)), Some(&ZapClass::Detected));
        // Past MAX_GPRS the analyzer still bails.
        let too_wide = src.replace(".gprs 128", ".gprs 200");
        let asm = assemble(&too_wide).expect("assembles");
        assert!(analyze_zaps(&asm.program).bailed.is_some());
    }

    /// Satellite: a depth-conflicting join pessimizes only its downstream
    /// blocks; protected stores upstream keep precise verdicts.
    #[test]
    fn queue_pessimism_is_per_block() {
        // `main` is the protected STORE block; it falls through into
        // `mid`, whose annotation claims queue depth 1 while propagation
        // says 0 — a conflict at `mid`. Under the old whole-program bail
        // every tainted push turned Vulnerable; now only `mid` and its
        // successors are pessimized.
        let src = r#"
.data
region out at 4096 len 2 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  mov r3, B 5
  mov r4, B 4096
  stB r4, r3
mid:
  .pre { forall m:mem; mem: m; queue: [(4097, 7)]; }
  mov r5, G 6
  mov r6, G 4097
  stG r6, r5
  mov r7, B 6
  mov r8, B 4097
  stB r8, r7
  halt
"#;
        let asm = assemble(src).expect("assembles");
        let cfg = Cfg::build(&asm.program);
        assert!(
            !cfg.depth_conflicts.is_empty(),
            "fixture must exhibit a depth conflict"
        );
        let p = queue_pessimism(&cfg);
        assert!(!p[ix(3)], "main's stG is upstream of every conflict");
        let report = analyze_zaps(&asm.program);
        assert!(report.bailed.is_none());
        // Upstream protected store: precise, exactly as in STORE.
        assert_eq!(report.gpr.get(&(2, 1)), Some(&ZapClass::Detected));
        assert_eq!(report.queue.get(&(4, 0)), Some(&ZapClass::Detected));
        // Downstream of the conflict, a tainted push cannot be placed:
        // the store-operand cell before mid's stG goes Vulnerable.
        let jst = 9; // mid's stG address
        assert!(p[ix(jst)], "mid block is pessimized");
        assert_eq!(report.gpr.get(&(jst - 1, 5)), Some(&ZapClass::Vulnerable));
    }
}
