//! Compositional k=2 **pair-fault** static analyzer: classify (cell, cell)
//! fault pairs as Detected/Benign/Vulnerable without dynamically
//! enumerating the quadratic strike product.
//!
//! # Two phases
//!
//! **Phase 1 — per-cell taint-reach summaries.** For each fault cell the
//! k=1 may-taint pass ([`crate::zap`]) is run once more in recording mode,
//! producing a [`Touch`] set (which dual-compares the cell's taint can
//! reach, and on which side — green compare state or blue register
//! operands — after all sanitizing pass-edges) plus the full *entry-state
//! reach map*: the joined taint surviving at entry to every address.
//!
//! **Phase 2 — pairwise composition.** The zap transfer is *linear* in the
//! taint, so two corruptions propagate independently except at the compare
//! checks, which read the lane **union**. Composing a pair therefore seeds
//! a two-lane run at the second strike's address with
//! `[reach₁(addr₂), seed₂]` and reuses the exact same transfer. The three
//! cooperation rules that make k=2 different from two independent k=1s
//! fall out structurally:
//!
//! * **(a) opposite sides** — the lanes taint opposite sides of one
//!   compare, so a matched wrong pair can pass `stB`/`jmpB`/`bzB`
//!   ([`PairRule::OppositeSides`]);
//! * **(b) detector strike** — the second strike lands on the detector
//!   state itself (`d`, or a queue slot holding the compare operand)
//!   while the first fault's taint feeds the other side
//!   ([`PairRule::DetectorStrike`] — same union check, the detector cell
//!   *is* the green lane);
//! * **(c) sequencing** — a strike after the first fault's taint is dead
//!   (sanitized or overwritten everywhere) cannot cooperate with it:
//!   `reach₁(addr₂) = ∅` makes the composition degenerate to two
//!   independent k=1 verdicts.
//!
//! A cheap **screen** avoids almost all two-lane runs: after filtering
//! pairs with a k=1-Vulnerable member, a composed run can only fail a
//! compare with the lanes on *opposite* sides (a lane supplying both sides
//! alone would already be k=1 Vulnerable, and each composed lane's states
//! are a subset of its solo fixpoint). So unless the two touch summaries
//! share a compare address with opposite sides, the pair is safe with no
//! fixpoint at all — and group-level counting over touch signatures makes
//! full-program pair reports near-linear instead of quadratic.
//!
//! pc cells short-circuit phase 2: a single pc zap is caught at the next
//! fetch comparison and contributes no data taint, so a (pc, x) pair is
//! exactly as dangerous as `x` alone; a (pc, pc) pair is conservatively
//! [`PairClass::Vulnerable`] (two strikes may re-equalize a diverged fetch
//! pair — [`PairRule::PcPair`]).
//!
//! Soundness is the k=1 argument once more, over unions: every verdict is
//! a may-analysis over-approximation, so a statically Detected/Benign pair
//! admits no SDC — the invariant
//! [`cross_validate_pairs`](crate::diff::cross_validate_pairs) checks
//! against exhaustive and sampled k=2 campaign grids.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::rc::Rc;

use talft_core::Diagnostic;
use talft_isa::Program;

use crate::cfg::Cfg;
use crate::lint::LINT_PAIR_HOTSPOT;
use crate::live::liveness;
use crate::zap::{
    analyze_zaps_with, queue_pessimism, run_lanes, Ctx, Record, Side, Taint, Touch, Vuln, VulnKind,
    ZapClass, ZapReport,
};

/// Pair verdicts reuse the per-cell scale: a pair is `Vulnerable` when the
/// two corruptions may cooperate into an SDC, `Detected`/`Benign`
/// otherwise.
pub type PairClass = ZapClass;

/// One fault cell: a (code address, site) coordinate in the static grid,
/// matching the keys of [`ZapReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cell {
    /// GPR `r{reg}` zapped at entry to `addr`.
    Gpr {
        /// Code address about to execute.
        addr: i64,
        /// Register index.
        reg: u16,
    },
    /// Store-queue slot (from the back; 0 = oldest) zapped at entry.
    Queue {
        /// Code address about to execute.
        addr: i64,
        /// Slot index from the back.
        slot: usize,
    },
    /// A pc (green or blue — symmetric) zapped at entry.
    Pc {
        /// Code address about to execute.
        addr: i64,
    },
    /// The `d` destination latch zapped at entry.
    D {
        /// Code address about to execute.
        addr: i64,
    },
}

impl Cell {
    /// The code address the strike lands at.
    #[must_use]
    pub fn addr(self) -> i64 {
        match self {
            Cell::Gpr { addr, .. }
            | Cell::Queue { addr, .. }
            | Cell::Pc { addr }
            | Cell::D { addr } => addr,
        }
    }
}

impl std::fmt::Display for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Cell::Gpr { addr, reg } => write!(f, "r{reg}@{addr}"),
            Cell::Queue { addr, slot } => write!(f, "queue[{slot}]@{addr}"),
            Cell::Pc { addr } => write!(f, "pc@{addr}"),
            Cell::D { addr } => write!(f, "d@{addr}"),
        }
    }
}

/// Why a pair is `Vulnerable` (the cooperation-rule taxonomy), or how a
/// degenerate pair resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PairRule {
    /// One member is already k=1 Vulnerable: no cooperation needed.
    SingleVulnerable,
    /// Rule (a): the taints reach opposite sides of the compare at `at`.
    OppositeSides {
        /// Address of the defeatable compare.
        at: i64,
    },
    /// Rule (b): one strike corrupts the detector state itself (`d` or a
    /// queue slot) feeding the compare at `at` while the other taints the
    /// opposing side.
    DetectorStrike {
        /// Address of the defeatable compare.
        at: i64,
    },
    /// Two pc strikes may re-equalize a diverged fetch pair (conservative).
    PcPair,
    /// The union taint escapes classification at `at` (an unplaceable
    /// queue push or an unresolved blue target) — defensive; a lane doing
    /// this alone would already be k=1 Vulnerable.
    Escape {
        /// Address of the escaping instruction.
        at: i64,
    },
}

impl PairRule {
    /// The defeated compare's address, when the rule names one.
    #[must_use]
    pub fn compare_addr(self) -> Option<i64> {
        match self {
            PairRule::OppositeSides { at } | PairRule::DetectorStrike { at } => Some(at),
            _ => None,
        }
    }
}

impl std::fmt::Display for PairRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PairRule::SingleVulnerable => write!(f, "single-vulnerable member"),
            PairRule::OppositeSides { at } => {
                write!(f, "opposite sides of the compare at {at}")
            }
            PairRule::DetectorStrike { at } => {
                write!(f, "detector strike at the compare at {at}")
            }
            PairRule::PcPair => write!(f, "pc pair may re-equalize fetch"),
            PairRule::Escape { at } => write!(f, "union taint escapes at {at}"),
        }
    }
}

/// A classified pair: the verdict plus (for `Vulnerable`) the rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairVerdict {
    /// The pair's static class.
    pub class: PairClass,
    /// Why, when `Vulnerable` (`None` for safe pairs).
    pub rule: Option<PairRule>,
}

/// Phase-1 summary of one cell's solo taint run (its class lives in the
/// k=1 report; `run_lanes` on the same seed reproduces it).
struct Summary {
    touches: BTreeSet<Touch>,
    /// Entry-state may-taint wherever the cell's corruption survives.
    reach: BTreeMap<i64, Taint>,
}

/// The pair-fault analyzer: owns the CFG, the k=1 report, and memoized
/// phase-1 summaries; composes pairs on demand.
pub struct PairAnalyzer<'a> {
    program: &'a Program,
    cfg: Cfg,
    pessimistic: Vec<bool>,
    k1: ZapReport,
    summaries: HashMap<Cell, Rc<Summary>>,
    /// Composition results keyed by the only state they depend on.
    composed: HashMap<(Taint, i64, Taint), Option<Vuln>>,
    /// Two-lane fixpoints actually run (memo misses) — a cost diagnostic.
    fixpoints: u64,
}

impl<'a> PairAnalyzer<'a> {
    /// Build the CFG, run the k=1 classifier, and prepare for pair
    /// queries. A program too wide for the taint mask yields a bailed
    /// analyzer: [`PairAnalyzer::classify_pair`] then answers `None`.
    #[must_use]
    pub fn new(program: &'a Program) -> PairAnalyzer<'a> {
        let cfg = Cfg::build(program);
        let k1 = match liveness(program, &cfg) {
            Some(live) => analyze_zaps_with(program, &cfg, &live),
            None => ZapReport {
                bailed: Some(format!("{} GPRs exceed the taint mask", program.num_gprs)),
                ..ZapReport::default()
            },
        };
        let pessimistic = queue_pessimism(&cfg);
        PairAnalyzer {
            program,
            cfg,
            pessimistic,
            k1,
            summaries: HashMap::new(),
            composed: HashMap::new(),
            fixpoints: 0,
        }
    }

    /// The underlying per-cell k=1 report.
    #[must_use]
    pub fn k1(&self) -> &ZapReport {
        &self.k1
    }

    /// Why the analyzer refused, if it did.
    #[must_use]
    pub fn bailed(&self) -> Option<&str> {
        self.k1.bailed.as_deref()
    }

    /// Every classified cell, in deterministic order.
    #[must_use]
    pub fn cells(&self) -> Vec<Cell> {
        let mut v = Vec::new();
        v.extend(self.k1.pc.keys().map(|&addr| Cell::Pc { addr }));
        v.extend(self.k1.dst.keys().map(|&addr| Cell::D { addr }));
        v.extend(
            self.k1
                .gpr
                .keys()
                .map(|&(addr, reg)| Cell::Gpr { addr, reg }),
        );
        v.extend(
            self.k1
                .queue
                .keys()
                .map(|&(addr, slot)| Cell::Queue { addr, slot }),
        );
        v
    }

    /// The cell's k=1 class, when the static grid covers it.
    #[must_use]
    pub fn k1_class(&self, cell: Cell) -> Option<ZapClass> {
        match cell {
            Cell::Gpr { addr, reg } => self.k1.gpr.get(&(addr, reg)).copied(),
            Cell::Queue { addr, slot } => self.k1.queue.get(&(addr, slot)).copied(),
            Cell::Pc { addr } => self.k1.pc.get(&addr).copied(),
            Cell::D { addr } => self.k1.dst.get(&addr).copied(),
        }
    }

    fn seed(cell: Cell) -> Option<Taint> {
        match cell {
            Cell::Gpr { reg, .. } => Some(Taint {
                regs: crate::mask::RegMask::bit(reg),
                ..Taint::default()
            }),
            Cell::Queue { slot, .. } => {
                if slot < 64 {
                    Some(Taint {
                        queue: 1u64 << slot,
                        ..Taint::default()
                    })
                } else {
                    None
                }
            }
            Cell::D { .. } => Some(Taint {
                d: true,
                ..Taint::default()
            }),
            Cell::Pc { .. } => None,
        }
    }

    fn ctx(&self) -> Ctx<'_> {
        Ctx {
            program: self.program,
            cfg: &self.cfg,
            pessimistic: &self.pessimistic,
        }
    }

    fn summary(&mut self, cell: Cell) -> Rc<Summary> {
        if let Some(s) = self.summaries.get(&cell) {
            return Rc::clone(s);
        }
        let seed = Self::seed(cell).expect("summaries only for data cells");
        let run = run_lanes::<1>(
            &self.ctx(),
            cell.addr(),
            [seed],
            Record {
                touches: true,
                reach: true,
            },
        );
        let s = Rc::new(Summary {
            touches: run.touches.into_iter().collect(),
            reach: run.reach.into_iter().map(|(a, [t])| (a, t)).collect(),
        });
        self.summaries.insert(cell, Rc::clone(&s));
        s
    }

    /// Phase 2 for one ordered `(first strike, second strike)`: seed a
    /// two-lane run at the second address with the first cell's residual
    /// reach. `None` when the strikes cannot interact (rule c).
    fn compose(&mut self, first: Cell, second: Cell) -> Option<Vuln> {
        let residual = *self.summary(first).reach.get(&second.addr())?;
        let seed2 = Self::seed(second)?;
        let key = (residual, second.addr(), seed2);
        if let Some(&v) = self.composed.get(&key) {
            return v;
        }
        let run = run_lanes::<2>(
            &self.ctx(),
            second.addr(),
            [residual, seed2],
            Record::default(),
        );
        self.fixpoints += 1;
        self.composed.insert(key, run.vuln);
        run.vuln
    }

    fn rule_of(v: Vuln, first: Cell, second: Cell) -> PairRule {
        match v.kind {
            VulnKind::StoreCompare | VulnKind::JmpCompare | VulnKind::BzCompare => {
                // The strike *on* the detector state is the green lane: a
                // queue-slot cell at stB, or the d latch at jmpB/bzB.
                let detector = |c: Cell, lanes: u8, bit: u8| {
                    lanes & bit != 0 && matches!(c, Cell::Queue { .. } | Cell::D { .. })
                };
                if detector(first, v.green, 1) || detector(second, v.green, 2) {
                    PairRule::DetectorStrike { at: v.at }
                } else {
                    PairRule::OppositeSides { at: v.at }
                }
            }
            VulnKind::QueuePush | VulnKind::UnresolvedTarget => PairRule::Escape { at: v.at },
        }
    }

    /// Classify an unordered pair of cells. `None` when the analyzer
    /// bailed or the static grid does not cover a member. A strike pair
    /// is `Vulnerable` iff *some* strike order may cooperate into an SDC;
    /// both orders are composed, so callers need not order by step.
    pub fn classify_pair(&mut self, a: Cell, b: Cell) -> Option<PairVerdict> {
        if self.bailed().is_some() {
            return None;
        }
        let ca = self.k1_class(a)?;
        let cb = self.k1_class(b)?;
        // pc strikes carry no data taint and are caught at the next fetch
        // compare — unless both pcs are struck.
        match (a, b) {
            (Cell::Pc { .. }, Cell::Pc { .. }) => {
                return Some(PairVerdict {
                    class: PairClass::Vulnerable,
                    rule: Some(PairRule::PcPair),
                })
            }
            (Cell::Pc { .. }, _) | (_, Cell::Pc { .. }) => {
                let other = if matches!(a, Cell::Pc { .. }) { cb } else { ca };
                return Some(if other == ZapClass::Vulnerable {
                    PairVerdict {
                        class: PairClass::Vulnerable,
                        rule: Some(PairRule::SingleVulnerable),
                    }
                } else {
                    PairVerdict {
                        class: PairClass::Detected,
                        rule: None,
                    }
                });
            }
            _ => {}
        }
        if ca == ZapClass::Vulnerable || cb == ZapClass::Vulnerable {
            return Some(PairVerdict {
                class: PairClass::Vulnerable,
                rule: Some(PairRule::SingleVulnerable),
            });
        }
        let sa = self.summary(a);
        let sb = self.summary(b);
        let safe = PairVerdict {
            class: if ca == ZapClass::Detected || cb == ZapClass::Detected {
                PairClass::Detected
            } else {
                PairClass::Benign
            },
            rule: None,
        };
        if !opposite_overlap(&sa.touches, &sb.touches) {
            return Some(safe);
        }
        if let Some(v) = self.compose(a, b) {
            return Some(PairVerdict {
                class: PairClass::Vulnerable,
                rule: Some(Self::rule_of(v, a, b)),
            });
        }
        if let Some(v) = self.compose(b, a) {
            return Some(PairVerdict {
                class: PairClass::Vulnerable,
                rule: Some(Self::rule_of(v, b, a)),
            });
        }
        Some(safe)
    }

    /// Enumerate and classify **every** unordered cell pair (same-cell
    /// pairs included — a looped address can be struck twice). Safe pairs
    /// are counted combinatorially from touch-signature groups; only
    /// screen-passing candidates run two-lane fixpoints.
    pub fn pair_report(&mut self) -> PairReport {
        let mut report = PairReport {
            bailed: self.k1.bailed.clone(),
            ..PairReport::default()
        };
        if report.bailed.is_some() {
            return report;
        }
        let cells = self.cells();
        let mut pc_cells = 0u64;
        let mut vuln_cells = 0u64;
        // Safe data cells bucketed by (class, touch signature): every
        // member composes identically at the screen level.
        let mut groups: BTreeMap<(ZapClass, Vec<Touch>), Vec<Cell>> = BTreeMap::new();
        for &c in &cells {
            if matches!(c, Cell::Pc { .. }) {
                pc_cells += 1;
                continue;
            }
            let class = self.k1_class(c).expect("enumerated cells are classified");
            if class == ZapClass::Vulnerable {
                vuln_cells += 1;
                continue;
            }
            let sig: Vec<Touch> = self.summary(c).touches.iter().copied().collect();
            groups.entry((class, sig)).or_default().push(c);
        }
        report.cells = cells.len();
        let n = cells.len() as u64;
        report.pairs = n * (n + 1) / 2;
        let safe_cells = n - pc_cells - vuln_cells;
        // pc/pc: conservatively vulnerable (fetch re-equalization).
        report.vulnerable += pc_cells * (pc_cells + 1) / 2;
        // pc/safe: exactly as dangerous as the safe member alone.
        report.detected += pc_cells * safe_cells;
        // Any pair with a k=1-vulnerable member needs no cooperation.
        report.single_vulnerable =
            vuln_cells * (vuln_cells + 1) / 2 + vuln_cells * (safe_cells + pc_cells);
        report.vulnerable += report.single_vulnerable;
        // Safe × safe, group-wise.
        let keys: Vec<(ZapClass, Vec<Touch>)> = groups.keys().cloned().collect();
        for (i, ki) in keys.iter().enumerate() {
            for kj in keys.iter().skip(i) {
                let (gi, gj) = (&groups[ki], &groups[kj]);
                let count = if ki == kj {
                    let g = gi.len() as u64;
                    g * (g + 1) / 2
                } else {
                    gi.len() as u64 * gj.len() as u64
                };
                let safe_class = if ki.0 == ZapClass::Detected || kj.0 == ZapClass::Detected {
                    ZapClass::Detected
                } else {
                    ZapClass::Benign
                };
                let sig_i: BTreeSet<Touch> = ki.1.iter().copied().collect();
                let sig_j: BTreeSet<Touch> = kj.1.iter().copied().collect();
                if !opposite_overlap(&sig_i, &sig_j) {
                    report.tally_safe(safe_class, count);
                    continue;
                }
                // Candidates: compose each pair individually.
                let (gi, gj) = (gi.clone(), gj.clone());
                for (x, &a) in gi.iter().enumerate() {
                    let from = if ki == kj { x } else { 0 };
                    for &b in &gj[from..] {
                        match self.classify_pair(a, b).expect("covered cells") {
                            PairVerdict {
                                class: ZapClass::Vulnerable,
                                rule,
                            } => {
                                report.vulnerable += 1;
                                report.cooperative += 1;
                                if let Some(at) = rule.and_then(PairRule::compare_addr) {
                                    *report.per_compare.entry(at).or_insert(0) += 1;
                                    report.witness.entry(at).or_insert((a, b));
                                }
                            }
                            _ => report.tally_safe(safe_class, 1),
                        }
                    }
                }
            }
        }
        report.fixpoints = self.fixpoints;
        report
    }
}

/// Do two touch sets share a compare with opposite sides?
fn opposite_overlap(a: &BTreeSet<Touch>, b: &BTreeSet<Touch>) -> bool {
    let (small, big) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    small.iter().any(|t| {
        big.contains(&Touch {
            at: t.at,
            side: match t.side {
                Side::Green => Side::Blue,
                Side::Blue => Side::Green,
            },
        })
    })
}

/// Whole-program pair coverage: the k=2 analogue of [`ZapReport`].
#[derive(Debug, Clone, Default)]
pub struct PairReport {
    /// Classified cells (the pair grid is `cells × cells`, unordered).
    pub cells: usize,
    /// Total unordered pairs, same-cell pairs included.
    pub pairs: u64,
    /// Pairs where some strike may trip a compare; no SDC.
    pub detected: u64,
    /// Pairs that provably die silently; no SDC.
    pub benign: u64,
    /// Pairs that may cooperate into an SDC.
    pub vulnerable: u64,
    /// Vulnerable pairs explained by a k=1-Vulnerable member alone.
    pub single_vulnerable: u64,
    /// Vulnerable pairs that needed genuine cooperation (rules a/b).
    pub cooperative: u64,
    /// Cooperative defeats attributed to each compare address.
    pub per_compare: BTreeMap<i64, u64>,
    /// One witness pair per defeatable compare.
    pub witness: BTreeMap<i64, (Cell, Cell)>,
    /// Two-lane fixpoints actually run (memoization makes this far
    /// smaller than the candidate count).
    pub fixpoints: u64,
    /// Set when the analyzer refused (then every count is zero).
    pub bailed: Option<String>,
}

impl PairReport {
    fn tally_safe(&mut self, class: ZapClass, count: u64) {
        match class {
            ZapClass::Detected => self.detected += count,
            _ => self.benign += count,
        }
    }

    /// Fraction of pairs provably safe (Detected + Benign) — the static
    /// k=2 coverage. 1.0 for an empty report.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.pairs == 0 {
            1.0
        } else {
            (self.detected + self.benign) as f64 / self.pairs as f64
        }
    }
}

/// `TF008` — flag dual-compares defeated by *disproportionately* many
/// cooperating pairs: a compare whose cooperative-defeat count is at least
/// twice the per-compare mean (with at least two defeatable compares to
/// compare against). Opt-in: every dual-modular compare is defeatable by
/// *some* coordinated double strike — Theorem 4 only covers k=1 — so this
/// warns about outliers, not existence.
#[must_use]
pub fn lint_pairs(program: &Program) -> Vec<Diagnostic> {
    let mut analyzer = PairAnalyzer::new(program);
    let report = analyzer.pair_report();
    let mut diags = Vec::new();
    let compares = report.per_compare.len() as u64;
    let total: u64 = report.per_compare.values().sum();
    if compares < 2 || total == 0 {
        return diags;
    }
    for (&at, &count) in &report.per_compare {
        // count >= 2 × mean, in integers: count × compares >= 2 × total.
        if count * compares < 2 * total {
            continue;
        }
        let i = &program.instrs[(at - 1) as usize];
        let (w1, w2) = report.witness[&at];
        diags.push(
            Diagnostic::warning(
                LINT_PAIR_HOTSPOT,
                format!(
                    "`{i}` is defeated by {count} of {total} cooperating fault pairs \
                     ({compares} defeatable compares)"
                ),
            )
            .at(program, at)
            .note(format!(
                "witness pair: {w1} + {w2} — consider narrowing the live range \
                 feeding this compare"
            )),
        );
    }
    diags.sort_by_key(|d| (d.span.as_ref().map_or(0, |s| s.addr), d.code));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use talft_isa::assemble;

    /// An unprotected-feeling but k=1-safe block: r1 feeds the green
    /// side, r3 the blue side of one store pair.
    const STORE: &str = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  mov r3, B 5
  mov r4, B 4096
  stB r4, r3
  halt
"#;

    #[test]
    fn opposite_sides_of_one_compare_cooperate() {
        let asm = assemble(STORE).expect("assembles");
        let mut pa = PairAnalyzer::new(&asm.program);
        // r1 struck after its def (green side) + r3 struck after its def
        // (blue side): both k=1 Detected, but together they can pass the
        // stB compare as a matched wrong pair.
        let a = Cell::Gpr { addr: 2, reg: 1 };
        let b = Cell::Gpr { addr: 5, reg: 3 };
        assert_eq!(pa.k1_class(a), Some(ZapClass::Detected));
        assert_eq!(pa.k1_class(b), Some(ZapClass::Detected));
        let v = pa.classify_pair(a, b).expect("covered");
        assert_eq!(v.class, PairClass::Vulnerable);
        assert_eq!(v.rule, Some(PairRule::OppositeSides { at: 6 }));
        // Orderless: the reversed query composes the other direction.
        assert_eq!(
            pa.classify_pair(b, a).expect("covered").class,
            PairClass::Vulnerable
        );
    }

    #[test]
    fn detector_strike_on_queue_slot_cooperates() {
        let asm = assemble(STORE).expect("assembles");
        let mut pa = PairAnalyzer::new(&asm.program);
        // First corrupt the queued pair (the detector's golden copy),
        // then the blue operand — or equivalently strike the slot second.
        let slot = Cell::Queue { addr: 4, slot: 0 };
        let blue = Cell::Gpr { addr: 5, reg: 3 };
        let v = pa.classify_pair(blue, slot).expect("covered");
        assert_eq!(v.class, PairClass::Vulnerable);
        assert_eq!(v.rule, Some(PairRule::DetectorStrike { at: 6 }));
    }

    #[test]
    fn sequencing_and_same_side_pairs_stay_safe() {
        let asm = assemble(STORE).expect("assembles");
        let mut pa = PairAnalyzer::new(&asm.program);
        // Same side twice (green value + green address register): the blue
        // side stays golden, so the compare still catches any mismatch.
        let v = pa
            .classify_pair(Cell::Gpr { addr: 2, reg: 1 }, Cell::Gpr { addr: 3, reg: 2 })
            .expect("covered");
        assert_eq!(v.class, PairClass::Detected);
        // Sequencing (rule c): r1's taint is consumed by the stG push and
        // compare-cleared; striking r1 again *after* the stB cannot
        // resurrect it — r1 is dead there, so the pair is as safe as the
        // first strike alone.
        let v = pa
            .classify_pair(Cell::Gpr { addr: 2, reg: 1 }, Cell::Gpr { addr: 7, reg: 1 })
            .expect("covered");
        assert_ne!(v.class, PairClass::Vulnerable);
    }

    #[test]
    fn pc_pairs_follow_the_special_cases() {
        let asm = assemble(STORE).expect("assembles");
        let mut pa = PairAnalyzer::new(&asm.program);
        let pc = Cell::Pc { addr: 3 };
        let v = pa.classify_pair(pc, Cell::Pc { addr: 5 }).expect("covered");
        assert_eq!(v.class, PairClass::Vulnerable);
        assert_eq!(v.rule, Some(PairRule::PcPair));
        // pc + safe data cell: exactly as dangerous as the data cell.
        let v = pa
            .classify_pair(pc, Cell::Gpr { addr: 2, reg: 1 })
            .expect("covered");
        assert_eq!(v.class, PairClass::Detected);
        assert_eq!(v.rule, None);
    }

    #[test]
    fn pair_report_counts_are_consistent() {
        let asm = assemble(STORE).expect("assembles");
        let mut pa = PairAnalyzer::new(&asm.program);
        let report = pa.pair_report();
        assert!(report.bailed.is_none());
        let n = report.cells as u64;
        assert_eq!(report.pairs, n * (n + 1) / 2);
        assert_eq!(
            report.detected + report.benign + report.vulnerable,
            report.pairs,
            "every pair lands in exactly one class"
        );
        assert!(report.cooperative > 0, "the store pair is defeatable");
        assert!(report.per_compare.contains_key(&6), "stB attribution");
        assert!(report.witness.contains_key(&6));
        // Spot-check the report against direct classification.
        let a = Cell::Gpr { addr: 2, reg: 1 };
        let b = Cell::Gpr { addr: 5, reg: 3 };
        assert_eq!(
            pa.classify_pair(a, b).expect("covered").class,
            PairClass::Vulnerable
        );
    }

    #[test]
    fn single_compare_programs_get_no_tf008() {
        // TF008 flags *disproportionate* compares; with one defeatable
        // compare there is no distribution to stand out from.
        let asm = assemble(STORE).expect("assembles");
        assert!(lint_pairs(&asm.program).is_empty());
    }
}
