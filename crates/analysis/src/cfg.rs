//! Instruction-level control-flow graph over assembled TAL_FT programs.
//!
//! Only the *blue* halves transfer control: `jmpG`/`bzG` merely latch the
//! intended destination into `d` and fall through, while `jmpB` commits the
//! transfer and `bzB` either commits (taken) or falls through (untaken).
//! Blue targets live in registers, so the builder runs a block-local
//! constant propagation (`mov` immediates, plus the green latch carried by
//! `jmpG`/`bzG`) to resolve them; targets it cannot resolve are flagged in
//! [`Cfg::unknown_target`] and treated conservatively by every client.
//!
//! The graph also carries a forward store-queue **depth** analysis
//! ([`Cfg::depth_in`]): annotated addresses (those with a `.pre` code type)
//! are authoritative seeds (`queue.len()`), everything else is propagated
//! `stG → +1`, `stB → −1`. Depth disagreements — a propagated depth
//! contradicting an annotation or a join — surface as
//! [`Cfg::depth_conflicts`] and feed the `TF002` lint.

use std::collections::BTreeMap;

use talft_isa::{Color, Gpr, Instr, Program};

/// A store-queue depth disagreement at a control-flow join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepthConflict {
    /// Address whose entry depth is contested.
    pub addr: i64,
    /// Depth already established (annotation or first-seen propagation).
    pub expected: usize,
    /// Conflicting depth propagated from a predecessor.
    pub found: usize,
}

/// The instruction-level CFG plus the static facts every analysis shares.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Number of instructions; code addresses are `1..=n`.
    pub n: usize,
    /// Successor addresses per instruction (index `addr - 1`).
    pub succs: Vec<Vec<i64>>,
    /// Predecessor addresses per instruction.
    pub preds: Vec<Vec<i64>>,
    /// Resolved transfer target of a `jmpB` / taken `bzB`, when known.
    pub blue_target: Vec<Option<i64>>,
    /// Blue transfer whose target constant propagation could not resolve.
    pub unknown_target: Vec<bool>,
    /// Resolved blue targets that are not valid code addresses.
    pub bad_targets: Vec<(i64, i64)>,
    /// Reachable from the program entry along CFG edges.
    pub reachable: Vec<bool>,
    /// Whether the address carries a `.pre` code-type annotation.
    pub annotated: Vec<bool>,
    /// Store-queue occupancy on entry to each instruction, when derivable.
    pub depth_in: Vec<Option<usize>>,
    /// Depth disagreements (annotation vs. propagation, or join vs. join).
    pub depth_conflicts: Vec<DepthConflict>,
    /// `stB` instructions whose entry queue depth is provably zero.
    pub empty_pops: Vec<i64>,
    /// Instructions whose fall-through runs past the end of the code.
    pub falls_off_end: Vec<i64>,
}

#[inline]
fn ix(addr: i64) -> usize {
    (addr - 1) as usize
}

impl Cfg {
    /// Build the CFG, resolve blue targets, and run the depth analysis.
    #[must_use]
    pub fn build(program: &Program) -> Self {
        let n = program.instrs.len();
        let mut annotated = vec![false; n];
        for &a in program.preconds.keys() {
            if program.is_code_addr(a) {
                annotated[ix(a)] = true;
            }
        }
        // Addresses where control may enter from elsewhere: labels reset
        // the block-local constant state even without an annotation.
        let mut boundary = annotated.clone();
        for &a in program.labels.values() {
            if program.is_code_addr(a) {
                boundary[ix(a)] = true;
            }
        }

        let (blue_target, unknown_target) = resolve_blue_targets(program, &boundary);

        let mut succs: Vec<Vec<i64>> = vec![Vec::new(); n];
        let mut bad_targets = Vec::new();
        let mut falls_off_end = Vec::new();
        for a in 1..=n as i64 {
            let i = program.instrs[ix(a)];
            let fall = a + 1;
            let has_fall = program.is_code_addr(fall);
            let push_fall = |succs: &mut Vec<i64>, falls: &mut Vec<i64>| {
                if has_fall {
                    succs.push(fall);
                } else {
                    falls.push(a);
                }
            };
            match i {
                Instr::Halt => {}
                Instr::Jmp {
                    color: Color::Blue, ..
                } => {
                    if let Some(t) = blue_target[ix(a)] {
                        if program.is_code_addr(t) {
                            succs[ix(a)].push(t);
                        } else {
                            bad_targets.push((a, t));
                        }
                    }
                }
                Instr::Bz {
                    color: Color::Blue, ..
                } => {
                    push_fall(&mut succs[ix(a)], &mut falls_off_end);
                    if let Some(t) = blue_target[ix(a)] {
                        if program.is_code_addr(t) {
                            succs[ix(a)].push(t);
                        } else {
                            bad_targets.push((a, t));
                        }
                    }
                }
                _ => push_fall(&mut succs[ix(a)], &mut falls_off_end),
            }
        }

        let mut preds: Vec<Vec<i64>> = vec![Vec::new(); n];
        for a in 1..=n as i64 {
            for &s in &succs[ix(a)] {
                preds[ix(s)].push(a);
            }
        }

        // Reachability from the entry point.
        let mut reachable = vec![false; n];
        if program.is_code_addr(program.entry) {
            let mut work = vec![program.entry];
            reachable[ix(program.entry)] = true;
            while let Some(a) = work.pop() {
                for &s in &succs[ix(a)] {
                    if !reachable[ix(s)] {
                        reachable[ix(s)] = true;
                        work.push(s);
                    }
                }
            }
        }

        let mut cfg = Cfg {
            n,
            succs,
            preds,
            blue_target,
            unknown_target,
            bad_targets,
            reachable,
            annotated,
            depth_in: vec![None; n],
            depth_conflicts: Vec::new(),
            empty_pops: Vec::new(),
            falls_off_end,
        };
        cfg.run_depth(program);
        cfg
    }

    /// Forward store-queue depth propagation (annotations authoritative).
    fn run_depth(&mut self, program: &Program) {
        let mut work = Vec::new();
        for a in 1..=self.n as i64 {
            if let Some(pre) = program.precond(a) {
                self.depth_in[ix(a)] = Some(pre.queue.len());
                work.push(a);
            }
        }
        if program.is_code_addr(program.entry) && self.depth_in[ix(program.entry)].is_none() {
            // Boot state: the queue is empty.
            self.depth_in[ix(program.entry)] = Some(0);
            work.push(program.entry);
        }
        let mut empty_pops = std::collections::BTreeSet::new();
        while let Some(a) = work.pop() {
            let Some(din) = self.depth_in[ix(a)] else {
                continue;
            };
            let dout = match program.instrs[ix(a)] {
                Instr::St {
                    color: Color::Green,
                    ..
                } => din + 1,
                Instr::St {
                    color: Color::Blue, ..
                } => {
                    if din == 0 {
                        empty_pops.insert(a);
                        0
                    } else {
                        din - 1
                    }
                }
                _ => din,
            };
            for &s in &self.succs[ix(a)] {
                match self.depth_in[ix(s)] {
                    None => {
                        self.depth_in[ix(s)] = Some(dout);
                        work.push(s);
                    }
                    Some(d) if d != dout => {
                        let c = DepthConflict {
                            addr: s,
                            expected: d,
                            found: dout,
                        };
                        if !self.depth_conflicts.contains(&c) {
                            self.depth_conflicts.push(c);
                        }
                    }
                    Some(_) => {}
                }
            }
        }
        self.empty_pops = empty_pops.into_iter().collect();
    }
}

/// Resolve blue transfer targets by block-local constant propagation:
/// `mov rd, C a` makes `rd` a known constant until redefined; `jmpG`/`bzG`
/// latch the (known) destination; `jmpB`/`bzB` consume either the register
/// constant or the latch. Boundaries (labels/annotations) reset everything.
fn resolve_blue_targets(program: &Program, boundary: &[bool]) -> (Vec<Option<i64>>, Vec<bool>) {
    let n = program.instrs.len();
    let mut target = vec![None; n];
    let mut unknown = vec![false; n];
    let mut konst: BTreeMap<Gpr, i64> = BTreeMap::new();
    let mut latch: Option<i64> = None;
    for a in 1..=n as i64 {
        if boundary[ix(a)] {
            konst.clear();
            latch = None;
        }
        match program.instrs[ix(a)] {
            Instr::Mov { rd, v } => {
                konst.insert(rd, v.val);
            }
            Instr::Op { rd, .. } | Instr::Ld { rd, .. } => {
                konst.remove(&rd);
            }
            Instr::Jmp {
                color: Color::Green,
                rd,
            } => latch = konst.get(&rd).copied(),
            Instr::Bz {
                color: Color::Green,
                rd,
                ..
            } => latch = konst.get(&rd).copied(),
            Instr::Jmp {
                color: Color::Blue,
                rd,
            }
            | Instr::Bz {
                color: Color::Blue,
                rd,
                ..
            } => {
                let t = konst.get(&rd).copied().or(latch);
                target[ix(a)] = t;
                unknown[ix(a)] = t.is_none();
                latch = None;
            }
            Instr::St { .. } | Instr::Halt => {}
        }
    }
    (target, unknown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use talft_isa::assemble;

    const LOOPY: &str = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  mov r3, B 5
  mov r4, B 4096
  stB r4, r3
  mov r5, G @fin
  mov r6, B @fin
  jmpG r5
  jmpB r6
fin:
  .pre { forall m:mem; mem: m; }
  halt
"#;

    #[test]
    fn resolves_blue_jump_and_builds_edges() {
        let asm = assemble(LOOPY).expect("assembles");
        let cfg = Cfg::build(&asm.program);
        // jmpB at address 10 targets `fin` (address 11, but resolved from
        // the mov constants, so read it out of the CFG).
        let jb = 10;
        assert_eq!(cfg.blue_target[(jb - 1) as usize], Some(11));
        assert_eq!(cfg.succs[(jb - 1) as usize], vec![11]);
        assert!(!cfg.unknown_target[(jb - 1) as usize]);
        assert!(cfg.reachable.iter().all(|&r| r));
        assert!(cfg.falls_off_end.is_empty());
    }

    #[test]
    fn depth_tracks_store_pairs() {
        let asm = assemble(LOOPY).expect("assembles");
        let cfg = Cfg::build(&asm.program);
        // Entry depth 0; stG at 3 raises it; stB at 6 drains it.
        assert_eq!(cfg.depth_in[0], Some(0));
        assert_eq!(cfg.depth_in[3], Some(1)); // addr 4, after stG
        assert_eq!(cfg.depth_in[6], Some(0)); // addr 7, after stB
        assert!(cfg.empty_pops.is_empty());
        assert!(cfg.depth_conflicts.is_empty());
    }
}
