//! Static fault-coverage analysis and lints for TAL_FT programs.
//!
//! The injection campaigns (`talft-faultsim`) measure fault coverage by
//! *running* every single-fault plan; this crate computes the same verdict
//! *statically*, per (instruction, fault-site) cell, and cross-validates
//! the two — a machine-checked static analogue of Theorem 4. It also hosts
//! the rustc-style `TF0xx` lint engine sharing the checker's
//! [`Diagnostic`](talft_core::Diagnostic) form.
//!
//! * [`Cfg`] — instruction-level control-flow graph with blue-target
//!   resolution and store-queue depth propagation ([`mod@cfg`]);
//! * [`liveness`] — backward register liveness ([`live`]);
//! * [`analyze_zaps`] — per-cell SEU classification
//!   `Detected`/`Benign`/`Vulnerable` ([`zap`]);
//! * [`lint_program`] — the `TF001`–`TF006` lints ([`lint`]);
//! * [`cross_validate`] — differential oracle against the dynamic
//!   [`FaultGrid`](talft_faultsim::FaultGrid) ([`diff`]).
//!
//! # Example
//!
//! ```
//! use talft_isa::assemble;
//! use talft_analysis::{analyze_zaps, lint_program};
//!
//! let src = r#"
//! .data
//! region out at 4096 len 1 : int output
//! .code
//! main:
//!   .pre { forall m:mem; mem: m; }
//!   mov r1, G 5
//!   mov r2, G 4096
//!   stG r2, r1
//!   mov r3, B 5
//!   mov r4, B 4096
//!   stB r4, r3
//!   halt
//! "#;
//! let asm = assemble(src).unwrap();
//! assert!(lint_program(&asm.program).is_empty());
//! let report = analyze_zaps(&asm.program);
//! let (_, _, vulnerable) = report.tally();
//! assert_eq!(vulnerable, 0); // duplicated stores are single-fault safe
//! ```

#![warn(missing_docs)]

pub mod cfg;
pub mod diff;
pub mod lint;
pub mod live;
pub mod mask;
pub mod pair;
pub mod zap;

pub use cfg::{Cfg, DepthConflict};
pub use diff::{
    cross_validate, cross_validate_pairs, map_strike, prioritize_pairs, DiffSummary, Mismatch,
    PairDiffSummary, PairMismatch,
};
pub use lint::{error_count, lint_program, lint_program_solver, lint_program_with, LINT_CODES};
pub use live::{liveness, Liveness};
pub use mask::{RegMask, MAX_GPRS};
pub use pair::{lint_pairs, Cell, PairAnalyzer, PairClass, PairReport, PairRule, PairVerdict};
pub use zap::{analyze_zaps, analyze_zaps_with, Side, Touch, ZapClass, ZapReport};
