//! Backward may-liveness of general-purpose registers over the [`Cfg`].
//!
//! Register sets are `u64` bitmasks (bit `i` = `r{i}`), so the analysis
//! bails out (`None`) on programs with more than 64 GPRs — the zap
//! classifier then refuses to claim anything. At instructions whose blue
//! target could not be resolved, *everything* is conservatively live.

use talft_isa::{Instr, Program};

use crate::cfg::Cfg;

/// Per-instruction live-register masks.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Registers live on entry to each instruction (index `addr - 1`).
    pub live_in: Vec<u64>,
    /// Registers live on exit.
    pub live_out: Vec<u64>,
}

#[inline]
fn ix(addr: i64) -> usize {
    (addr - 1) as usize
}

fn uses_mask(i: &Instr) -> u64 {
    i.uses().iter().fold(0, |m, g| m | (1u64 << g.0))
}

fn def_mask(i: &Instr) -> u64 {
    i.def().map_or(0, |g| 1u64 << g.0)
}

/// Run backward liveness to a fixpoint. `None` when `num_gprs > 64`.
#[must_use]
pub fn liveness(program: &Program, cfg: &Cfg) -> Option<Liveness> {
    if program.num_gprs > 64 {
        return None;
    }
    let all = if program.num_gprs == 64 {
        u64::MAX
    } else {
        (1u64 << program.num_gprs) - 1
    };
    let n = cfg.n;
    let mut live_in = vec![0u64; n];
    let mut live_out = vec![0u64; n];
    let mut changed = true;
    while changed {
        changed = false;
        for a in (1..=n as i64).rev() {
            let i = &program.instrs[ix(a)];
            let mut out = if cfg.unknown_target[ix(a)] { all } else { 0 };
            for &s in &cfg.succs[ix(a)] {
                out |= live_in[ix(s)];
            }
            let inn = uses_mask(i) | (out & !def_mask(i));
            if out != live_out[ix(a)] || inn != live_in[ix(a)] {
                live_out[ix(a)] = out;
                live_in[ix(a)] = inn;
                changed = true;
            }
        }
    }
    Some(Liveness { live_in, live_out })
}

#[cfg(test)]
mod tests {
    use super::*;
    use talft_isa::assemble;

    #[test]
    fn store_operands_stay_live_until_consumed() {
        let src = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  mov r3, B 5
  mov r4, B 4096
  stB r4, r3
  halt
"#;
        let asm = assemble(src).expect("assembles");
        let cfg = Cfg::build(&asm.program);
        let live = liveness(&asm.program, &cfg).expect("few registers");
        // r1 is live from its def (addr 1) through the stG at addr 3.
        assert_ne!(live.live_in[1] & (1 << 1), 0, "r1 live entering addr 2");
        assert_ne!(live.live_in[2] & (1 << 1), 0, "r1 live entering stG");
        // ...and dead right after the store consumed it.
        assert_eq!(live.live_out[2] & (1 << 1), 0, "r1 dead after stG");
        // Nothing is live entering halt.
        assert_eq!(live.live_in[6], 0);
    }
}
