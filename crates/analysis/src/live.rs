//! Backward may-liveness of general-purpose registers over the [`Cfg`].
//!
//! Register sets are [`RegMask`]es (two words, up to [`MAX_GPRS`] GPRs), so
//! the analysis bails out (`None`) only on programs wider than that — the
//! zap classifier then refuses to claim anything. At instructions whose
//! blue target could not be resolved, *everything* is conservatively live.

use talft_isa::{Instr, Program};

use crate::cfg::Cfg;
use crate::mask::{RegMask, MAX_GPRS};

/// Per-instruction live-register masks.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Registers live on entry to each instruction (index `addr - 1`).
    pub live_in: Vec<RegMask>,
    /// Registers live on exit.
    pub live_out: Vec<RegMask>,
}

#[inline]
fn ix(addr: i64) -> usize {
    (addr - 1) as usize
}

fn uses_mask(i: &Instr) -> RegMask {
    i.uses().iter().fold(RegMask::EMPTY, |mut m, g| {
        m.set(g.0);
        m
    })
}

fn def_mask(i: &Instr) -> RegMask {
    i.def().map_or(RegMask::EMPTY, |g| RegMask::bit(g.0))
}

/// Run backward liveness to a fixpoint. `None` when `num_gprs` exceeds
/// [`MAX_GPRS`].
#[must_use]
pub fn liveness(program: &Program, cfg: &Cfg) -> Option<Liveness> {
    if program.num_gprs > MAX_GPRS {
        return None;
    }
    let all = RegMask::all(program.num_gprs);
    let n = cfg.n;
    let mut live_in = vec![RegMask::EMPTY; n];
    let mut live_out = vec![RegMask::EMPTY; n];
    let mut changed = true;
    while changed {
        changed = false;
        for a in (1..=n as i64).rev() {
            let i = &program.instrs[ix(a)];
            let mut out = if cfg.unknown_target[ix(a)] {
                all
            } else {
                RegMask::EMPTY
            };
            for &s in &cfg.succs[ix(a)] {
                out |= live_in[ix(s)];
            }
            let inn = uses_mask(i) | (out & !def_mask(i));
            if out != live_out[ix(a)] || inn != live_in[ix(a)] {
                live_out[ix(a)] = out;
                live_in[ix(a)] = inn;
                changed = true;
            }
        }
    }
    Some(Liveness { live_in, live_out })
}

#[cfg(test)]
mod tests {
    use super::*;
    use talft_isa::assemble;

    #[test]
    fn store_operands_stay_live_until_consumed() {
        let src = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  mov r3, B 5
  mov r4, B 4096
  stB r4, r3
  halt
"#;
        let asm = assemble(src).expect("assembles");
        let cfg = Cfg::build(&asm.program);
        let live = liveness(&asm.program, &cfg).expect("few registers");
        // r1 is live from its def (addr 1) through the stG at addr 3.
        assert!(live.live_in[1].test(1), "r1 live entering addr 2");
        assert!(live.live_in[2].test(1), "r1 live entering stG");
        // ...and dead right after the store consumed it.
        assert!(!live.live_out[2].test(1), "r1 dead after stG");
        // Nothing is live entering halt.
        assert!(live.live_in[6].is_empty());
    }

    #[test]
    fn wide_programs_get_real_masks() {
        // r100 lives past the 64-bit word boundary; liveness must track it.
        let src = r#"
.gprs 128
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r100, G 5
  mov r2, G 4096
  stG r2, r100
  mov r101, B 5
  mov r4, B 4096
  stB r4, r101
  halt
"#;
        let asm = assemble(src).expect("assembles");
        assert!(asm.program.num_gprs > 64);
        let cfg = Cfg::build(&asm.program);
        let live = liveness(&asm.program, &cfg).expect("wide masks cover 128 GPRs");
        assert!(live.live_in[2].test(100), "r100 live entering stG");
        assert!(!live.live_out[2].test(100), "r100 dead after stG");
    }
}
