//! Wide register sets: a two-word bitmask covering up to 128 GPRs.
//!
//! The original liveness and zap analyses packed register sets into a bare
//! `u64` and bailed on any program with more than 64 GPRs. [`RegMask`]
//! widens the representation to two words so wide (fuzzer-generated or
//! hand-written) programs get real per-cell verdicts; the analyses now
//! bail only past [`MAX_GPRS`].

/// Largest GPR count the analyses can represent ([`RegMask`] words × 64).
pub const MAX_GPRS: u16 = 128;

/// A set of general-purpose registers (bit `i` of word `i / 64` = `r{i}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash, PartialOrd, Ord)]
pub struct RegMask([u64; 2]);

impl RegMask {
    /// The empty set.
    pub const EMPTY: RegMask = RegMask([0; 2]);

    /// The set `{r0, …, r(n-1)}`; saturates at [`MAX_GPRS`].
    #[must_use]
    pub fn all(n: u16) -> RegMask {
        let n = n.min(MAX_GPRS);
        let word = |lo: u16| -> u64 {
            match n.saturating_sub(lo) {
                0 => 0,
                x if x >= 64 => u64::MAX,
                x => (1u64 << x) - 1,
            }
        };
        RegMask([word(0), word(64)])
    }

    /// The singleton `{r{i}}` (empty past [`MAX_GPRS`]).
    #[must_use]
    pub fn bit(i: u16) -> RegMask {
        let mut m = RegMask::EMPTY;
        m.set(i);
        m
    }

    /// Membership test.
    #[must_use]
    pub fn test(self, i: u16) -> bool {
        i < MAX_GPRS && self.0[usize::from(i / 64)] & (1u64 << (i % 64)) != 0
    }

    /// Insert `r{i}` (no-op past [`MAX_GPRS`]).
    pub fn set(&mut self, i: u16) {
        if i < MAX_GPRS {
            self.0[usize::from(i / 64)] |= 1u64 << (i % 64);
        }
    }

    /// Remove `r{i}`.
    pub fn clear(&mut self, i: u16) {
        if i < MAX_GPRS {
            self.0[usize::from(i / 64)] &= !(1u64 << (i % 64));
        }
    }

    /// True when no register is in the set.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == [0, 0]
    }
}

impl std::ops::BitOr for RegMask {
    type Output = RegMask;
    fn bitor(self, o: RegMask) -> RegMask {
        RegMask([self.0[0] | o.0[0], self.0[1] | o.0[1]])
    }
}

impl std::ops::BitOrAssign for RegMask {
    fn bitor_assign(&mut self, o: RegMask) {
        self.0[0] |= o.0[0];
        self.0[1] |= o.0[1];
    }
}

impl std::ops::BitAnd for RegMask {
    type Output = RegMask;
    fn bitand(self, o: RegMask) -> RegMask {
        RegMask([self.0[0] & o.0[0], self.0[1] & o.0[1]])
    }
}

impl std::ops::Not for RegMask {
    type Output = RegMask;
    fn not(self) -> RegMask {
        RegMask([!self.0[0], !self.0[1]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_bits_round_trip() {
        let mut m = RegMask::EMPTY;
        assert!(m.is_empty());
        for i in [0u16, 1, 63, 64, 100, 127] {
            m.set(i);
            assert!(m.test(i), "bit {i}");
        }
        assert!(!m.test(2));
        m.clear(100);
        assert!(!m.test(100));
        assert!(m.test(127));
        // Past the representable range: silently absent, never aliased.
        m.set(128);
        assert!(!m.test(128));
    }

    #[test]
    fn all_covers_exactly_n() {
        for n in [0u16, 1, 63, 64, 65, 127, 128] {
            let m = RegMask::all(n);
            for i in 0..MAX_GPRS {
                assert_eq!(m.test(i), i < n, "n={n} bit {i}");
            }
        }
        assert_eq!(RegMask::all(200), RegMask::all(128), "saturates");
    }

    #[test]
    fn set_algebra() {
        let a = RegMask::bit(3) | RegMask::bit(70);
        let b = RegMask::bit(70) | RegMask::bit(127);
        assert_eq!(a & b, RegMask::bit(70));
        assert!((a & !b) == RegMask::bit(3));
        let mut c = a;
        c |= b;
        assert!(c.test(3) && c.test(70) && c.test(127));
    }
}
