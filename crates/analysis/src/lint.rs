//! The rustc-style TAL_FT lint engine: stable `TF0xx` codes over the
//! [`Diagnostic`] form shared with the type checker (`TF000`).
//!
//! Lints are intentionally *must*-analyses: they fire only on violations
//! provable from definite facts (constant colors, propagated queue depths,
//! a definitely-zero `d`), so any program the checker accepts stays
//! lint-clean at `Error` severity. Warnings flag suspicious-but-legal
//! shapes (dead duplication halves, unresolvable blue targets).
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | `TF001` | error | an instruction mixes operand colors (P2 violation) |
//! | `TF002` | error | store-queue imbalance: `stB` on a provably empty queue, or propagated depth contradicts an annotation/join |
//! | `TF003` | error | `jmpB` with a provably un-latched `d` (always faults) |
//! | `TF004` | warning | dead definition: a duplicated half nobody reads |
//! | `TF005` | error | layout: control falls off the code end, or a blue transfer targets a non-block address |
//! | `TF006` | warning | blue transfer target cannot be resolved statically |
//! | `TF007` | warning | a queue annotation's address is not provably inside any declared region (solver-backed; carries an entailment failure witness) |
//! | `TF008` | warning | pair-fault hot spot: a dual-compare defeated by disproportionately many cooperating fault pairs (opt-in via [`lint_pairs`](crate::pair::lint_pairs), carries a witness pair) |

use std::collections::BTreeMap;

use talft_core::Diagnostic;
use talft_isa::{Color, Gpr, Instr, OpSrc, Program, Reg, RegTy};
use talft_logic::{ExprArena, Facts};

use crate::cfg::Cfg;
use crate::live::liveness;

/// Stable lint code: operand color mixing.
pub const LINT_COLOR_MIX: &str = "TF001";
/// Stable lint code: store-queue imbalance.
pub const LINT_QUEUE_IMBALANCE: &str = "TF002";
/// Stable lint code: blue jump with no latched destination.
pub const LINT_NO_LATCH: &str = "TF003";
/// Stable lint code: dead duplication half.
pub const LINT_DEAD_DUP: &str = "TF004";
/// Stable lint code: layout violation.
pub const LINT_LAYOUT: &str = "TF005";
/// Stable lint code: unresolvable blue target.
pub const LINT_UNRESOLVED_TARGET: &str = "TF006";
/// Stable lint code: queue annotation address not provably in any region.
pub const LINT_QUEUE_BOUNDS: &str = "TF007";
/// Stable lint code: pair-fault hot spot (disproportionately defeatable
/// dual-compare). Opt-in: emitted by [`crate::pair::lint_pairs`], never by
/// [`lint_program`] — k=2 exposure is expected, not a program error.
pub const LINT_PAIR_HOTSPOT: &str = "TF008";

/// `(code, one-line summary)` for every lint, in code order.
pub const LINT_CODES: &[(&str, &str)] = &[
    (LINT_COLOR_MIX, "instruction mixes operand colors"),
    (LINT_QUEUE_IMBALANCE, "store-queue depth imbalance"),
    (LINT_NO_LATCH, "blue jump with no latched destination"),
    (LINT_DEAD_DUP, "dead definition (unused duplication half)"),
    (LINT_LAYOUT, "control-flow layout violation"),
    (LINT_UNRESOLVED_TARGET, "unresolvable blue transfer target"),
    (
        LINT_QUEUE_BOUNDS,
        "queue annotation address not provably in bounds",
    ),
    (
        LINT_PAIR_HOTSPOT,
        "dual-compare defeatable by disproportionately many fault pairs",
    ),
];

/// Run every lint over an assembled program.
#[must_use]
pub fn lint_program(program: &Program) -> Vec<Diagnostic> {
    let cfg = Cfg::build(program);
    lint_program_with(program, &cfg)
}

/// Run every lint *including* the solver-backed `TF007`, which needs the
/// program's expression arena to discharge entailment obligations (and to
/// render witness notes when they fail).
#[must_use]
pub fn lint_program_solver(program: &Program, arena: &mut ExprArena) -> Vec<Diagnostic> {
    let cfg = Cfg::build(program);
    let mut diags = lint_program_with(program, &cfg);
    lint_queue_bounds(program, arena, &mut diags);
    diags.sort_by_key(|d| (d.span.as_ref().map_or(0, |s| s.addr), d.code));
    diags
}

/// Run every lint against a prebuilt CFG.
#[must_use]
pub fn lint_program_with(program: &Program, cfg: &Cfg) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    lint_color_mix(program, &mut diags);
    lint_queue_imbalance(program, cfg, &mut diags);
    lint_no_latch(program, cfg, &mut diags);
    lint_dead_dup(program, cfg, &mut diags);
    lint_layout(program, cfg, &mut diags);
    lint_unresolved(program, cfg, &mut diags);
    diags.sort_by_key(|d| (d.span.as_ref().map_or(0, |s| s.addr), d.code));
    diags
}

#[inline]
fn ix(addr: i64) -> usize {
    (addr - 1) as usize
}

fn color_name(c: Color) -> &'static str {
    match c {
        Color::Green => "green",
        Color::Blue => "blue",
    }
}

/// TF001 — block-local must-color tracking; flags only definite mixes.
fn lint_color_mix(program: &Program, diags: &mut Vec<Diagnostic>) {
    let n = program.instrs.len();
    let mut colors: BTreeMap<Gpr, Color> = BTreeMap::new();
    let boundary: Vec<bool> = {
        let mut b = vec![false; n];
        for &a in program.preconds.keys().chain(program.labels.values()) {
            if program.is_code_addr(a) {
                b[ix(a)] = true;
            }
        }
        b
    };
    for a in 1..=n as i64 {
        if boundary[ix(a)] {
            colors.clear();
            // Seed definite colors from the block's register typing.
            if let Some(pre) = program.precond(a) {
                for (r, ty) in pre.regs.iter() {
                    if let (Reg::Gpr(g), RegTy::Val(v)) = (r, ty) {
                        colors.insert(g, v.color);
                    }
                }
            }
        }
        let i = program.instrs[ix(a)];
        let expect = |diags: &mut Vec<Diagnostic>, g: Gpr, want: Color, role: &str| {
            if let Some(&have) = colors.get(&g) {
                if have != want {
                    diags.push(
                        Diagnostic::error(
                            LINT_COLOR_MIX,
                            format!(
                                "`{i}` uses {} {g} as its {role}, which must be {}",
                                color_name(have),
                                color_name(want)
                            ),
                        )
                        .at(program, a)
                        .note(format!(
                            "principle P2: {} computations may depend only on {} values",
                            color_name(want),
                            color_name(want)
                        )),
                    );
                }
            }
        };
        match i {
            Instr::Op { rd, rs, src2, .. } => {
                let want = match src2 {
                    OpSrc::Imm(v) => Some(v.color),
                    OpSrc::Reg(rt) => colors.get(&rt).copied(),
                };
                if let Some(w) = want {
                    expect(diags, rs, w, "left operand");
                }
                let out = want;
                match out {
                    Some(c) => {
                        colors.insert(rd, c);
                    }
                    None => {
                        colors.remove(&rd);
                    }
                }
            }
            Instr::Mov { rd, v } => {
                colors.insert(rd, v.color);
            }
            Instr::Ld { color, rd, rs } => {
                expect(diags, rs, color, "address");
                colors.insert(rd, color);
            }
            Instr::St { color, rd, rs } => {
                expect(diags, rd, color, "address");
                expect(diags, rs, color, "value");
            }
            Instr::Bz { color, rz, rd } => {
                expect(diags, rz, color, "zero test");
                expect(diags, rd, color, "target");
            }
            Instr::Jmp { color, rd } => {
                expect(diags, rd, color, "target");
            }
            Instr::Halt => {}
        }
    }
}

/// TF002 — provably-empty pops and contradicted queue depths.
fn lint_queue_imbalance(program: &Program, cfg: &Cfg, diags: &mut Vec<Diagnostic>) {
    for &a in &cfg.empty_pops {
        let i = program.instrs[ix(a)];
        diags.push(
            Diagnostic::error(
                LINT_QUEUE_IMBALANCE,
                format!("`{i}` commits from a provably empty store queue"),
            )
            .at(program, a)
            .note("every stB must be preceded by a matching stG on all paths"),
        );
    }
    for c in &cfg.depth_conflicts {
        let what = if cfg.annotated[ix(c.addr)] {
            "the block's queue annotation"
        } else {
            "another path"
        };
        diags.push(
            Diagnostic::error(
                LINT_QUEUE_IMBALANCE,
                format!(
                    "store-queue depth {} flows into this point, but {what} establishes depth {}",
                    c.found, c.expected
                ),
            )
            .at(program, c.addr)
            .note("store pairs must balance on every path into a join"),
        );
    }
}

/// The `d`-latch abstract state for TF003.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DState {
    /// `d` is provably 0 (boot, post-commit, post-untaken).
    Zero,
    /// `d` provably holds a latched target.
    Latched,
    /// Anything.
    Unknown,
}

impl DState {
    fn join(self, o: DState) -> DState {
        if self == o {
            self
        } else {
            DState::Unknown
        }
    }
}

/// TF003 — a `jmpB` reached only with `d = 0` faults unconditionally.
fn lint_no_latch(program: &Program, cfg: &Cfg, diags: &mut Vec<Diagnostic>) {
    let n = cfg.n;
    let mut state: Vec<Option<DState>> = vec![None; n];
    let mut work = Vec::new();
    // Blocks other than the entry may be entered with a latch pending
    // (hand-written code may span); only the boot state is definite.
    for a in 1..=n as i64 {
        if cfg.annotated[ix(a)] && a != program.entry {
            state[ix(a)] = Some(DState::Unknown);
            work.push(a);
        }
    }
    if program.is_code_addr(program.entry) {
        state[ix(program.entry)] = Some(DState::Zero);
        work.push(program.entry);
    }
    while let Some(a) = work.pop() {
        let Some(din) = state[ix(a)] else { continue };
        let dout = match program.instrs[ix(a)] {
            Instr::Jmp {
                color: Color::Green,
                ..
            } => DState::Latched,
            // bzG latches when taken, stays zero when untaken.
            Instr::Bz {
                color: Color::Green,
                ..
            } => DState::Latched.join(din),
            // A committed transfer (or a passing untaken bzB) resets d.
            Instr::Jmp {
                color: Color::Blue, ..
            }
            | Instr::Bz {
                color: Color::Blue, ..
            } => DState::Zero,
            _ => din,
        };
        for &s in &cfg.succs[ix(a)] {
            let merged = match state[ix(s)] {
                None => dout,
                Some(cur) => cur.join(dout),
            };
            if state[ix(s)] != Some(merged) {
                state[ix(s)] = Some(merged);
                work.push(s);
            }
        }
    }
    for a in 1..=n as i64 {
        if let Instr::Jmp {
            color: Color::Blue, ..
        } = program.instrs[ix(a)]
        {
            if state[ix(a)] == Some(DState::Zero) {
                let i = program.instrs[ix(a)];
                diags.push(
                    Diagnostic::error(
                        LINT_NO_LATCH,
                        format!("`{i}` commits a transfer, but d is provably 0 here"),
                    )
                    .at(program, a)
                    .note("a jmpB must be preceded by a jmpG latching the same target"),
                );
            }
        }
    }
}

/// TF004 — definitions nobody reads (dead duplication halves).
fn lint_dead_dup(program: &Program, cfg: &Cfg, diags: &mut Vec<Diagnostic>) {
    let Some(live) = liveness(program, cfg) else {
        return;
    };
    for a in 1..=cfg.n as i64 {
        if !cfg.reachable[ix(a)] {
            continue;
        }
        let i = program.instrs[ix(a)];
        if let Some(rd) = i.def() {
            if !live.live_out[ix(a)].test(rd.0) {
                diags.push(
                    Diagnostic::warning(
                        LINT_DEAD_DUP,
                        format!("`{i}` defines {rd}, which is never read"),
                    )
                    .at(program, a)
                    .note(
                        "a dead half of a duplicated computation protects nothing; \
                         the paired color may be running unchecked",
                    ),
                );
            }
        }
    }
}

/// TF005 — control runs past the code end, or a blue transfer targets a
/// non-code / unannotated address.
fn lint_layout(program: &Program, cfg: &Cfg, diags: &mut Vec<Diagnostic>) {
    for &a in &cfg.falls_off_end {
        let i = program.instrs[ix(a)];
        diags.push(
            Diagnostic::error(
                LINT_LAYOUT,
                format!("control falls through `{i}` past the end of the code region"),
            )
            .at(program, a)
            .note("every path must end in halt or a committed blue transfer"),
        );
    }
    for &(a, t) in &cfg.bad_targets {
        let i = program.instrs[ix(a)];
        diags.push(
            Diagnostic::error(
                LINT_LAYOUT,
                format!("`{i}` transfers to {t}, which is outside the code region"),
            )
            .at(program, a),
        );
    }
    for a in 1..=cfg.n as i64 {
        if let Some(t) = cfg.blue_target[ix(a)] {
            if program.is_code_addr(t) && program.precond(t).is_none() {
                let i = program.instrs[ix(a)];
                diags.push(
                    Diagnostic::error(
                        LINT_LAYOUT,
                        format!("`{i}` transfers to {t}, which has no code-type annotation"),
                    )
                    .at(program, a)
                    .note("blue transfer targets must be annotated block entries"),
                );
            }
        }
    }
}

/// TF006 — blue transfers whose target constant propagation cannot see.
fn lint_unresolved(program: &Program, cfg: &Cfg, diags: &mut Vec<Diagnostic>) {
    for a in 1..=cfg.n as i64 {
        if cfg.unknown_target[ix(a)] {
            let i = program.instrs[ix(a)];
            diags.push(
                Diagnostic::warning(
                    LINT_UNRESOLVED_TARGET,
                    format!("cannot statically resolve the target of `{i}`"),
                )
                .at(program, a)
                .note("the zap analyzer treats surviving taint here as vulnerable"),
            );
        }
    }
}

/// TF007 — solver-backed: every queue annotation names an (address, value)
/// pair a later `stB` will commit to memory, so the address should be
/// provably inside some declared region *under the block's own facts*.
/// Compiled code never trips this (queues are empty at labels); it guards
/// hand-written `.talft` whose annotations out-run their hypotheses. A
/// warning, not an error: the committing block may re-establish bounds the
/// annotation site cannot see.
fn lint_queue_bounds(program: &Program, arena: &mut ExprArena, diags: &mut Vec<Diagnostic>) {
    for (&addr, pre) in &program.preconds {
        if pre.queue.is_empty() {
            continue;
        }
        let mut facts = Facts::new();
        for f in &pre.facts {
            talft_core::ctx::assume_fact(arena, &mut facts, *f);
        }
        for (i, &(d, _v)) in pre.queue.iter().enumerate() {
            let in_bounds = program
                .regions
                .iter()
                .any(|r| facts.prove_in_range(arena, d, r.base, r.base + r.len));
            if in_bounds {
                continue;
            }
            let mut diag = Diagnostic::warning(
                LINT_QUEUE_BOUNDS,
                format!(
                    "queue entry {i}: address `{}` is not provably inside any declared region",
                    arena.display(d)
                ),
            )
            .at(program, addr);
            // Witness the failure against the first declared region: name
            // the bound obligation the solver could not discharge.
            if let Some(r) = program.regions.first() {
                let base = arena.int(r.base);
                let lo = arena.sub(d, base);
                let w = if !facts.prove_ge0(arena, lo) {
                    facts.explain_ge0(arena, lo)
                } else {
                    let last = arena.int(r.base + r.len - 1);
                    let hi = arena.sub(last, d);
                    facts.explain_ge0(arena, hi)
                };
                diag = diag.note(format!("for region `{}`: {}", r.name, w.note()));
            } else {
                diag = diag.note("the program declares no data regions");
            }
            diags.push(diag);
        }
    }
}

/// Count of error-severity diagnostics (the ones that reject a program).
#[must_use]
pub fn error_count(diags: &[Diagnostic]) -> usize {
    diags
        .iter()
        .filter(|d| d.severity == talft_core::Severity::Error)
        .count()
}
