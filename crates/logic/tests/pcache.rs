//! Persistent solver-cache integration tests (own binary: these flip the
//! process-global cache, which must not interleave with the lib tests).

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

use talft_logic::{
    clear_solver_cache, load_solver_cache, save_solver_cache, solver_cache_stats, ExprArena, Facts,
};

/// Serialize tests in this binary: they all share the process-global cache.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let g = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    clear_solver_cache();
    g
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("talft-pcache-{}-{name}", std::process::id()))
}

/// A query that declines both interval tiers and reaches FM, so a loaded
/// persistent cache records (or replays) it: `n - i ≥ 0 ⊢ n - i ≥ 0` via
/// the two-monomial fact no box absorbs.
fn fm_bound_query() -> bool {
    let mut a = ExprArena::new();
    let mut f = Facts::new();
    let n = a.var("n");
    let i = a.var("i");
    let d = a.sub(n, i);
    f.assume_ge0(&mut a, d);
    f.prove_ge0(&mut a, d)
}

#[test]
fn verdicts_replay_across_arenas() {
    let _g = guard();
    let path = tmp("replay");
    let _ = std::fs::remove_file(&path);
    assert_eq!(load_solver_cache(&path), 0, "missing file cold-starts");
    assert!(fm_bound_query());
    let (h, m, entries) = solver_cache_stats().unwrap();
    assert_eq!((h, entries), (0, 1), "cold run records one verdict");
    assert!(m >= 1);
    // A fresh arena interns different ids; the canonical key must replay.
    assert!(fm_bound_query());
    let (h2, _, entries2) = solver_cache_stats().unwrap();
    assert_eq!((h2, entries2), (1, 1), "warm run replays, not re-records");

    // And across a save/load cycle (simulating a process restart).
    assert_eq!(save_solver_cache().unwrap(), Some(path.clone()));
    clear_solver_cache();
    assert_eq!(load_solver_cache(&path), 1);
    assert!(fm_bound_query());
    assert_eq!(solver_cache_stats().unwrap().0, 1, "replayed from disk");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn warm_run_skips_fm_entirely() {
    let _g = guard();
    let path = tmp("warmfm");
    let _ = std::fs::remove_file(&path);
    talft_obs::set_enabled(true);
    load_solver_cache(&path);
    talft_obs::reset_all();
    assert!(fm_bound_query());
    let cold_fm = fm_runs();
    assert!(cold_fm >= 1, "cold query must run FM");
    talft_obs::reset_all();
    assert!(fm_bound_query());
    let warm_fm = fm_runs();
    talft_obs::set_enabled(false);
    assert_eq!(warm_fm, 0, "warm query must replay without FM");
}

fn fm_runs() -> u64 {
    talft_obs::snapshot()
        .counters
        .get("logic.fm.runs")
        .copied()
        .unwrap_or(0)
}

#[test]
fn cache_modes_are_verdict_identical() {
    let _g = guard();
    let path = tmp("differential");
    let _ = std::fs::remove_file(&path);

    let battery = || -> Vec<bool> {
        let mut a = ExprArena::new();
        let mut f = Facts::new();
        let i = a.var("i");
        let n = a.var("n");
        f.assume_in_range(&mut a, i, 0, 8);
        let d = a.sub(n, i);
        f.assume_ge0(&mut a, d);
        let seven = a.int(7);
        let hi = a.sub(seven, i);
        vec![
            f.prove_ge0(&mut a, d),
            f.prove_ge0(&mut a, hi),
            f.prove_ge0(&mut a, n),
            f.prove_eq(&mut a, i, n),
            f.prove_neq_zero(&mut a, d),
        ]
    };

    let disabled = battery();
    load_solver_cache(&path); // enabled, empty
    let cold = battery();
    let warm = battery(); // now replaying
    assert!(solver_cache_stats().unwrap().0 > 0, "warm pass must hit");
    clear_solver_cache();
    assert_eq!(disabled, cold);
    assert_eq!(disabled, warm);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupt_files_cold_start() {
    let _g = guard();
    let path = tmp("corrupt");
    for garbage in [
        "",                                                                // empty
        "talft-solver-cache v999\n",                                       // wrong version
        "talft-solver-cache v1\nnot-a-line\n",                             // malformed line
        "talft-solver-cache v1\n0000000000000000000000000000002a 2\n",     // bad verdict
        "talft-solver-cache v1\nzz 1\n",                                   // bad key
        "talft-solver-cache v1\n0000000000000000000000000000002a 1\nsnip", // truncated tail
    ] {
        std::fs::write(&path, garbage).unwrap();
        assert_eq!(load_solver_cache(&path), 0, "must reject: {garbage:?}");
        assert_eq!(
            solver_cache_stats().unwrap().2,
            0,
            "no entry trusted from: {garbage:?}"
        );
        clear_solver_cache();
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn save_is_deterministic() {
    let _g = guard();
    let path = tmp("det");
    let _ = std::fs::remove_file(&path);
    load_solver_cache(&path);
    assert!(fm_bound_query());
    save_solver_cache().unwrap();
    let first = std::fs::read_to_string(&path).unwrap();
    assert!(first.starts_with("talft-solver-cache v1\n"));
    clear_solver_cache();
    // Rebuild the same cache from scratch; the file must be identical.
    load_solver_cache(&path);
    save_solver_cache().unwrap();
    let second = std::fs::read_to_string(&path).unwrap();
    assert_eq!(first, second);
    clear_solver_cache();
    let _ = std::fs::remove_file(&path);
}
