//! Interval pre-solver observability tests (own binary: these enable the
//! process-global obs switch and assert exact counter relationships, which
//! must not interleave with the lib tests).

use std::sync::{Mutex, MutexGuard, OnceLock};

use talft_logic::{set_entail_interval, BinOp, ExprArena, Facts};

fn guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn counter(snap: &talft_obs::Snapshot, name: &str) -> u64 {
    snap.counters.get(name).copied().unwrap_or(0)
}

/// A checker-shaped workload: array-bounds and branch-condition queries over
/// range facts, mixing tier-1-answerable queries with FM-bound ones.
fn workload() -> Vec<bool> {
    let mut a = ExprArena::new();
    let mut f = Facts::new();
    let i = a.var("i");
    let n = a.var("n");
    let base = a.var("base");
    f.assume_in_range(&mut a, i, 0, 64);
    let fifteen = a.int(15);
    let masked = a.bin(BinOp::And, i, fifteen);
    let addr = a.add(base, i);
    let d = a.sub(n, i);
    f.assume_ge0(&mut a, d);
    let zero = a.int(0);
    let neg1 = a.int(-1);
    let one = a.int(1);
    let cond = a.bin(BinOp::Slt, i, n);
    f.assume_eq(&mut a, cond, one);
    let sixty_three = a.int(63);
    let hi_gap = a.sub(sixty_three, i);
    vec![
        f.prove_ge0(&mut a, i),                  // tier-1: i ∈ [0, 63]
        f.prove_ge0(&mut a, hi_gap),             // tier-1/2: 63 - i ≥ 0
        f.prove_in_range(&mut a, masked, 0, 16), // tier-1: And-mask shape
        f.prove_neq(&mut a, i, neg1),            // tier-1: box excludes -1
        f.prove_eq(&mut a, cond, one),           // solved branch condition
        f.prove_ge0(&mut a, d),                  // FM: two-monomial fact
        f.prove_in_range(&mut a, i, 0, 32),      // false: 32-bound unprovable
        f.prove_eq(&mut a, addr, base),          // false: i not provably 0
        f.prove_neq_zero(&mut a, zero),          // false: constant
    ]
}

#[test]
fn hit_miss_invariant_and_fm_reduction() {
    let _g = guard();
    talft_obs::set_enabled(true);

    set_entail_interval(true);
    talft_obs::reset_all();
    let verdicts_on = workload();
    let on = talft_obs::snapshot();

    set_entail_interval(false);
    talft_obs::reset_all();
    let verdicts_off = workload();
    let off = talft_obs::snapshot();

    set_entail_interval(true);
    talft_obs::set_enabled(false);

    // Transparency: the interval front must never change a verdict.
    assert_eq!(verdicts_on, verdicts_off);

    // checkperf --check invariant: every consultation is a hit or a miss.
    let queries = counter(&on, "logic.interval.queries");
    let hit = counter(&on, "logic.interval.hit");
    let miss = counter(&on, "logic.interval.miss");
    assert!(queries > 0, "workload must consult the interval layer");
    assert_eq!(hit + miss, queries, "hit {hit} + miss {miss} != {queries}");
    assert!(hit > 0, "range workload must produce interval hits");
    assert!(counter(&on, "logic.interval.narrowed") <= miss);

    // With the layer off, nothing is consulted and FM runs strictly more.
    assert_eq!(counter(&off, "logic.interval.queries"), 0);
    let fm_on = counter(&on, "logic.fm.runs");
    let fm_off = counter(&off, "logic.fm.runs");
    assert!(
        fm_on < fm_off,
        "interval layer must shed FM work (on: {fm_on}, off: {fm_off})"
    );
}

#[test]
fn no_fm_giveups_on_interval_workload() {
    let _g = guard();
    talft_obs::set_enabled(true);
    talft_obs::reset_all();
    let _ = workload();
    let snap = talft_obs::snapshot();
    talft_obs::set_enabled(false);
    assert_eq!(counter(&snap, "logic.fm.giveups"), 0);
}
