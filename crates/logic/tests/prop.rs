//! Property tests for `talft-logic`: the normal forms must be *sound* with
//! respect to the denotation `[[·]]` of Appendix A.2 — for every ground
//! environment, an expression and its reified normal form evaluate equal,
//! and every proved (dis)equality holds semantically.

use proptest::prelude::*;
use talft_logic::{
    eval_int, norm_int, reify_poly, BinOp, Env, ExprArena, Facts, MemVal,
};

/// A tiny recipe language for building random expressions without carrying
/// arena references through proptest generators.
#[derive(Debug, Clone)]
enum IntRecipe {
    Var(u8),
    Const(i64),
    Bin(BinOp, Box<IntRecipe>, Box<IntRecipe>),
    Sel(Box<MemRecipe>, Box<IntRecipe>),
}

#[derive(Debug, Clone)]
enum MemRecipe {
    Emp,
    MVar(u8),
    Upd(Box<MemRecipe>, Box<IntRecipe>, Box<IntRecipe>),
}

fn int_recipe() -> impl Strategy<Value = IntRecipe> {
    let leaf = prop_oneof![
        (0u8..4).prop_map(IntRecipe::Var),
        (-50i64..50).prop_map(IntRecipe::Const),
    ];
    leaf.prop_recursive(4, 48, 4, |inner| {
        let mem = mem_recipe_with(inner.clone());
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Slt),
                    Just(BinOp::Xor),
                    Just(BinOp::And),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| IntRecipe::Bin(op, Box::new(a), Box::new(b))),
            (mem, inner).prop_map(|(m, a)| IntRecipe::Sel(Box::new(m), Box::new(a))),
        ]
    })
}

fn mem_recipe_with(
    ints: impl Strategy<Value = IntRecipe> + Clone + 'static,
) -> impl Strategy<Value = MemRecipe> {
    let leaf = prop_oneof![Just(MemRecipe::Emp), (0u8..2).prop_map(MemRecipe::MVar)];
    leaf.prop_recursive(3, 24, 3, move |inner| {
        (inner, ints.clone(), ints.clone())
            .prop_map(|(m, a, v)| MemRecipe::Upd(Box::new(m), Box::new(a), Box::new(v)))
    })
}

fn build_int(arena: &mut ExprArena, r: &IntRecipe) -> talft_logic::ExprId {
    match r {
        IntRecipe::Var(i) => arena.var(&format!("x{i}")),
        IntRecipe::Const(n) => arena.int(*n),
        IntRecipe::Bin(op, a, b) => {
            let ea = build_int(arena, a);
            let eb = build_int(arena, b);
            arena.bin(*op, ea, eb)
        }
        IntRecipe::Sel(m, a) => {
            let em = build_mem(arena, m);
            let ea = build_int(arena, a);
            arena.sel(em, ea)
        }
    }
}

fn build_mem(arena: &mut ExprArena, r: &MemRecipe) -> talft_logic::ExprId {
    match r {
        MemRecipe::Emp => arena.emp(),
        MemRecipe::MVar(i) => arena.var(&format!("m{i}")),
        MemRecipe::Upd(m, a, v) => {
            let em = build_mem(arena, m);
            let ea = build_int(arena, a);
            let ev = build_int(arena, v);
            arena.upd(em, ea, ev)
        }
    }
}

fn ground_env(arena: &mut ExprArena, ints: &[i64; 4], mems: &[Vec<(i64, i64)>; 2]) -> Env {
    let mut env = Env::new();
    for (i, &n) in ints.iter().enumerate() {
        let v = arena.var_id(&format!("x{i}"));
        env.bind_int(v, n);
    }
    for (i, footprint) in mems.iter().enumerate() {
        let v = arena.var_id(&format!("m{i}"));
        let mut m = MemVal::new();
        for &(a, val) in footprint {
            m.set(a, val);
        }
        env.bind_mem(v, m);
    }
    env
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// [[reify(norm(e))]] == [[e]] for all ground environments.
    #[test]
    fn normalization_preserves_denotation(
        recipe in int_recipe(),
        ints in proptest::array::uniform4(-20i64..20),
        m0 in proptest::collection::vec((-30i64..30, -9i64..9), 0..5),
        m1 in proptest::collection::vec((-30i64..30, -9i64..9), 0..5),
    ) {
        let mut arena = ExprArena::new();
        let facts = Facts::new();
        let e = build_int(&mut arena, &recipe);
        let p = norm_int(&mut arena, &facts, e);
        let r = reify_poly(&mut arena, &p);
        let env = ground_env(&mut arena, &ints, &[m0, m1]);
        let lhs = eval_int(&arena, &env, e).expect("closed under env");
        let rhs = eval_int(&arena, &env, r).expect("closed under env");
        prop_assert_eq!(lhs, rhs);
    }

    /// Normalization is idempotent: norm(reify(norm(e))) == norm(e).
    #[test]
    fn normalization_idempotent(recipe in int_recipe()) {
        let mut arena = ExprArena::new();
        let facts = Facts::new();
        let e = build_int(&mut arena, &recipe);
        let p1 = norm_int(&mut arena, &facts, e);
        let r = reify_poly(&mut arena, &p1);
        let p2 = norm_int(&mut arena, &facts, r);
        prop_assert_eq!(p1, p2);
    }

    /// prove_eq soundness: if two random expressions are proved equal, they
    /// evaluate equal everywhere we sample.
    #[test]
    fn prove_eq_sound(
        r1 in int_recipe(),
        r2 in int_recipe(),
        ints in proptest::array::uniform4(-20i64..20),
        m0 in proptest::collection::vec((-30i64..30, -9i64..9), 0..5),
        m1 in proptest::collection::vec((-30i64..30, -9i64..9), 0..5),
    ) {
        let mut arena = ExprArena::new();
        let facts = Facts::new();
        let e1 = build_int(&mut arena, &r1);
        let e2 = build_int(&mut arena, &r2);
        if facts.prove_eq(&mut arena, e1, e2) {
            let env = ground_env(&mut arena, &ints, &[m0, m1]);
            let v1 = eval_int(&arena, &env, e1).expect("closed");
            let v2 = eval_int(&arena, &env, e2).expect("closed");
            prop_assert_eq!(v1, v2);
        }
    }

    /// prove_neq soundness on sampled environments.
    #[test]
    fn prove_neq_sound(
        r1 in int_recipe(),
        r2 in int_recipe(),
        ints in proptest::array::uniform4(-20i64..20),
        m0 in proptest::collection::vec((-30i64..30, -9i64..9), 0..5),
        m1 in proptest::collection::vec((-30i64..30, -9i64..9), 0..5),
    ) {
        let mut arena = ExprArena::new();
        let facts = Facts::new();
        let e1 = build_int(&mut arena, &r1);
        let e2 = build_int(&mut arena, &r2);
        if facts.prove_neq(&mut arena, e1, e2) {
            let env = ground_env(&mut arena, &ints, &[m0, m1]);
            let v1 = eval_int(&arena, &env, e1).expect("closed");
            let v2 = eval_int(&arena, &env, e2).expect("closed");
            prop_assert_ne!(v1, v2);
        }
    }

    /// Assumed facts restrict the environments; on environments *satisfying*
    /// an assumed equality, fact-aware normal forms still agree with eval.
    #[test]
    fn fact_aware_norm_sound_on_satisfying_env(
        recipe in int_recipe(),
        ints in proptest::array::uniform4(-20i64..20),
        m0 in proptest::collection::vec((-30i64..30, -9i64..9), 0..5),
        m1 in proptest::collection::vec((-30i64..30, -9i64..9), 0..5),
    ) {
        let mut arena = ExprArena::new();
        let mut facts = Facts::new();
        // Assume x0 = x1; then evaluate under an env where that holds.
        let x0 = arena.var("x0");
        let x1 = arena.var("x1");
        facts.assume_eq(&mut arena, x0, x1);
        let e = build_int(&mut arena, &recipe);
        let p = norm_int(&mut arena, &facts, e);
        let r = reify_poly(&mut arena, &p);
        let mut ints = ints;
        ints[1] = ints[0]; // make the env satisfy x0 = x1
        let env = ground_env(&mut arena, &ints, &[m0, m1]);
        let lhs = eval_int(&arena, &env, e).expect("closed");
        let rhs = eval_int(&arena, &env, r).expect("closed");
        prop_assert_eq!(lhs, rhs);
    }
}
