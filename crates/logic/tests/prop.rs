//! Randomized (seeded, dependency-free) property tests for `talft-logic`:
//! the normal forms must be *sound* with respect to the denotation `[[·]]`
//! of Appendix A.2 — for every ground environment, an expression and its
//! reified normal form evaluate equal, and every proved (dis)equality holds
//! semantically.

use talft_logic::{eval_int, norm_int, reify_poly, BinOp, Env, ExprArena, Facts, MemVal};
use talft_testutil::SplitMix64;

/// A tiny recipe language for building random expressions without carrying
/// arena references through the generators.
#[derive(Debug, Clone)]
enum IntRecipe {
    Var(u8),
    Const(i64),
    Bin(BinOp, Box<IntRecipe>, Box<IntRecipe>),
    Sel(Box<MemRecipe>, Box<IntRecipe>),
}

#[derive(Debug, Clone)]
enum MemRecipe {
    Emp,
    MVar(u8),
    Upd(Box<MemRecipe>, Box<IntRecipe>, Box<IntRecipe>),
}

const BINOPS: [BinOp; 6] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Slt,
    BinOp::Xor,
    BinOp::And,
];

fn int_recipe(r: &mut SplitMix64, depth: u32) -> IntRecipe {
    if depth == 0 || r.chance(1, 3) {
        return if r.chance(1, 2) {
            IntRecipe::Var(r.below(4) as u8)
        } else {
            IntRecipe::Const(r.range_i64(-50, 50))
        };
    }
    if r.chance(1, 5) {
        IntRecipe::Sel(
            Box::new(mem_recipe(r, depth - 1)),
            Box::new(int_recipe(r, depth - 1)),
        )
    } else {
        IntRecipe::Bin(
            *r.pick(&BINOPS),
            Box::new(int_recipe(r, depth - 1)),
            Box::new(int_recipe(r, depth - 1)),
        )
    }
}

fn mem_recipe(r: &mut SplitMix64, depth: u32) -> MemRecipe {
    if depth == 0 || r.chance(1, 2) {
        return if r.chance(1, 3) {
            MemRecipe::Emp
        } else {
            MemRecipe::MVar(r.below(2) as u8)
        };
    }
    MemRecipe::Upd(
        Box::new(mem_recipe(r, depth - 1)),
        Box::new(int_recipe(r, depth - 1)),
        Box::new(int_recipe(r, depth - 1)),
    )
}

fn build_int(arena: &mut ExprArena, r: &IntRecipe) -> talft_logic::ExprId {
    match r {
        IntRecipe::Var(i) => arena.var(&format!("x{i}")),
        IntRecipe::Const(n) => arena.int(*n),
        IntRecipe::Bin(op, a, b) => {
            let ea = build_int(arena, a);
            let eb = build_int(arena, b);
            arena.bin(*op, ea, eb)
        }
        IntRecipe::Sel(m, a) => {
            let em = build_mem(arena, m);
            let ea = build_int(arena, a);
            arena.sel(em, ea)
        }
    }
}

fn build_mem(arena: &mut ExprArena, r: &MemRecipe) -> talft_logic::ExprId {
    match r {
        MemRecipe::Emp => arena.emp(),
        MemRecipe::MVar(i) => arena.var(&format!("m{i}")),
        MemRecipe::Upd(m, a, v) => {
            let em = build_mem(arena, m);
            let ea = build_int(arena, a);
            let ev = build_int(arena, v);
            arena.upd(em, ea, ev)
        }
    }
}

fn ground_env(arena: &mut ExprArena, ints: &[i64; 4], mems: &[Vec<(i64, i64)>; 2]) -> Env {
    let mut env = Env::new();
    for (i, &n) in ints.iter().enumerate() {
        let v = arena.var_id(&format!("x{i}"));
        env.bind_int(v, n);
    }
    for (i, footprint) in mems.iter().enumerate() {
        let v = arena.var_id(&format!("m{i}"));
        let mut m = MemVal::new();
        for &(a, val) in footprint {
            m.set(a, val);
        }
        env.bind_mem(v, m);
    }
    env
}

fn rand_ints(r: &mut SplitMix64) -> [i64; 4] {
    [
        r.range_i64(-20, 20),
        r.range_i64(-20, 20),
        r.range_i64(-20, 20),
        r.range_i64(-20, 20),
    ]
}

fn rand_mem(r: &mut SplitMix64) -> Vec<(i64, i64)> {
    (0..r.index(5))
        .map(|_| (r.range_i64(-30, 30), r.range_i64(-9, 9)))
        .collect()
}

/// [[reify(norm(e))]] == [[e]] for all ground environments.
#[test]
fn normalization_preserves_denotation() {
    let mut rng = SplitMix64::new(0x4042_0001);
    for case in 0..512 {
        let recipe = int_recipe(&mut rng, 4);
        let ints = rand_ints(&mut rng);
        let mems = [rand_mem(&mut rng), rand_mem(&mut rng)];
        let mut arena = ExprArena::new();
        let facts = Facts::new();
        let e = build_int(&mut arena, &recipe);
        let p = norm_int(&mut arena, &facts, e);
        let r = reify_poly(&mut arena, &p);
        let env = ground_env(&mut arena, &ints, &mems);
        let lhs = eval_int(&arena, &env, e).expect("closed under env");
        let rhs = eval_int(&arena, &env, r).expect("closed under env");
        assert_eq!(lhs, rhs, "case {case}: {recipe:?}");
    }
}

/// Normalization is idempotent: norm(reify(norm(e))) == norm(e).
#[test]
fn normalization_idempotent() {
    let mut rng = SplitMix64::new(0x4042_0002);
    for case in 0..512 {
        let recipe = int_recipe(&mut rng, 4);
        let mut arena = ExprArena::new();
        let facts = Facts::new();
        let e = build_int(&mut arena, &recipe);
        let p1 = norm_int(&mut arena, &facts, e);
        let r = reify_poly(&mut arena, &p1);
        let p2 = norm_int(&mut arena, &facts, r);
        assert_eq!(p1, p2, "case {case}: {recipe:?}");
    }
}

/// prove_eq soundness: if two random expressions are proved equal, they
/// evaluate equal everywhere we sample.
#[test]
fn prove_eq_sound() {
    let mut rng = SplitMix64::new(0x4042_0003);
    for case in 0..512 {
        let r1 = int_recipe(&mut rng, 4);
        let r2 = int_recipe(&mut rng, 4);
        let ints = rand_ints(&mut rng);
        let mems = [rand_mem(&mut rng), rand_mem(&mut rng)];
        let mut arena = ExprArena::new();
        let facts = Facts::new();
        let e1 = build_int(&mut arena, &r1);
        let e2 = build_int(&mut arena, &r2);
        if facts.prove_eq(&mut arena, e1, e2) {
            let env = ground_env(&mut arena, &ints, &mems);
            let v1 = eval_int(&arena, &env, e1).expect("closed");
            let v2 = eval_int(&arena, &env, e2).expect("closed");
            assert_eq!(v1, v2, "case {case}: {r1:?} vs {r2:?}");
        }
    }
}

/// prove_neq soundness on sampled environments.
#[test]
fn prove_neq_sound() {
    let mut rng = SplitMix64::new(0x4042_0004);
    for case in 0..512 {
        let r1 = int_recipe(&mut rng, 4);
        let r2 = int_recipe(&mut rng, 4);
        let ints = rand_ints(&mut rng);
        let mems = [rand_mem(&mut rng), rand_mem(&mut rng)];
        let mut arena = ExprArena::new();
        let facts = Facts::new();
        let e1 = build_int(&mut arena, &r1);
        let e2 = build_int(&mut arena, &r2);
        if facts.prove_neq(&mut arena, e1, e2) {
            let env = ground_env(&mut arena, &ints, &mems);
            let v1 = eval_int(&arena, &env, e1).expect("closed");
            let v2 = eval_int(&arena, &env, e2).expect("closed");
            assert_ne!(v1, v2, "case {case}: {r1:?} vs {r2:?}");
        }
    }
}

/// Assumed facts restrict the environments; on environments *satisfying*
/// an assumed equality, fact-aware normal forms still agree with eval.
#[test]
fn fact_aware_norm_sound_on_satisfying_env() {
    let mut rng = SplitMix64::new(0x4042_0005);
    for case in 0..512 {
        let recipe = int_recipe(&mut rng, 4);
        let mut ints = rand_ints(&mut rng);
        let mems = [rand_mem(&mut rng), rand_mem(&mut rng)];
        let mut arena = ExprArena::new();
        let mut facts = Facts::new();
        // Assume x0 = x1; then evaluate under an env where that holds.
        let x0 = arena.var("x0");
        let x1 = arena.var("x1");
        facts.assume_eq(&mut arena, x0, x1);
        let e = build_int(&mut arena, &recipe);
        let p = norm_int(&mut arena, &facts, e);
        let r = reify_poly(&mut arena, &p);
        ints[1] = ints[0]; // make the env satisfy x0 = x1
        let env = ground_env(&mut arena, &ints, &mems);
        let lhs = eval_int(&arena, &env, e).expect("closed");
        let rhs = eval_int(&arena, &env, r).expect("closed");
        assert_eq!(lhs, rhs, "case {case}: {recipe:?}");
    }
}
