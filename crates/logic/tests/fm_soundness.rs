//! Brute-force soundness check for the Fourier–Motzkin entailment: whenever
//! `prove_ge0` succeeds from a set of linear facts, the entailment must hold
//! at every integer grid point satisfying the facts. (Completeness is not
//! asserted — the prover is allowed to say "unknown".) Seeded and
//! dependency-free.

use talft_logic::{ExprArena, Facts};
use talft_testutil::SplitMix64;

/// Build `a·x + b·y + c` in the arena.
fn lin(arena: &mut ExprArena, a: i64, b: i64, c: i64) -> talft_logic::ExprId {
    let x = arena.var("x");
    let y = arena.var("y");
    let ae = arena.int(a);
    let be = arena.int(b);
    let ce = arena.int(c);
    let ax = arena.mul(ae, x);
    let by = arena.mul(be, y);
    let s = arena.add(ax, by);
    arena.add(s, ce)
}

fn coeffs(r: &mut SplitMix64) -> (i64, i64, i64) {
    (r.range_i64(-3, 4), r.range_i64(-3, 4), r.range_i64(-6, 7))
}

#[test]
fn fm_entailments_hold_on_the_grid() {
    let mut rng = SplitMix64::new(0xF0F0_0001);
    for case in 0..512 {
        let facts_coeffs: Vec<(i64, i64, i64)> =
            (0..rng.index(4)).map(|_| coeffs(&mut rng)).collect();
        let q = coeffs(&mut rng);
        let mut arena = ExprArena::new();
        let mut facts = Facts::new();
        for &(a, b, c) in &facts_coeffs {
            let e = lin(&mut arena, a, b, c);
            facts.assume_ge0(&mut arena, e);
        }
        let query = lin(&mut arena, q.0, q.1, q.2);
        if facts.prove_ge0(&mut arena, query) {
            for xv in -8i64..=8 {
                for yv in -8i64..=8 {
                    let sat = facts_coeffs
                        .iter()
                        .all(|&(a, b, c)| a * xv + b * yv + c >= 0);
                    if sat {
                        assert!(
                            q.0 * xv + q.1 * yv + q.2 >= 0,
                            "case {case} unsound: facts {facts_coeffs:?} ⊬ {q:?} at ({xv},{yv})"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn fm_neq_entailments_hold_on_the_grid() {
    let mut rng = SplitMix64::new(0xF0F0_0002);
    for case in 0..512 {
        let facts_coeffs: Vec<(i64, i64, i64)> =
            (0..rng.index(4)).map(|_| coeffs(&mut rng)).collect();
        let q = coeffs(&mut rng);
        let mut arena = ExprArena::new();
        let mut facts = Facts::new();
        for &(a, b, c) in &facts_coeffs {
            let e = lin(&mut arena, a, b, c);
            facts.assume_ge0(&mut arena, e);
        }
        let query = lin(&mut arena, q.0, q.1, q.2);
        if facts.prove_neq_zero(&mut arena, query) {
            for xv in -8i64..=8 {
                for yv in -8i64..=8 {
                    let sat = facts_coeffs
                        .iter()
                        .all(|&(a, b, c)| a * xv + b * yv + c >= 0);
                    if sat {
                        assert!(
                            q.0 * xv + q.1 * yv + q.2 != 0,
                            "case {case} unsound ≠: facts {facts_coeffs:?} at ({xv},{yv})"
                        );
                    }
                }
            }
        }
    }
}
