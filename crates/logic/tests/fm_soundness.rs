//! Brute-force soundness check for the Fourier–Motzkin entailment: whenever
//! `prove_ge0` succeeds from a set of linear facts, the entailment must hold
//! at every integer grid point satisfying the facts. (Completeness is not
//! asserted — the prover is allowed to say "unknown".)

use proptest::prelude::*;
use talft_logic::{ExprArena, Facts};

/// Build `a·x + b·y + c` in the arena.
fn lin(arena: &mut ExprArena, a: i64, b: i64, c: i64) -> talft_logic::ExprId {
    let x = arena.var("x");
    let y = arena.var("y");
    let ae = arena.int(a);
    let be = arena.int(b);
    let ce = arena.int(c);
    let ax = arena.mul(ae, x);
    let by = arena.mul(be, y);
    let s = arena.add(ax, by);
    arena.add(s, ce)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn fm_entailments_hold_on_the_grid(
        facts_coeffs in proptest::collection::vec((-3i64..4, -3i64..4, -6i64..7), 0..4),
        q in (-3i64..4, -3i64..4, -6i64..7),
    ) {
        let mut arena = ExprArena::new();
        let mut facts = Facts::new();
        for &(a, b, c) in &facts_coeffs {
            let e = lin(&mut arena, a, b, c);
            facts.assume_ge0(&mut arena, e);
        }
        let query = lin(&mut arena, q.0, q.1, q.2);
        if facts.prove_ge0(&mut arena, query) {
            for xv in -8i64..=8 {
                for yv in -8i64..=8 {
                    let sat = facts_coeffs
                        .iter()
                        .all(|&(a, b, c)| a * xv + b * yv + c >= 0);
                    if sat {
                        prop_assert!(
                            q.0 * xv + q.1 * yv + q.2 >= 0,
                            "unsound: facts {facts_coeffs:?} ⊬ {q:?} at ({xv},{yv})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fm_neq_entailments_hold_on_the_grid(
        facts_coeffs in proptest::collection::vec((-3i64..4, -3i64..4, -6i64..7), 0..4),
        q in (-3i64..4, -3i64..4, -6i64..7),
    ) {
        let mut arena = ExprArena::new();
        let mut facts = Facts::new();
        for &(a, b, c) in &facts_coeffs {
            let e = lin(&mut arena, a, b, c);
            facts.assume_ge0(&mut arena, e);
        }
        let query = lin(&mut arena, q.0, q.1, q.2);
        if facts.prove_neq_zero(&mut arena, query) {
            for xv in -8i64..=8 {
                for yv in -8i64..=8 {
                    let sat = facts_coeffs
                        .iter()
                        .all(|&(a, b, c)| a * xv + b * yv + c >= 0);
                    if sat {
                        prop_assert!(
                            q.0 * xv + q.1 * yv + q.2 != 0,
                            "unsound ≠: facts {facts_coeffs:?} at ({xv},{yv})"
                        );
                    }
                }
            }
        }
    }
}
