//! Failure witnesses for entailment queries (DESIGN.md §13).
//!
//! When the checker or a lint cannot prove an obligation, a bare "cannot
//! prove" is hard to act on. An [`EntailWitness`] reconstructs *why* the
//! proof failed, on demand and independently of which solver tier answered
//! (interval, memo cache, persistent cache, or FM — all verdict-identical,
//! so the explanation may be recomputed from the hypotheses alone):
//!
//! * a constant residue ("the sides differ by the constant 3");
//! * an atom no hypothesis constrains ("no fact bounds `r3'`");
//! * or the best provable interval versus the needed relation ("facts
//!   bound `(sub n i)` to \[0, 7\], need ≥ 8").
//!
//! `talft-core` attaches the rendered note to TF000 diagnostics and
//! `talft-analysis` to lint notes. Because the builders re-derive the
//! explanation from the same `Facts`, enabling or disabling any cache
//! layer cannot change diagnostic text — `tests/interval_prop.rs` pins
//! this.

use crate::entail::Facts;
use crate::expr::{ExprArena, ExprId};
use crate::interval;
use crate::norm::{norm_int, Poly};

/// Structured explanation of a failed entailment query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntailWitness {
    /// The rendered query, e.g. ``"`i` = `n`"``.
    query: String,
    /// Why the proof failed, e.g. ``"no fact bounds `n`"``.
    reason: String,
    /// Rendered hypotheses that mention the query's atoms (the facts the
    /// prover actually consulted), capped for display.
    used: Vec<String>,
}

/// Hypotheses rendered into a note beyond this count are summarized.
const MAX_USED: usize = 3;

impl EntailWitness {
    /// The rendered query.
    #[must_use]
    pub fn query(&self) -> &str {
        &self.query
    }

    /// The failure reason.
    #[must_use]
    pub fn reason(&self) -> &str {
        &self.reason
    }

    /// Hypotheses mentioning the query's atoms, rendered.
    #[must_use]
    pub fn used_facts(&self) -> &[String] {
        &self.used
    }

    /// The full single-line note: `cannot prove <query>: <reason>`, with
    /// the consulted hypotheses appended when any exist.
    #[must_use]
    pub fn note(&self) -> String {
        let mut s = format!("cannot prove {}: {}", self.query, self.reason);
        if !self.used.is_empty() {
            s.push_str(" [with ");
            s.push_str(&self.used.join(", "));
            s.push(']');
        }
        s
    }
}

/// What relation the failed query needed of its residue polynomial.
#[derive(Clone, Copy)]
enum Need {
    Zero,
    Ge0,
    NonZero,
}

impl Facts {
    /// Explain why `e1 = e2` is not provable (call after a failed
    /// [`Facts::prove_eq`]).
    pub fn explain_eq(&self, arena: &mut ExprArena, e1: ExprId, e2: ExprId) -> EntailWitness {
        let query = format!("`{}` = `{}`", arena.display(e1), arena.display(e2));
        let p1 = norm_int(arena, self, e1);
        let p2 = norm_int(arena, self, e2);
        self.diagnose(arena, query, &p1.sub(&p2), Need::Zero)
    }

    /// Explain why `e = 0` is not provable.
    pub fn explain_eq_zero(&self, arena: &mut ExprArena, e: ExprId) -> EntailWitness {
        let query = format!("`{}` = 0", arena.display(e));
        let p = norm_int(arena, self, e);
        self.diagnose(arena, query, &p, Need::Zero)
    }

    /// Explain why `e ≥ 0` is not provable.
    pub fn explain_ge0(&self, arena: &mut ExprArena, e: ExprId) -> EntailWitness {
        let query = format!("`{}` >= 0", arena.display(e));
        let p = norm_int(arena, self, e);
        self.diagnose(arena, query, &p, Need::Ge0)
    }

    /// Explain why `e1 ≠ e2` is not provable.
    pub fn explain_neq(&self, arena: &mut ExprArena, e1: ExprId, e2: ExprId) -> EntailWitness {
        let query = format!("`{}` != `{}`", arena.display(e1), arena.display(e2));
        let p1 = norm_int(arena, self, e1);
        let p2 = norm_int(arena, self, e2);
        self.diagnose(arena, query, &p1.sub(&p2), Need::NonZero)
    }

    /// Explain why `e ≠ 0` is not provable.
    pub fn explain_neq_zero(&self, arena: &mut ExprArena, e: ExprId) -> EntailWitness {
        let query = format!("`{}` != 0", arena.display(e));
        let p = norm_int(arena, self, e);
        self.diagnose(arena, query, &p, Need::NonZero)
    }

    fn diagnose(&self, arena: &ExprArena, query: String, d: &Poly, need: Need) -> EntailWitness {
        if let Some(c) = d.as_constant() {
            let reason = match need {
                Need::Zero => format!("the sides differ by the constant {c}"),
                Need::Ge0 => format!("it normalizes to the constant {c}"),
                Need::NonZero => "both sides normalize to the same polynomial".to_owned(),
            };
            return EntailWitness {
                query,
                reason,
                used: Vec::new(),
            };
        }
        let atoms = poly_atoms(d);
        let used = self.render_used(arena, &atoms);
        let env = self.interval_env();
        // First an atom nothing constrains — the most common failure and
        // the most actionable message.
        for &a in &atoms {
            let itv = interval::eval_tree(arena, &env, true, a);
            if itv.is_some_and(|iv| !iv.is_narrowed()) && !self.mentions(a) {
                return EntailWitness {
                    query,
                    reason: format!("no fact bounds `{}`", arena.display(a)),
                    used,
                };
            }
        }
        // Otherwise report the best provable range of the residue.
        let reason = match poly_range(arena, &env, d) {
            Some((lo, hi)) => {
                let needed = match need {
                    Need::Zero => "= 0",
                    Need::Ge0 => ">= 0",
                    Need::NonZero => "!= 0",
                };
                format!(
                    "facts only bound `{}` to {}, need {}",
                    render_poly(arena, d),
                    render_range(lo, hi),
                    needed
                )
            }
            None => format!("the facts do not determine `{}`", render_poly(arena, d)),
        };
        EntailWitness {
            query,
            reason,
            used,
        }
    }

    /// Whether any stored hypothesis mentions the atom.
    fn mentions(&self, atom: ExprId) -> bool {
        let (solved, eqs, neqs, ges) = self.hyp_views();
        solved
            .iter()
            .any(|(a, p)| *a == atom || p.mentions_atom(atom))
            || eqs
                .iter()
                .chain(neqs.iter())
                .chain(ges.iter())
                .any(|p| p.mentions_atom(atom))
    }

    /// Render the hypotheses that mention any of the query's atoms.
    fn render_used(&self, arena: &ExprArena, atoms: &[ExprId]) -> Vec<String> {
        let relevant = |p: &Poly| atoms.iter().any(|&a| p.mentions_atom(a));
        let (solved, eqs, neqs, ges) = self.hyp_views();
        let mut used: Vec<String> = Vec::new();
        let mut extra = 0usize;
        let mut push = |s: String| {
            if used.len() < MAX_USED {
                used.push(s);
            } else {
                extra += 1;
            }
        };
        for (a, p) in solved {
            if atoms.contains(a) || relevant(p) {
                push(format!(
                    "`{}` = `{}`",
                    arena.display(*a),
                    render_poly(arena, p)
                ));
            }
        }
        for p in eqs {
            if relevant(p) {
                push(format!("`{}` = 0", render_poly(arena, p)));
            }
        }
        for p in neqs {
            if relevant(p) {
                push(format!("`{}` != 0", render_poly(arena, p)));
            }
        }
        for p in ges {
            if relevant(p) {
                push(format!("`{}` >= 0", render_poly(arena, p)));
            }
        }
        if extra > 0 {
            used.push(format!("{extra} more"));
        }
        used
    }
}

/// Distinct atoms of a polynomial, in term order.
fn poly_atoms(p: &Poly) -> Vec<ExprId> {
    let mut out = Vec::new();
    for (m, _) in p.terms() {
        for &a in m.iter() {
            if !out.contains(&a) {
                out.push(a);
            }
        }
    }
    out
}

/// Best provable `[lo, hi]` of `p` from per-atom intervals (nonlinear
/// monomials are unbounded). `None` when evaluation declines.
fn poly_range(
    arena: &ExprArena,
    env: &crate::interval::IntervalEnv,
    p: &Poly,
) -> Option<(Option<i128>, Option<i128>)> {
    let mut lo: Option<i128> = Some(0);
    let mut hi: Option<i128> = Some(0);
    for (m, c) in p.terms() {
        let c = i128::from(c);
        let (alo, ahi): (Option<i128>, Option<i128>) = if m.is_empty() {
            (Some(1), Some(1))
        } else if m.len() == 1 {
            let iv = interval::eval_tree(arena, env, true, m[0])?;
            (iv.lo.map(i128::from), iv.hi.map(i128::from))
        } else {
            (None, None)
        };
        // contribution of c·atom: c > 0 keeps orientation, c < 0 flips it.
        let (clo, chi) = if c >= 0 {
            (alo.map(|v| v * c), ahi.map(|v| v * c))
        } else {
            (ahi.map(|v| v * c), alo.map(|v| v * c))
        };
        lo = match (lo, clo) {
            (Some(a), Some(b)) => Some(a + b),
            _ => None,
        };
        hi = match (hi, chi) {
            (Some(a), Some(b)) => Some(a + b),
            _ => None,
        };
    }
    Some((lo, hi))
}

fn render_range(lo: Option<i128>, hi: Option<i128>) -> String {
    match (lo, hi) {
        (Some(l), Some(h)) => format!("[{l}, {h}]"),
        (Some(l), None) => format!("[{l}, +inf)"),
        (None, Some(h)) => format!("(-inf, {h}]"),
        (None, None) => "(-inf, +inf)".to_owned(),
    }
}

/// Render a polynomial readably: `n - i - 1`, `2*i + (sel m j)`.
#[must_use]
pub(crate) fn render_poly(arena: &ExprArena, p: &Poly) -> String {
    let mut s = String::new();
    for (m, c) in p.terms() {
        let mag = c.unsigned_abs();
        let first = s.is_empty();
        if c < 0 {
            s.push_str(if first { "-" } else { " - " });
        } else if !first {
            s.push_str(" + ");
        }
        if m.is_empty() {
            s.push_str(&mag.to_string());
        } else {
            if mag != 1 {
                s.push_str(&mag.to_string());
                s.push('*');
            }
            for (i, &a) in m.iter().enumerate() {
                if i > 0 {
                    s.push('*');
                }
                s.push_str(&arena.display(a));
            }
        }
    }
    if s.is_empty() {
        s.push('0');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_residue_is_explained() {
        let mut a = ExprArena::new();
        let f = Facts::new();
        let x = a.var("x");
        let one = a.int(1);
        let x1 = a.add(x, one);
        assert!(!f.prove_eq(&mut a, x, x1));
        let w = f.explain_eq(&mut a, x, x1);
        assert_eq!(
            w.note(),
            "cannot prove `x` = `(add x 1)`: the sides differ by the constant -1"
        );
    }

    #[test]
    fn unbounded_atom_is_named() {
        let mut a = ExprArena::new();
        let f = Facts::new();
        let x = a.var("x");
        let y = a.var("y");
        assert!(!f.prove_eq(&mut a, x, y));
        let w = f.explain_eq(&mut a, x, y);
        assert_eq!(w.reason(), "no fact bounds `x`");
        assert!(w.used_facts().is_empty());
    }

    #[test]
    fn insufficient_range_is_reported_with_facts() {
        let mut a = ExprArena::new();
        let mut f = Facts::new();
        let i = a.var("i");
        f.assume_in_range(&mut a, i, 0, 8); // 0 ≤ i ≤ 7
        let seven = a.int(7);
        let d = a.sub(i, seven);
        assert!(!f.prove_ge0(&mut a, d)); // needs i ≥ 7, only i ≥ 0 known
        let w = f.explain_ge0(&mut a, d);
        assert_eq!(
            w.note(),
            "cannot prove `(sub i 7)` >= 0: facts only bound `-7 + i` to [-7, 0], \
             need >= 0 [with `i` >= 0, `7 - i` >= 0]"
        );
    }

    #[test]
    fn witness_text_is_cache_mode_independent() {
        let mut texts = Vec::new();
        for (iv, pc) in [(true, true), (true, false), (false, true), (false, false)] {
            let _g = crate::entail::solver_knob_guard(Some(pc), Some(iv));
            let mut a = ExprArena::new();
            let mut f = Facts::new();
            let i = a.var("i");
            let n = a.var("n");
            f.assume_ge0(&mut a, i);
            let d = a.sub(n, i);
            let _ = f.prove_ge0(&mut a, d);
            texts.push(f.explain_ge0(&mut a, d).note());
        }
        assert!(texts.windows(2).all(|w| w[0] == w[1]), "{texts:?}");
    }
}
