//! Persistent cross-run solver cache (DESIGN.md §13).
//!
//! Entailment verdicts are pure functions of the *normalized* query
//! polynomial and the hypothesis polynomials, so they can be replayed
//! across processes — the E14 mutation sweep and the E17 lint grids
//! re-prove largely identical obligations on every run. This module keys
//! verdicts on a canonical, **arena-independent** normal form:
//!
//! * every atom is serialized structurally (operators, integer literals,
//!   and variable *names* — never [`crate::ExprId`]s, which are
//!   arena-relative);
//! * monomial factors and polynomial terms are sorted by their serialized
//!   bytes, erasing arena interning order;
//! * the query kind is tagged (`QueryTag`), and the hypothesis vectors
//!   (`eqs`/`neqs`/`ges`, already closed under the solved substitution)
//!   are fingerprinted in storage order — order-sensitivity only costs
//!   misses, never wrong hits;
//! * the serialized bytes are folded into a 128-bit hash (two independent
//!   64-bit streams), making accidental collisions negligible.
//!
//! **Invalidation rules**: the key covers everything a post-normalization
//! verdict depends on — change the query, any hypothesis, or the shape of
//! any atom (implicit bounds read atom shapes) and the key changes. The
//! solver's *code* is versioned by the file header: bump `FORMAT` whenever
//! the decision procedures change meaning. A file that fails any part of
//! the strict parse is discarded wholesale (cold start) — a corrupt cache
//! is never trusted.
//!
//! Writes go to a sibling `.tmp` file and are atomically renamed into
//! place, like the PR 6 campaign checkpoints. The cache is process-global
//! and disabled until [`load_solver_cache`] names a backing file
//! (`talftc --solver-cache`, and the `mutation`/`lint` bench bins).

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

use talft_obs::LazyCounter;

use crate::entail::Facts;
use crate::expr::{ExprArena, ExprId, ExprNode};
use crate::norm::Poly;

/// Persistent-cache metrics (DESIGN.md §Observability); only recorded
/// while a cache is loaded.
static PC_HIT: LazyCounter = LazyCounter::new("logic.pcache.hit");
static PC_MISS: LazyCounter = LazyCounter::new("logic.pcache.miss");

/// File-format header; bump when keys or decision procedures change.
const FORMAT: &str = "talft-solver-cache v1";

#[derive(Default)]
struct PCache {
    path: PathBuf,
    entries: HashMap<u128, bool>,
    hits: u64,
    misses: u64,
}

fn store() -> &'static Mutex<Option<PCache>> {
    static S: OnceLock<Mutex<Option<PCache>>> = OnceLock::new();
    S.get_or_init(|| Mutex::new(None))
}

fn lock() -> std::sync::MutexGuard<'static, Option<PCache>> {
    store()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Enable the persistent solver cache backed by `path`, loading any
/// previously saved verdicts. Returns the number of entries loaded — `0`
/// when the file is missing **or fails the strict parse** (truncated or
/// garbage files cold-start; they are never partially trusted).
pub fn load_solver_cache(path: impl AsRef<Path>) -> usize {
    let path = path.as_ref().to_path_buf();
    let entries = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| parse(&text))
        .unwrap_or_default();
    let n = entries.len();
    *lock() = Some(PCache {
        path,
        entries,
        hits: 0,
        misses: 0,
    });
    n
}

/// Write the cache back to its backing file (atomic tmp+rename), returning
/// the path written, or `None` when no cache is loaded. Entries are written
/// in sorted key order so equal caches produce identical files.
pub fn save_solver_cache() -> std::io::Result<Option<PathBuf>> {
    let (path, mut keys, entries) = {
        let guard = lock();
        let Some(pc) = guard.as_ref() else {
            return Ok(None);
        };
        let keys: Vec<u128> = pc.entries.keys().copied().collect();
        (pc.path.clone(), keys, pc.entries.clone())
    };
    keys.sort_unstable();
    let mut text = String::with_capacity(keys.len() * 36 + FORMAT.len() + 1);
    text.push_str(FORMAT);
    text.push('\n');
    for k in &keys {
        use std::fmt::Write as _;
        let _ = writeln!(text, "{k:032x} {}", u8::from(entries[k]));
    }
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &path)?;
    Ok(Some(path))
}

/// Drop the in-memory cache and disable persistent lookups (tests and
/// one-shot tools; nothing is written — pair with [`save_solver_cache`]).
pub fn clear_solver_cache() {
    *lock() = None;
}

/// `(hits, misses, entries)` of the loaded cache, or `None` when disabled.
#[must_use]
pub fn solver_cache_stats() -> Option<(u64, u64, usize)> {
    lock()
        .as_ref()
        .map(|pc| (pc.hits, pc.misses, pc.entries.len()))
}

/// Whether a persistent cache is currently loaded.
#[must_use]
pub(crate) fn pcache_enabled() -> bool {
    lock().is_some()
}

pub(crate) fn pcache_lookup(key: u128) -> Option<bool> {
    let mut guard = lock();
    let pc = guard.as_mut()?;
    let hit = pc.entries.get(&key).copied();
    if hit.is_some() {
        pc.hits += 1;
        PC_HIT.inc();
    } else {
        pc.misses += 1;
        PC_MISS.inc();
    }
    hit
}

pub(crate) fn pcache_record(key: u128, verdict: bool) {
    if let Some(pc) = lock().as_mut() {
        pc.entries.insert(key, verdict);
    }
}

/// Strict parse of the cache text: exact header, then `<32-hex> <0|1>`
/// lines. Any deviation rejects the entire file.
fn parse(text: &str) -> Option<HashMap<u128, bool>> {
    let mut lines = text.lines();
    if lines.next()? != FORMAT {
        return None;
    }
    let mut map = HashMap::new();
    for line in lines {
        let (k, v) = line.split_once(' ')?;
        if k.len() != 32 || !k.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let key = u128::from_str_radix(k, 16).ok()?;
        let verdict = match v {
            "0" => false,
            "1" => true,
            _ => return None,
        };
        map.insert(key, verdict);
    }
    Some(map)
}

// ---- canonical query keys -------------------------------------------------

/// Which decision procedure the verdict came from; part of the key because
/// the same polynomial means different things per judgment.
#[derive(Debug, Clone, Copy)]
pub(crate) enum QueryTag {
    /// `d = 0` via `poly_provably_zero` (no implicit bounds).
    Eq = 1,
    /// `p ≥ 0` via FM with implicit shape bounds.
    Ge0 = 2,
    /// `d ≠ 0` via `poly_nonzero_with`.
    Neq = 3,
}

/// Two independent 64-bit streams (FNV-1a and a rotate-multiply mix)
/// concatenated into a 128-bit key.
struct H128 {
    a: u64,
    b: u64,
}

impl H128 {
    fn new() -> Self {
        H128 {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn write(&mut self, bytes: &[u8]) {
        for &x in bytes {
            self.a = (self.a ^ u64::from(x)).wrapping_mul(0x0000_0100_0000_01b3);
            self.b = (self.b ^ u64::from(x))
                .wrapping_mul(0xbf58_476d_1ce4_e5b9)
                .rotate_left(29);
        }
    }

    fn finish(&self) -> u128 {
        (u128::from(self.a) << 64) | u128::from(self.b)
    }
}

/// Serialize an expression structurally: tags, literals, and variable
/// *names* — no arena ids anywhere.
fn ser_expr(arena: &ExprArena, e: ExprId, out: &mut Vec<u8>) {
    match arena.node(e) {
        ExprNode::Int(n) => {
            out.push(1);
            out.extend(n.to_le_bytes());
        }
        ExprNode::Var(v) => {
            let name = arena.var_name(v).as_bytes();
            out.push(2);
            out.extend((name.len() as u32).to_le_bytes());
            out.extend(name);
        }
        ExprNode::Bin(op, a, b) => {
            out.push(3);
            out.push(op as u8);
            ser_expr(arena, a, out);
            ser_expr(arena, b, out);
        }
        ExprNode::Sel(m, a) => {
            out.push(4);
            ser_expr(arena, m, out);
            ser_expr(arena, a, out);
        }
        ExprNode::Emp => out.push(5),
        ExprNode::Upd(m, a, v) => {
            out.push(6);
            ser_expr(arena, m, out);
            ser_expr(arena, a, out);
            ser_expr(arena, v, out);
        }
    }
}

/// Serialize a polynomial canonically: monomial factors and terms sorted
/// by their serialized bytes (BTreeMap iteration order is id-relative and
/// must not leak into the key).
fn ser_poly(arena: &ExprArena, p: &Poly, out: &mut Vec<u8>) {
    let mut terms: Vec<Vec<u8>> = Vec::new();
    for (m, c) in p.terms() {
        let mut t = Vec::with_capacity(16);
        t.extend(c.to_le_bytes());
        let mut atoms: Vec<Vec<u8>> = m
            .iter()
            .map(|&a| {
                let mut b = Vec::new();
                ser_expr(arena, a, &mut b);
                b
            })
            .collect();
        atoms.sort_unstable();
        t.extend((atoms.len() as u32).to_le_bytes());
        for a in atoms {
            t.extend((a.len() as u32).to_le_bytes());
            t.extend(a);
        }
        terms.push(t);
    }
    terms.sort_unstable();
    out.extend((terms.len() as u32).to_le_bytes());
    for t in terms {
        out.extend((t.len() as u32).to_le_bytes());
        out.extend(t);
    }
}

/// The 128-bit key of one post-normalization query: tag + canonical query
/// polynomial + the hypothesis vectors the verdict can read.
pub(crate) fn query_key(arena: &ExprArena, tag: QueryTag, d: &Poly, facts: &Facts) -> u128 {
    let mut buf = Vec::with_capacity(256);
    buf.push(tag as u8);
    ser_poly(arena, d, &mut buf);
    let (_, eqs, neqs, ges) = facts.hyp_views();
    for group in [eqs, neqs, ges] {
        buf.extend((group.len() as u32).to_le_bytes());
        for p in group {
            ser_poly(arena, p, &mut buf);
        }
    }
    let mut h = H128::new();
    h.write(&buf);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Stateful save/load/corrupt-file tests live in the integration binary
    // `tests/pcache.rs` — they flip the process-global cache, which must
    // not interleave with the lib binary's entailment tests. Only the pure
    // key computation is tested here.

    #[test]
    fn keys_are_arena_independent() {
        let mut a1 = ExprArena::new();
        let mut f1 = Facts::new();
        let x = a1.var("x");
        let y = a1.var("y");
        let d1 = {
            let s = a1.sub(x, y);
            crate::norm::norm_int(&mut a1, &f1, s)
        };
        f1.assume_ge0(&mut a1, x);

        // Same query built in a different interning order in a fresh arena.
        let mut a2 = ExprArena::new();
        let mut f2 = Facts::new();
        let _pad = a2.var("padding"); // shift every id
        let y2 = a2.var("y");
        let x2 = a2.var("x");
        let d2 = {
            let s = a2.sub(x2, y2);
            crate::norm::norm_int(&mut a2, &f2, s)
        };
        f2.assume_ge0(&mut a2, x2);

        let k1 = query_key(&a1, QueryTag::Ge0, &d1, &f1);
        let k2 = query_key(&a2, QueryTag::Ge0, &d2, &f2);
        assert_eq!(k1, k2, "ids must not leak into keys");

        // Different tag, different facts, different query: all distinct.
        assert_ne!(k1, query_key(&a1, QueryTag::Eq, &d1, &f1));
        assert_ne!(k1, query_key(&a1, QueryTag::Ge0, &d1, &Facts::new()));
    }
}
