//! Static expressions, kinds, substitutions, and decision procedures for
//! TAL_FT — the Hoare-logic half of the type system of
//! *Fault-tolerant Typed Assembly Language* (Perry et al., PLDI 2007),
//! §3.1 and Appendix A.2.
//!
//! The paper's type system pairs a TAL-style type theory with a classical
//! Hoare logic over a first-order language of **static expressions**:
//! integers with `add`/`sub`/`mul` (we conservatively extend to the full ALU
//! op set), and McCarthy memories with `emp`/`upd`/`sel`. This crate provides:
//!
//! * [`ExprArena`] — hash-consed expression construction ([`expr`]);
//! * [`Subst`] — substitutions `S` and the judgment `Δ ⊢ S : Δ'` ([`subst`]);
//! * [`eval()`] — the denotation `[[E]]` of Appendix A.2 ([`eval`](mod@eval));
//! * [`Poly`]/[`MemNf`] — sound normal forms ([`norm`]);
//! * [`Facts`] — hypothesis sets and the entailment judgments
//!   `Δ ⊢ E1 = E2`, `Δ ⊢ E1 ≠ E2`, and linear `≥` facts ([`entail`]).
//!
//! # Example
//!
//! ```
//! use talft_logic::{ExprArena, Facts};
//!
//! let mut arena = ExprArena::new();
//! let mut facts = Facts::new();
//! let x = arena.var("x");
//! let y = arena.var("y");
//! // assume x = y, then 2*x = x + y follows
//! facts.assume_eq(&mut arena, x, y);
//! let two = arena.int(2);
//! let lhs = arena.mul(two, x);
//! let rhs = arena.add(x, y);
//! assert!(facts.prove_eq(&mut arena, lhs, rhs));
//! ```

#![warn(missing_docs)]

pub mod cachefile;
pub mod entail;
pub mod eval;
pub mod expr;
pub mod interval;
pub mod norm;
pub mod subst;
pub mod witness;

pub use cachefile::{clear_solver_cache, load_solver_cache, save_solver_cache, solver_cache_stats};
pub use entail::{entail_cache_enabled, set_entail_cache, Facts};
pub use eval::{eval, eval_int, eval_mem, Env, EvalError, MemVal, Value};
pub use expr::{BinOp, ExprArena, ExprId, ExprNode, Kind, KindCtx, KindError, VarId};
pub use interval::{entail_interval_enabled, set_entail_interval};
pub use norm::{norm_int, norm_mem, reify_memnf, reify_poly, MemNf, Poly};
pub use subst::{Subst, SubstError};
pub use witness::EntailWitness;
