//! Fact sets and entailment: the judgments `Δ ⊢ E1 = E2`, `Δ ⊢ E1 ≠ E2`
//! (paper Appendix A.2) plus the linear-inequality facts our checker carries
//! in `Δ` (DESIGN.md, "Facts in Δ").
//!
//! A [`Facts`] value represents the hypotheses accumulated along a control
//! path: solved equalities (applied as a substitution during normalization),
//! unsolved equalities, disequalities, and linear inequalities (`p ≥ 0`).
//! Branch facts over `slt` results are *interpreted*: assuming
//! `slt(a,b) ≠ 0` records `slt(a,b) = 1` **and** `b - a ≥ 1`, and assuming
//! `slt(a,b) = 0` records `a - b ≥ 0`.
//!
//! Inequality entailment uses Fourier–Motzkin elimination over the monomials
//! of the involved polynomials (nonlinear monomials are treated as opaque
//! variables). FM refutation over ℚ is sound for ℤ. **Caveat**: inequality
//! facts are interpreted over ideal integers while the machine wraps at 64
//! bits; programs whose arithmetic stays within range (all of ours) are
//! unaffected, and the fault-injection campaigns dynamically validate every
//! checked program.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use talft_obs::LazyCounter;

use crate::cachefile::{self, QueryTag};
use crate::expr::{BinOp, ExprArena, ExprId, ExprNode};
use crate::interval::{self, IntervalEnv};
use crate::norm::{norm_int, Monomial, Poly};

/// Solver-query metrics (DESIGN.md §Observability). Zero-cost while
/// `talft_obs` is disabled; `perfreport` and `talftc --profile` read them.
static Q_EQ: LazyCounter = LazyCounter::new("logic.query.eq");
static Q_NEQ: LazyCounter = LazyCounter::new("logic.query.neq");
static Q_GE: LazyCounter = LazyCounter::new("logic.query.ge");
static FM_RUNS: LazyCounter = LazyCounter::new("logic.fm.runs");
static FM_GIVEUPS: LazyCounter = LazyCounter::new("logic.fm.giveups");
static Q_REPEATS: LazyCounter = LazyCounter::new("logic.query.repeat_candidates");
static CACHE_HIT: LazyCounter = LazyCounter::new("logic.cache.hit");
static CACHE_MISS: LazyCounter = LazyCounter::new("logic.cache.miss");
static CACHE_EVICT: LazyCounter = LazyCounter::new("logic.cache.evict");

/// Count equality queries whose `(e1, e2)` id pair was seen before — an
/// estimate of how much a memoizing query cache would save. A fixed-size
/// direct-mapped table of packed id pairs: collisions overwrite, so the
/// count is a lower bound, which is the honest direction for a
/// "candidates" metric.
///
/// Overhead policy: both call sites gate on `talft_obs::enabled()` already;
/// the guard here makes the invariant local, so a future call site cannot
/// reintroduce an unconditional 4096-slot atomic swap on the disabled path.
fn note_query_pair(e1: ExprId, e2: ExprId) {
    if !talft_obs::enabled() {
        return;
    }
    const SLOTS: usize = 4096;
    static SEEN: [AtomicU64; SLOTS] = [const { AtomicU64::new(0) }; SLOTS];
    // Pack both ids, +1 so the empty slot value 0 is never a valid key.
    let key = (u64::from(e1.0) + 1) << 32 | (u64::from(e2.0) + 1);
    let slot = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 52) as usize % SLOTS;
    if SEEN[slot].swap(key, Ordering::Relaxed) == key {
        Q_REPEATS.inc();
    }
}

// ---- memoizing entailment query cache -------------------------------------

/// Runtime switch for the entailment cache: 0 = unset (consult the
/// `TALFT_ENTAIL_CACHE` environment variable on first query), 1 = on,
/// 2 = off.
static CACHE_MODE: AtomicU8 = AtomicU8::new(0);

/// Whether equality-query memoization is active. Defaults to **on**; the
/// `TALFT_ENTAIL_CACHE` environment variable (`0`/`off`/`false` disables)
/// sets the initial state, and [`set_entail_cache`] overrides it at runtime.
#[must_use]
pub fn entail_cache_enabled() -> bool {
    match CACHE_MODE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = std::env::var("TALFT_ENTAIL_CACHE")
                .map_or(true, |v| !matches!(v.trim(), "0" | "off" | "false"));
            CACHE_MODE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Force the entailment cache on or off process-wide (overrides
/// `TALFT_ENTAIL_CACHE`). The cache is semantically transparent — this knob
/// exists for differential testing and perf measurement, not correctness.
pub fn set_entail_cache(on: bool) {
    CACHE_MODE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Monotone source of [`Facts`] generation tags. Starts at 1 so generation 0
/// uniquely means "never mutated", i.e. the empty hypothesis set — every
/// empty `Facts` may soundly share cached verdicts.
static FACTS_GEN: AtomicU64 = AtomicU64::new(1);

/// Number of direct-mapped cache slots (16 bytes each; allocated lazily on
/// the first store, so unused arenas pay nothing).
const CACHE_SLOTS: usize = 8192;

/// Sentinel second key for unary queries (`prove_eq_zero`). Never a real id:
/// interning that many expressions panics first.
const CACHE_ZERO: u32 = u32::MAX;

#[derive(Clone, Copy)]
struct CacheSlot {
    e1: u32,
    e2: u32,
    /// Facts generation the verdict was computed under; `u64::MAX` = empty.
    generation: u64,
    verdict: bool,
}

const EMPTY_SLOT: CacheSlot = CacheSlot {
    e1: 0,
    e2: 0,
    generation: u64::MAX,
    verdict: false,
};

/// Fixed-size direct-mapped memo table for equality verdicts, stored per
/// [`ExprArena`] (queries take `&mut ExprArena`, so access is exclusive and
/// needs no atomics — and an id-keyed cache must not outlive its arena).
///
/// Key: the packed `(e1, e2)` id pair plus the querying [`Facts`] value's
/// generation tag. Generations are globally unique per mutation, so two
/// `Facts` with the same tag hold identical hypotheses (clones share tags
/// soundly; re-deriving the same facts afresh yields a new tag and merely
/// misses). Verdicts are pure functions of the hypotheses and the immutable
/// hash-consed expression DAG, so replaying one is always sound. Collisions
/// overwrite (direct-mapped); a full-key match is required to hit.
#[derive(Debug, Default)]
pub(crate) struct EntailCache {
    slots: Vec<CacheSlot>,
    hits: u64,
    misses: u64,
    /// Live entries overwritten by a colliding key — the direct map's
    /// conflict rate, observable via `ExprArena::entail_cache_evictions`.
    evictions: u64,
}

impl std::fmt::Debug for CacheSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheSlot").finish_non_exhaustive()
    }
}

impl EntailCache {
    fn index(e1: u32, e2: u32, generation: u64) -> usize {
        let key = (u64::from(e1) + 1) << 32 | u64::from(e2).wrapping_add(1);
        let h = (key ^ generation.rotate_left(32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 51) as usize % CACHE_SLOTS
    }

    fn lookup(&mut self, e1: u32, e2: u32, generation: u64) -> Option<bool> {
        let hit = self
            .slots
            .get(Self::index(e1, e2, generation))
            .filter(|s| s.e1 == e1 && s.e2 == e2 && s.generation == generation)
            .map(|s| s.verdict);
        if hit.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    fn store(&mut self, e1: u32, e2: u32, generation: u64, verdict: bool) {
        if self.slots.is_empty() {
            self.slots = vec![EMPTY_SLOT; CACHE_SLOTS];
        }
        let slot = &mut self.slots[Self::index(e1, e2, generation)];
        if slot.generation != u64::MAX
            && (slot.e1 != e1 || slot.e2 != e2 || slot.generation != generation)
        {
            self.evictions += 1;
            CACHE_EVICT.inc();
        }
        *slot = CacheSlot {
            e1,
            e2,
            generation,
            verdict,
        };
    }

    pub(crate) fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    pub(crate) fn evictions(&self) -> u64 {
        self.evictions
    }
}

/// Caps keeping Fourier–Motzkin elimination cheap; exceeding them makes the
/// prover give up (sound: "unknown" is treated as "not proved").
const FM_MAX_CONSTRAINTS: usize = 512;
const FM_MAX_VARS: usize = 24;

/// Borrowed views of the hypothesis vectors in `(solved, eqs, neqs, ges)`
/// order — see [`Facts::hyp_views`].
pub(crate) type HypViews<'a> = (&'a [(ExprId, Poly)], &'a [Poly], &'a [Poly], &'a [Poly]);

/// A set of path hypotheses: equalities, disequalities, and `≥ 0` facts.
#[derive(Debug, Clone, Default)]
pub struct Facts {
    /// `atom = poly`, applied as a substitution by the normalizer.
    solved: Vec<(ExprId, Poly)>,
    /// `poly = 0`, not solvable for a single atom.
    eqs: Vec<Poly>,
    /// `poly ≠ 0`.
    neqs: Vec<Poly>,
    /// `poly ≥ 0`.
    ges: Vec<Poly>,
    /// Cache-invalidation tag: 0 for the never-mutated (empty) set, else a
    /// globally unique value minted by [`Facts::touch`] on every mutation.
    /// Clones share the tag of their source — sound, since they hold the
    /// same hypotheses until their own next mutation re-tags them.
    generation: u64,
}

/// Hypothesis-set equality compares the stored facts only; the cache
/// generation tag is bookkeeping, not content (two independently built but
/// identical sets are equal yet carry different tags).
impl PartialEq for Facts {
    fn eq(&self, other: &Self) -> bool {
        self.solved == other.solved
            && self.eqs == other.eqs
            && self.neqs == other.neqs
            && self.ges == other.ges
    }
}

impl Facts {
    /// An empty hypothesis set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolve an atom through the solved-equality substitution.
    /// Called by the normalizer for every atom it mints.
    #[must_use]
    pub fn resolve_atom(&self, atom: ExprId) -> Poly {
        for (a, p) in &self.solved {
            if *a == atom {
                return p.clone();
            }
        }
        Poly::atom(atom)
    }

    /// Number of stored hypotheses (diagnostics).
    #[must_use]
    pub fn len(&self) -> usize {
        self.solved.len() + self.eqs.len() + self.neqs.len() + self.ges.len()
    }

    /// Whether no hypotheses are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cache-invalidation tag (see the `generation` field). Exposed for
    /// tests and diagnostics.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Read-only views of the hypothesis vectors, in `(solved, eqs, neqs,
    /// ges)` order — the persistent-cache fingerprint and the witness
    /// builders read them.
    pub(crate) fn hyp_views(&self) -> HypViews<'_> {
        (&self.solved, &self.eqs, &self.neqs, &self.ges)
    }

    /// Re-tag after a mutation so stale cached verdicts cannot be replayed.
    /// Every actual change to the hypothesis vectors must call this.
    fn touch(&mut self) {
        self.generation = FACTS_GEN.fetch_add(1, Ordering::Relaxed);
    }

    // ---- assuming ---------------------------------------------------------

    /// Assume `e1 = e2`.
    pub fn assume_eq(&mut self, arena: &mut ExprArena, e1: ExprId, e2: ExprId) {
        let p1 = norm_int(arena, self, e1);
        let p2 = norm_int(arena, self, e2);
        self.assume_poly_eq_zero(arena, p1.sub(&p2));
    }

    /// Assume `e = 0` (e.g. a taken `bz` branch).
    pub fn assume_eq_zero(&mut self, arena: &mut ExprArena, e: ExprId) {
        let p = norm_int(arena, self, e);
        if let Some((a, b)) = self.slt_atom_operands(arena, &p) {
            // slt(a,b) = 0  ⇒  a ≥ b
            let ge = Poly::from_parts(a).sub(&Poly::from_parts(b));
            self.ges.push(ge);
            self.touch();
        }
        self.assume_poly_eq_zero(arena, p);
    }

    /// Assume `e ≠ 0` (e.g. a fall-through `bz` branch).
    pub fn assume_neq_zero(&mut self, arena: &mut ExprArena, e: ExprId) {
        let p = norm_int(arena, self, e);
        if let Some((a, b)) = self.slt_atom_operands(arena, &p) {
            // slt(a,b) ≠ 0  ⇒  slt(a,b) = 1  and  b - a ≥ 1
            let one = Poly::constant(1);
            let gt = Poly::from_parts(b).sub(&Poly::from_parts(a)).sub(&one);
            self.ges.push(gt);
            self.touch();
            self.assume_poly_eq_zero(arena, p.sub(&one));
            return;
        }
        if !p.is_zero() {
            self.neqs.push(p);
            self.touch();
        }
    }

    /// Assume `e ≥ 0`.
    pub fn assume_ge0(&mut self, arena: &mut ExprArena, e: ExprId) {
        let p = norm_int(arena, self, e);
        self.assume_poly_ge0(p);
    }

    /// Assume a normalized polynomial is ≥ 0.
    pub fn assume_poly_ge0(&mut self, p: Poly) {
        if p.as_constant().is_none_or(|c| c < 0) {
            self.ges.push(p);
            self.touch();
        }
    }

    /// Assume `lo ≤ e` and `e < hi` (used for region bounds).
    pub fn assume_in_range(&mut self, arena: &mut ExprArena, e: ExprId, lo: i64, hi: i64) {
        let lo_e = arena.int(lo);
        let ge = arena.sub(e, lo_e);
        self.assume_ge0(arena, ge);
        let hi_e = arena.int(hi.wrapping_sub(1));
        let le = arena.sub(hi_e, e);
        self.assume_ge0(arena, le);
    }

    /// Assume a normalized polynomial equals zero, solving for an atom when
    /// possible so later normalization benefits.
    pub fn assume_poly_eq_zero(&mut self, _arena: &mut ExprArena, p: Poly) {
        if p.is_zero() {
            return;
        }
        if let Some((atom, rhs)) = solve_for_atom(&p) {
            // Substitute into every stored hypothesis so the solved set stays
            // idempotent.
            for (_, q) in &mut self.solved {
                *q = q.subst_atom(atom, &rhs);
            }
            for q in self
                .eqs
                .iter_mut()
                .chain(self.neqs.iter_mut())
                .chain(self.ges.iter_mut())
            {
                *q = q.subst_atom(atom, &rhs);
            }
            self.solved.push((atom, rhs));
        } else {
            self.eqs.push(p);
        }
        self.touch();
    }

    // ---- proving ----------------------------------------------------------

    /// Prove `e1 = e2` (the judgment `Δ ⊢ E1 = E2`, sound/incomplete).
    ///
    /// Memoized per arena (see `EntailCache`): the verdict is a pure
    /// function of the hypothesis set (keyed by its generation tag) and the
    /// two ids' immutable canonical structure, so a repeat query skips
    /// normalization and Fourier–Motzkin entirely. The query is symmetric;
    /// the key is id-ordered so both orientations share one slot.
    pub fn prove_eq(&self, arena: &mut ExprArena, e1: ExprId, e2: ExprId) -> bool {
        if talft_obs::enabled() {
            Q_EQ.inc();
            note_query_pair(e1, e2);
        }
        if e1 == e2 {
            return true;
        }
        let (a, b) = if e1.0 <= e2.0 { (e1, e2) } else { (e2, e1) };
        let caching = entail_cache_enabled();
        if caching {
            if let Some(v) = arena.entail_cache.lookup(a.0, b.0, self.generation) {
                CACHE_HIT.inc();
                return v;
            }
            CACHE_MISS.inc();
        }
        let verdict = match self.interval_eq(arena, e1, e2) {
            Some(v) => v,
            None => {
                let p1 = norm_int(arena, self, e1);
                let p2 = norm_int(arena, self, e2);
                let d = p1.sub(&p2);
                self.pcached(arena, QueryTag::Eq, &d, |s| s.poly_provably_zero(&d))
            }
        };
        if caching {
            arena.entail_cache.store(a.0, b.0, self.generation, verdict);
        }
        verdict
    }

    /// Route a post-normalization query through the persistent cross-run
    /// cache (tier 3, DESIGN.md §13) when one is loaded. Constant residues
    /// are never cached — they are cheaper to re-decide than to hash.
    fn pcached(
        &self,
        arena: &ExprArena,
        tag: QueryTag,
        d: &Poly,
        run: impl FnOnce(&Self) -> bool,
    ) -> bool {
        if d.as_constant().is_some() || !cachefile::pcache_enabled() {
            return run(self);
        }
        let key = cachefile::query_key(arena, tag, d, self);
        if let Some(v) = cachefile::pcache_lookup(key) {
            return v;
        }
        let v = run(self);
        cachefile::pcache_record(key, v);
        v
    }

    /// Prove a normalized polynomial equals zero under the hypotheses.
    #[must_use]
    pub fn poly_provably_zero(&self, d: &Poly) -> bool {
        if d.is_zero() {
            return true;
        }
        if self.eqs.iter().any(|q| *q == *d || q.neg() == *d) {
            return true;
        }
        // d ≥ 0 and -d ≥ 0
        self.fm_proves_ge0(None, d) && self.fm_proves_ge0(None, &d.neg())
    }

    /// Prove `e1 ≠ e2`.
    pub fn prove_neq(&self, arena: &mut ExprArena, e1: ExprId, e2: ExprId) -> bool {
        Q_NEQ.inc();
        if let Some(v) = self.interval_neq(arena, e1, Some(e2)) {
            return v;
        }
        let p1 = norm_int(arena, self, e1);
        let p2 = norm_int(arena, self, e2);
        let d = p1.sub(&p2);
        let ar: &ExprArena = arena;
        self.pcached(ar, QueryTag::Neq, &d, |s| s.poly_nonzero_with(ar, &d))
    }

    /// Prove `e ≠ 0`.
    pub fn prove_neq_zero(&self, arena: &mut ExprArena, e: ExprId) -> bool {
        Q_NEQ.inc();
        if let Some(v) = self.interval_neq(arena, e, None) {
            return v;
        }
        let p = norm_int(arena, self, e);
        let ar: &ExprArena = arena;
        self.pcached(ar, QueryTag::Neq, &p, |s| s.poly_nonzero_with(ar, &p))
    }

    /// Prove `e = 0`. Memoized like [`Facts::prove_eq`], under the sentinel
    /// pair `(e, CACHE_ZERO)`.
    pub fn prove_eq_zero(&self, arena: &mut ExprArena, e: ExprId) -> bool {
        if talft_obs::enabled() {
            Q_EQ.inc();
            note_query_pair(e, ExprId(u32::MAX));
        }
        let caching = entail_cache_enabled();
        if caching {
            if let Some(v) = arena.entail_cache.lookup(e.0, CACHE_ZERO, self.generation) {
                CACHE_HIT.inc();
                return v;
            }
            CACHE_MISS.inc();
        }
        let zero = arena.int(0);
        let verdict = match self.interval_eq(arena, e, zero) {
            Some(v) => v,
            None => {
                let p = norm_int(arena, self, e);
                self.pcached(arena, QueryTag::Eq, &p, |s| s.poly_provably_zero(&p))
            }
        };
        if caching {
            arena
                .entail_cache
                .store(e.0, CACHE_ZERO, self.generation, verdict);
        }
        verdict
    }

    /// Prove `e ≥ 0`.
    pub fn prove_ge0(&self, arena: &mut ExprArena, e: ExprId) -> bool {
        Q_GE.inc();
        if let Some(v) = self.interval_ge0(arena, e) {
            return v;
        }
        let p = norm_int(arena, self, e);
        if let Some(c) = p.as_constant() {
            return c >= 0;
        }
        let ar: &ExprArena = arena;
        self.pcached(ar, QueryTag::Ge0, &p, |s| s.fm_proves_ge0(Some(ar), &p))
    }

    /// Prove `lo ≤ e < hi`.
    pub fn prove_in_range(&self, arena: &mut ExprArena, e: ExprId, lo: i64, hi: i64) -> bool {
        let lo_e = arena.int(lo);
        let ge = arena.sub(e, lo_e);
        if !self.prove_ge0(arena, ge) {
            return false;
        }
        let hi_e = arena.int(hi.wrapping_sub(1));
        let le = arena.sub(hi_e, e);
        self.prove_ge0(arena, le)
    }

    /// Prove a normalized polynomial is non-zero under the hypotheses.
    /// This drives the array-aliasing decisions in the normalizer.
    #[must_use]
    pub fn poly_provably_nonzero(&self, d: &Poly) -> bool {
        self.poly_nonzero_inner(None, d)
    }

    /// Like [`Facts::poly_provably_nonzero`] but with arena access, enabling
    /// the implicit atom bounds (`0 ≤ slt(·,·) ≤ 1`, `0 ≤ x & m ≤ m`).
    #[must_use]
    pub fn poly_nonzero_with(&self, arena: &ExprArena, d: &Poly) -> bool {
        self.poly_nonzero_inner(Some(arena), d)
    }

    fn poly_nonzero_inner(&self, arena: Option<&ExprArena>, d: &Poly) -> bool {
        if let Some(c) = d.as_constant() {
            return c != 0;
        }
        if self.neqs.iter().any(|q| *q == *d || q.neg() == *d) {
            return true;
        }
        // d ≥ 1  or  d ≤ -1
        let one = Poly::constant(1);
        self.fm_proves_ge0(arena, &d.sub(&one)) || self.fm_proves_ge0(arena, &d.neg().sub(&one))
    }

    // ---- interval pre-solver (tier 1, DESIGN.md §13) ----------------------

    /// Build the per-atom interval environment for the tree walk: constant
    /// solved equalities become rigid points, non-constant ones force ⊤,
    /// and unit-coefficient single-atom `≥ 0` facts become bounds. Only
    /// unit coefficients are absorbed — rounding `c·a + k ≥ 0` for |c| > 1
    /// is ℤ-sound but not ℚ-FM-derivable and would break transparency.
    pub(crate) fn interval_env(&self) -> IntervalEnv {
        let mut env = IntervalEnv::default();
        for (atom, p) in &self.solved {
            match p.as_constant() {
                Some(c) => env.set_rigid(*atom, c),
                None => env.set_opaque(*atom),
            }
        }
        for g in &self.ges {
            let mut atom: Option<(ExprId, i64)> = None;
            let mut k = 0i64;
            let mut usable = true;
            for (m, c) in g.terms() {
                if m.is_empty() {
                    k = c;
                } else if m.len() == 1 && atom.is_none() && (c == 1 || c == -1) {
                    atom = Some((m[0], c));
                } else {
                    usable = false;
                    break;
                }
            }
            let Some((a, c)) = atom else { continue };
            if !usable {
                continue;
            }
            if c == 1 {
                // a + k ≥ 0  ⟹  a ≥ -k
                if let Some(lo) = k.checked_neg() {
                    env.tighten(a, Some(lo), None);
                }
            } else {
                // -a + k ≥ 0  ⟹  a ≤ k
                env.tighten(a, None, Some(k));
            }
        }
        env
    }

    /// Tier-1 answer for `e ≥ 0`: decisive for rigid constants (mirroring
    /// the fallback's own constant fold), otherwise TRUE-only from a
    /// non-negative lower bound. `None` falls through to normalization+FM.
    fn interval_ge0(&self, arena: &ExprArena, e: ExprId) -> Option<bool> {
        if !interval::entail_interval_enabled() {
            return None;
        }
        let env = self.interval_env();
        let mut narrowed = false;
        let verdict = (|| {
            let iv = interval::eval_tree(arena, &env, true, e)?;
            if iv.rigid {
                return Some(iv.as_point().expect("rigid interval is a point") >= 0);
            }
            if iv.lo.is_some_and(|l| l >= 0) {
                return Some(true);
            }
            narrowed = iv.is_narrowed();
            None
        })();
        interval::note_consult(verdict.is_some(), narrowed);
        verdict
    }

    /// Tier-1 answer for `e1 = e2`. TRUE when both sides evaluate to the
    /// same point (the FM path proves it from the same unit facts); FALSE
    /// only for distinct rigid constants under an empty `ges`/`eqs` set,
    /// where the fallback's constant arithmetic is the whole procedure.
    /// Shape bounds are excluded: the equality path runs FM without arena
    /// access (see [`Facts::poly_provably_zero`]).
    fn interval_eq(&self, arena: &ExprArena, e1: ExprId, e2: ExprId) -> Option<bool> {
        if !interval::entail_interval_enabled() {
            return None;
        }
        let env = self.interval_env();
        let mut narrowed = false;
        let verdict = (|| {
            let a = interval::eval_tree(arena, &env, false, e1)?;
            let b = interval::eval_tree(arena, &env, false, e2)?;
            if let (Some(x), Some(y)) = (a.as_point(), b.as_point()) {
                if x == y {
                    return Some(true);
                }
                if a.rigid && b.rigid && self.ges.is_empty() && self.eqs.is_empty() {
                    return Some(false);
                }
            }
            narrowed = a.is_narrowed() || b.is_narrowed();
            None
        })();
        interval::note_consult(verdict.is_some(), narrowed);
        verdict
    }

    /// Tier-1 answer for `e1 ≠ e2` / `e ≠ 0` given both side intervals:
    /// TRUE on disjointness (an integer gap is ≥ 1, so FM proves
    /// `d - 1 ≥ 0` or `-d - 1 ≥ 0` from the same facts), FALSE only for
    /// equal rigid constants (the fallback's constant check).
    fn interval_neq(&self, arena: &ExprArena, e1: ExprId, e2: Option<ExprId>) -> Option<bool> {
        if !interval::entail_interval_enabled() {
            return None;
        }
        let env = self.interval_env();
        let mut narrowed = false;
        let verdict = (|| {
            let a = interval::eval_tree(arena, &env, true, e1)?;
            let b = match e2 {
                Some(e2) => interval::eval_tree(arena, &env, true, e2)?,
                None => crate::interval::Itv::rigid_point(0),
            };
            let disjoint = matches!((a.hi, b.lo), (Some(h), Some(l)) if h < l)
                || matches!((b.hi, a.lo), (Some(h), Some(l)) if h < l);
            if disjoint {
                return Some(true);
            }
            if a.rigid && b.rigid && a.as_point() == b.as_point() {
                return Some(false);
            }
            narrowed = a.is_narrowed() || b.is_narrowed();
            None
        })();
        interval::note_consult(verdict.is_some(), narrowed);
        verdict
    }

    // ---- internals --------------------------------------------------------

    /// If `p` is a bare `slt` atom, return its operands as polynomial parts.
    fn slt_atom_operands(&self, arena: &ExprArena, p: &Poly) -> Option<(PolyParts, PolyParts)> {
        let atom = p.as_single_atom()?;
        match arena.node(atom) {
            ExprNode::Bin(BinOp::Slt, a, b) => Some((
                PolyParts::from_expr(arena, self, a),
                PolyParts::from_expr(arena, self, b),
            )),
            _ => None,
        }
    }

    /// Fourier–Motzkin refutation: do the hypotheses entail `q ≥ 0`?
    ///
    /// With arena access, atoms of known shape contribute implicit bounds:
    /// `slt` results lie in `[0,1]` and `x & m` (constant `m ≥ 0`) lies in
    /// `[0,m]` — the masked-index discipline the compiler relies on for
    /// array-bounds obligations (DESIGN.md).
    fn fm_proves_ge0(&self, arena: Option<&ExprArena>, q: &Poly) -> bool {
        let mut cons: Vec<LinCon> = Vec::new();
        for g in &self.ges {
            cons.push(LinCon::from_poly(g));
        }
        for e in &self.eqs {
            cons.push(LinCon::from_poly(e));
            cons.push(LinCon::from_poly(&e.neg()));
        }
        // ¬(q ≥ 0) over ℤ:  -q - 1 ≥ 0
        let negq_idx = cons.len();
        let negq = q.neg().sub(&Poly::constant(1));
        cons.push(LinCon::from_poly(&negq));
        if let Some(arena) = arena {
            add_implicit_bounds(arena, &mut cons);
        }
        if cons.len() <= 1 && q.as_constant().is_none() {
            return false; // nothing to refute with
        }
        // Tier-2 box front (DESIGN.md §13): an exact rational box over the
        // single-monomial constraints often decides the refutation without
        // running elimination at all.
        if interval::entail_interval_enabled() {
            let (verdict, narrowed) = box_front(&cons, negq_idx, q);
            interval::note_consult(verdict.is_some(), narrowed);
            if let Some(v) = verdict {
                return v;
            }
        }
        fm_refute(cons)
    }
}

/// An exact rational `n/d` with `d > 0`, kept reduced; the box front's
/// bound arithmetic (overflow declines the query, never loosens it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Rat {
    n: i128,
    d: i128,
}

impl Rat {
    fn new(n: i128, d: i128) -> Rat {
        debug_assert!(d > 0);
        let g = gcd(n.unsigned_abs(), d.unsigned_abs()).max(1) as i128;
        Rat { n: n / g, d: d / g }
    }

    /// `self < other`; `None` on overflow.
    fn lt(&self, other: &Rat) -> Option<bool> {
        Some(self.n.checked_mul(other.d)? < other.n.checked_mul(self.d)?)
    }

    /// `self + c·other`; `None` on overflow.
    fn add_scaled(&self, c: i128, other: &Rat) -> Option<Rat> {
        let n = self
            .n
            .checked_mul(other.d)?
            .checked_add(c.checked_mul(other.n)?.checked_mul(self.d)?)?;
        Some(Rat::new(n, self.d.checked_mul(other.d)?))
    }
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Decide `fm_refute(cons)` from the rational box spanned by the
/// single-monomial hypothesis constraints, without running elimination.
/// Returns `(verdict, narrowed)`; `verdict = None` falls through to FM.
///
/// * **TRUE** when some constraint is already a constant contradiction
///   (mirroring `fm_refute`'s first check), or when `min(q)` over the box
///   exceeds `-1`: no ℚ point satisfies `-q - 1 ≥ 0`, and the box is built
///   from a subset of FM's constraints, so complete ℚ-elimination with the
///   superset also refutes.
/// * **FALSE** only when the box is *exact* — every hypothesis constraint
///   has at most one monomial — nonempty, and `min(q) ≤ -1` (or `-∞`):
///   the constraint set is then genuinely satisfiable over ℚ, and a sound
///   refuter can never answer true on a satisfiable set, caps or no caps.
/// * Declines when the distinct-monomial count exceeds `FM_MAX_VARS`
///   (where FM itself would give up), when the box is empty (FM reports
///   the ex-falso contradiction itself), or on any `i128` overflow.
fn box_front(cons: &[LinCon], negq_idx: usize, q: &Poly) -> (Option<bool>, bool) {
    if cons.iter().any(LinCon::is_contradiction) {
        return (Some(true), false);
    }
    let mut vars: Vec<&Monomial> = Vec::new();
    for c in cons {
        for m in c.coeffs.keys() {
            if !vars.contains(&m) {
                vars.push(m);
            }
        }
    }
    if vars.len() > FM_MAX_VARS {
        return (None, false); // mirror fm_refute's give-up exactly
    }
    let mut lowers: BTreeMap<&Monomial, Rat> = BTreeMap::new();
    let mut uppers: BTreeMap<&Monomial, Rat> = BTreeMap::new();
    let mut exact = true;
    for (i, c) in cons.iter().enumerate() {
        if i == negq_idx {
            continue;
        }
        if c.coeffs.len() > 1 {
            exact = false;
            continue;
        }
        let Some((m, &coeff)) = c.coeffs.iter().next() else {
            continue; // trivial constant constraint (contradictions handled above)
        };
        // coeff·m + k ≥ 0
        let (bound, target) = if coeff > 0 {
            (Rat::new(-c.k, coeff), &mut lowers) // m ≥ -k/coeff
        } else {
            (Rat::new(c.k, -coeff), &mut uppers) // m ≤ k/(-coeff)
        };
        match target.get(m).copied() {
            Some(prev) => {
                let tighter = if coeff > 0 {
                    prev.lt(&bound)
                } else {
                    bound.lt(&prev)
                };
                match tighter {
                    Some(true) => {
                        target.insert(m, bound);
                    }
                    Some(false) => {}
                    None => return (None, true), // overflow: decline
                }
            }
            None => {
                target.insert(m, bound);
            }
        }
    }
    let narrowed = !lowers.is_empty() || !uppers.is_empty();
    // An empty box means inconsistent hypotheses; decline and let FM derive
    // the ex-falso refutation itself (its caps stay authoritative).
    for (m, lo) in &lowers {
        if let Some(hi) = uppers.get(*m) {
            match hi.lt(lo) {
                Some(true) | None => return (None, narrowed),
                Some(false) => {}
            }
        }
    }
    // min(q) over the box: lower bounds serve positive coefficients, upper
    // bounds negative ones. A missing bound makes the minimum -∞ (distinct
    // from arithmetic overflow, which declines outright).
    let mut min = Rat::new(0, 1);
    let mut unbounded = false;
    for (m, c) in q.terms() {
        let bound = if m.is_empty() {
            Some(&Rat { n: 1, d: 1 })
        } else if c > 0 {
            lowers.get(m)
        } else {
            uppers.get(m)
        };
        match bound {
            Some(b) => match min.add_scaled(i128::from(c), b) {
                Some(s) => min = s,
                None => return (None, narrowed), // overflow: decline
            },
            None => {
                unbounded = true;
                break;
            }
        }
    }
    if unbounded {
        // Unbounded below: with an exact box that direction is genuinely
        // feasible, so the refutation fails; otherwise unknown.
        return (if exact { Some(false) } else { None }, narrowed);
    }
    // min(q) > -1 ⟺ n/d > -1 ⟺ n > -d (d > 0): the negated query is
    // infeasible over ℚ.
    if min.n > -min.d {
        (Some(true), narrowed)
    } else if exact {
        (Some(false), narrowed)
    } else {
        (None, narrowed)
    }
}

/// Add `0 ≤ atom ≤ hi` constraints for atoms whose shape bounds them.
fn add_implicit_bounds(arena: &ExprArena, cons: &mut Vec<LinCon>) {
    let mut atoms: Vec<Monomial> = Vec::new();
    for c in cons.iter() {
        for m in c.coeffs.keys() {
            if m.len() == 1 && !atoms.contains(m) {
                atoms.push(m.clone());
            }
        }
    }
    for m in atoms {
        let atom = m[0];
        let hi: Option<i128> = match arena.node(atom) {
            ExprNode::Bin(BinOp::Slt, _, _) => Some(1),
            ExprNode::Bin(BinOp::And, a, b) => {
                let mask = |e: ExprId| match arena.node(e) {
                    ExprNode::Int(n) if n >= 0 => Some(i128::from(n)),
                    _ => None,
                };
                match (mask(a), mask(b)) {
                    (Some(x), Some(y)) => Some(x.min(y)),
                    (Some(x), None) | (None, Some(x)) => Some(x),
                    (None, None) => None,
                }
            }
            _ => None,
        };
        if let Some(hi) = hi {
            // atom ≥ 0
            let mut lo_coeffs = BTreeMap::new();
            lo_coeffs.insert(m.clone(), 1i128);
            cons.push(LinCon {
                coeffs: lo_coeffs,
                k: 0,
            });
            // hi - atom ≥ 0
            let mut hi_coeffs = BTreeMap::new();
            hi_coeffs.insert(m.clone(), -1i128);
            cons.push(LinCon {
                coeffs: hi_coeffs,
                k: hi,
            });
        }
    }
}

/// A reified polynomial remembered alongside its parts (tiny helper for the
/// `slt` interpretation, which needs `b - a` of the *operand* expressions).
struct PolyParts(Poly);

impl PolyParts {
    fn from_expr(arena: &ExprArena, facts: &Facts, e: ExprId) -> Self {
        // Operands of a canonical slt atom are already reified canonical
        // expressions, so re-normalizing them needs no arena mutation; we
        // rebuild the poly by interpreting the canonical structure.
        PolyParts(repoly(arena, facts, e))
    }
}

impl Poly {
    fn from_parts(p: PolyParts) -> Poly {
        p.0
    }
}

/// Re-derive the polynomial of an already-canonical expression without
/// minting new nodes (used where only `&ExprArena` is available).
fn repoly(arena: &ExprArena, facts: &Facts, e: ExprId) -> Poly {
    match arena.node(e) {
        ExprNode::Int(n) => Poly::constant(n),
        ExprNode::Var(_) | ExprNode::Sel(..) => facts.resolve_atom(e),
        ExprNode::Bin(op, a, b) => {
            let pa = repoly(arena, facts, a);
            let pb = repoly(arena, facts, b);
            match op {
                BinOp::Add => pa.add(&pb),
                BinOp::Sub => pa.sub(&pb),
                BinOp::Mul => pa.mul(&pb),
                _ => facts.resolve_atom(e),
            }
        }
        ExprNode::Emp | ExprNode::Upd(..) => facts.resolve_atom(e),
    }
}

/// Try to solve `p = 0` for a single atom occurring linearly with coefficient
/// ±1 and not occurring elsewhere in `p`. Returns `(atom, rhs)` meaning
/// `atom = rhs`.
fn solve_for_atom(p: &Poly) -> Option<(ExprId, Poly)> {
    for (m, c) in p.terms() {
        if m.len() == 1 && (c == 1 || c == -1) {
            let atom = m[0];
            // rest = p - c·atom; ensure atom absent from rest.
            let mut single = Poly::atom(atom);
            if c == -1 {
                single = single.neg();
            }
            let rest = p.sub(&single);
            if rest.mentions_atom(atom) {
                continue;
            }
            let rhs = if c == 1 { rest.neg() } else { rest };
            return Some((atom, rhs));
        }
    }
    None
}

/// A linear constraint `Σ coeff·var + k ≥ 0` with monomials as variables.
#[derive(Debug, Clone)]
struct LinCon {
    coeffs: BTreeMap<Monomial, i128>,
    k: i128,
}

impl LinCon {
    fn from_poly(p: &Poly) -> Self {
        let mut coeffs = BTreeMap::new();
        let mut k: i128 = 0;
        for (m, c) in p.terms() {
            if m.is_empty() {
                k = i128::from(c);
            } else {
                coeffs.insert(m.clone(), i128::from(c));
            }
        }
        LinCon { coeffs, k }
    }

    fn is_contradiction(&self) -> bool {
        self.coeffs.is_empty() && self.k < 0
    }

    fn is_trivial(&self) -> bool {
        self.coeffs.is_empty() && self.k >= 0
    }
}

/// Fourier–Motzkin refutation: true iff the constraint set is unsatisfiable
/// over ℚ (hence over ℤ).
fn fm_refute(mut cons: Vec<LinCon>) -> bool {
    FM_RUNS.inc();
    cons.retain(|c| !c.is_trivial());
    if cons.iter().any(LinCon::is_contradiction) {
        return true;
    }
    let mut vars: Vec<Monomial> = Vec::new();
    for c in &cons {
        for m in c.coeffs.keys() {
            if !vars.contains(m) {
                vars.push(m.clone());
            }
        }
    }
    if vars.len() > FM_MAX_VARS {
        FM_GIVEUPS.inc();
        return false;
    }
    for _ in 0..vars.len() {
        if cons.is_empty() {
            return false;
        }
        // Pick the variable minimizing |pos|·|neg| fan-out.
        let var = {
            let mut best: Option<(usize, Monomial)> = None;
            let mut live: Vec<Monomial> = Vec::new();
            for c in &cons {
                for m in c.coeffs.keys() {
                    if !live.contains(m) {
                        live.push(m.clone());
                    }
                }
            }
            if live.is_empty() {
                return cons.iter().any(LinCon::is_contradiction);
            }
            for m in live {
                let pos = cons
                    .iter()
                    .filter(|c| c.coeffs.get(&m).copied().unwrap_or(0) > 0)
                    .count();
                let neg = cons
                    .iter()
                    .filter(|c| c.coeffs.get(&m).copied().unwrap_or(0) < 0)
                    .count();
                let cost = pos * neg;
                if best.as_ref().is_none_or(|(b, _)| cost < *b) {
                    best = Some((cost, m));
                }
            }
            best.expect("live vars nonempty").1
        };
        let (mut lowers, mut uppers, mut rest) = (Vec::new(), Vec::new(), Vec::new());
        for c in cons {
            match c.coeffs.get(&var).copied().unwrap_or(0) {
                a if a > 0 => lowers.push(c),
                a if a < 0 => uppers.push(c),
                _ => rest.push(c),
            }
        }
        for l in &lowers {
            let a = *l.coeffs.get(&var).expect("lower mentions var");
            for u in &uppers {
                let b = -*u.coeffs.get(&var).expect("upper mentions var");
                debug_assert!(a > 0 && b > 0);
                if let Some(c) = combine(l, u, b, a, &var) {
                    if c.is_contradiction() {
                        return true;
                    }
                    if !c.is_trivial() {
                        rest.push(c);
                    }
                }
                if rest.len() > FM_MAX_CONSTRAINTS {
                    FM_GIVEUPS.inc();
                    return false;
                }
            }
        }
        cons = rest;
        if cons.iter().any(LinCon::is_contradiction) {
            return true;
        }
    }
    cons.iter().any(LinCon::is_contradiction)
}

/// `wl·l + wu·u`, dropping the eliminated variable. `None` on overflow
/// (sound: we merely lose a derived constraint).
fn combine(l: &LinCon, u: &LinCon, wl: i128, wu: i128, var: &Monomial) -> Option<LinCon> {
    let mut coeffs: BTreeMap<Monomial, i128> = BTreeMap::new();
    for (m, _) in l.coeffs.iter().chain(u.coeffs.iter()) {
        if m == var {
            continue;
        }
        *coeffs.entry(m.clone()).or_insert(0) = 0; // placeholder; fill below
    }
    for m in coeffs.keys().cloned().collect::<Vec<_>>() {
        let cl = l.coeffs.get(&m).copied().unwrap_or(0);
        let cu = u.coeffs.get(&m).copied().unwrap_or(0);
        let v = wl.checked_mul(cl)?.checked_add(wu.checked_mul(cu)?)?;
        if v == 0 {
            coeffs.remove(&m);
        } else {
            coeffs.insert(m, v);
        }
    }
    let k = wl.checked_mul(l.k)?.checked_add(wu.checked_mul(u.k)?)?;
    Some(LinCon { coeffs, k })
}

/// Serialize tests that toggle the process-global solver knobs (memo cache
/// and interval layer), restoring both modes on drop. `None` leaves a knob
/// at its ambient setting while still holding the lock.
#[cfg(test)]
pub(crate) fn solver_knob_guard(cache: Option<bool>, iv: Option<bool>) -> impl Drop {
    use std::sync::{Mutex, MutexGuard, OnceLock};
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    struct Guard {
        prev_cache: u8,
        prev_interval: u8,
        _lock: MutexGuard<'static, ()>,
    }
    impl Drop for Guard {
        fn drop(&mut self) {
            CACHE_MODE.store(self.prev_cache, Ordering::Relaxed);
            interval::restore_mode(self.prev_interval);
        }
    }
    let lock = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let guard = Guard {
        prev_cache: CACHE_MODE.load(Ordering::Relaxed),
        prev_interval: interval::mode_raw(),
        _lock: lock,
    };
    if let Some(on) = cache {
        set_entail_cache(on);
    }
    if let Some(on) = iv {
        interval::set_entail_interval(on);
    }
    guard
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ExprArena, Facts) {
        (ExprArena::new(), Facts::new())
    }

    #[test]
    fn reflexivity_and_ring_equalities() {
        let (mut a, f) = setup();
        let x = a.var("x");
        let y = a.var("y");
        let l = a.add(x, y);
        let r = a.add(y, x);
        assert!(f.prove_eq(&mut a, l, r));
        let two = a.int(2);
        let xx = a.mul(two, x);
        let x_plus_x = a.add(x, x);
        assert!(f.prove_eq(&mut a, xx, x_plus_x));
        assert!(!f.prove_eq(&mut a, x, y));
    }

    #[test]
    fn constant_disequality() {
        let (mut a, f) = setup();
        let x = a.var("x");
        let one = a.int(1);
        let x1 = a.add(x, one);
        assert!(f.prove_neq(&mut a, x, x1));
        let y = a.var("y");
        assert!(!f.prove_neq(&mut a, x, y));
    }

    #[test]
    fn solved_equalities_rewrite() {
        let (mut a, mut f) = setup();
        let x = a.var("x");
        let y = a.var("y");
        f.assume_eq(&mut a, x, y); // x = y
        let two = a.int(2);
        let l = a.mul(two, x);
        let r = a.add(y, y);
        assert!(f.prove_eq(&mut a, l, r));
    }

    #[test]
    fn eq_zero_from_branch() {
        let (mut a, mut f) = setup();
        let x = a.var("x");
        f.assume_eq_zero(&mut a, x);
        let zero = a.int(0);
        assert!(f.prove_eq(&mut a, x, zero));
        let y = a.var("y");
        let sum = a.add(x, y);
        assert!(f.prove_eq(&mut a, sum, y));
    }

    #[test]
    fn neq_zero_fact_is_usable() {
        let (mut a, mut f) = setup();
        let x = a.var("x");
        assert!(!f.prove_neq_zero(&mut a, x));
        f.assume_neq_zero(&mut a, x);
        assert!(f.prove_neq_zero(&mut a, x));
    }

    #[test]
    fn slt_interpretation_gives_strict_bound() {
        let (mut a, mut f) = setup();
        let i = a.var("i");
        let n = a.var("n");
        let cond = a.bin(BinOp::Slt, i, n);
        f.assume_neq_zero(&mut a, cond); // i < n
                                         // ⊢ n - i ≥ 1, hence n - i ≠ 0
        assert!(f.prove_neq(&mut a, i, n));
        let diff = a.sub(n, i);
        let one = a.int(1);
        let dm1 = a.sub(diff, one);
        assert!(f.prove_ge0(&mut a, dm1));
        // and slt(i,n) itself is now known to be 1
        assert!(f.prove_eq(&mut a, cond, one));
    }

    #[test]
    fn slt_zero_interpretation() {
        let (mut a, mut f) = setup();
        let i = a.var("i");
        let n = a.var("n");
        let cond = a.bin(BinOp::Slt, i, n);
        f.assume_eq_zero(&mut a, cond); // ¬(i < n) ⇒ i ≥ n
        let diff = a.sub(i, n);
        assert!(f.prove_ge0(&mut a, diff));
    }

    #[test]
    fn fm_transitivity() {
        let (mut a, mut f) = setup();
        let x = a.var("x");
        let y = a.var("y");
        let z = a.var("z");
        let xy = a.sub(y, x);
        let yz = a.sub(z, y);
        f.assume_ge0(&mut a, xy); // x ≤ y
        f.assume_ge0(&mut a, yz); // y ≤ z
        let xz = a.sub(z, x);
        assert!(f.prove_ge0(&mut a, xz)); // x ≤ z
        let zx = a.sub(x, z);
        assert!(!f.prove_ge0(&mut a, zx));
    }

    #[test]
    fn range_facts_support_bounds_proofs() {
        let (mut a, mut f) = setup();
        let i = a.var("i");
        f.assume_in_range(&mut a, i, 0, 100);
        assert!(f.prove_in_range(&mut a, i, 0, 100));
        assert!(f.prove_in_range(&mut a, i, -5, 200));
        assert!(!f.prove_in_range(&mut a, i, 1, 100));
        // base + i stays within the shifted region
        let base = a.int(1000);
        let addr = a.add(base, i);
        assert!(f.prove_in_range(&mut a, addr, 1000, 1100));
        assert!(!f.prove_in_range(&mut a, addr, 1000, 1099));
    }

    #[test]
    fn nonzero_via_inequalities() {
        let (mut a, mut f) = setup();
        let x = a.var("x");
        let one = a.int(1);
        let xm1 = a.sub(x, one);
        f.assume_ge0(&mut a, xm1); // x ≥ 1
        assert!(f.prove_neq_zero(&mut a, x));
    }

    #[test]
    fn facts_sharpen_array_aliasing() {
        use crate::norm::norm_int;
        let (mut a, mut f) = setup();
        let m = a.var("m");
        let i = a.var("i");
        let j = a.var("j");
        let v = a.var("v");
        let u = a.upd(m, i, v);
        let s = a.sel(u, j);
        // Without facts: residual.
        let p_before = norm_int(&mut a, &f, s);
        assert!(p_before.as_single_atom().is_some());
        // With i = j: hit.
        f.assume_eq(&mut a, i, j);
        let p_eq = norm_int(&mut a, &f, s);
        let pv = norm_int(&mut a, &f, v);
        assert_eq!(p_eq, pv);
        // With i ≠ j instead: miss through to base.
        let (mut a2, mut f2) = setup();
        let m = a2.var("m");
        let i = a2.var("i");
        let j = a2.var("j");
        let v = a2.var("v");
        let u = a2.upd(m, i, v);
        let s = a2.sel(u, j);
        let diff = a2.sub(i, j);
        f2.assume_neq_zero(&mut a2, diff);
        let p_neq = norm_int(&mut a2, &f2, s);
        let base_sel = a2.sel(m, j);
        let p_base = norm_int(&mut a2, &f2, base_sel);
        assert_eq!(p_neq, p_base);
    }

    #[test]
    fn contradictory_facts_prove_anything_soundly_flagged() {
        // With x ≥ 1 and -x ≥ 0 the hypotheses are inconsistent; FM finds the
        // refutation, so every ≥ query succeeds. This mirrors ex falso — fine
        // for a checker (the path is unreachable).
        let (mut a, mut f) = setup();
        let x = a.var("x");
        let one = a.int(1);
        let xm1 = a.sub(x, one);
        f.assume_ge0(&mut a, xm1);
        let zero = a.int(0);
        let negx = a.sub(zero, x);
        f.assume_ge0(&mut a, negx);
        let y = a.var("y");
        assert!(f.prove_ge0(&mut a, y));
    }

    #[test]
    fn prove_eq_via_inequality_squeeze() {
        let (mut a, mut f) = setup();
        let x = a.var("x");
        let y = a.var("y");
        let d1 = a.sub(y, x);
        let d2 = a.sub(x, y);
        f.assume_ge0(&mut a, d1);
        f.assume_ge0(&mut a, d2);
        assert!(f.prove_eq(&mut a, x, y));
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;

    /// Serialize tests that toggle the process-global cache mode, restoring
    /// the previous mode on drop.
    fn cache_guard(on: bool) -> impl Drop {
        solver_knob_guard(Some(on), None)
    }

    #[test]
    fn repeat_queries_hit_in_both_orientations() {
        let _g = cache_guard(true);
        let mut a = ExprArena::new();
        let f = Facts::new();
        let x = a.var("x");
        let y = a.var("y");
        let l = a.add(x, y);
        let r = a.add(y, x);
        assert!(f.prove_eq(&mut a, l, r));
        let (h0, m0) = a.entail_cache_stats();
        assert_eq!((h0, m0), (0, 1));
        assert!(f.prove_eq(&mut a, l, r));
        // The query is symmetric and the key id-ordered, so the flipped
        // orientation shares the slot.
        assert!(f.prove_eq(&mut a, r, l));
        let (h1, m1) = a.entail_cache_stats();
        assert_eq!((h1, m1), (2, 1));
    }

    #[test]
    fn prove_eq_zero_is_cached_under_the_sentinel_pair() {
        let _g = cache_guard(true);
        let mut a = ExprArena::new();
        let f = Facts::new();
        let x = a.var("x");
        let d = a.sub(x, x);
        assert!(f.prove_eq_zero(&mut a, d));
        assert!(f.prove_eq_zero(&mut a, d));
        let (h, m) = a.entail_cache_stats();
        assert_eq!((h, m), (1, 1));
    }

    #[test]
    fn facts_mutation_invalidates_by_generation() {
        let _g = cache_guard(true);
        let mut a = ExprArena::new();
        let mut f = Facts::new();
        let x = a.var("x");
        let y = a.var("y");
        assert!(!f.prove_eq(&mut a, x, y), "unprovable without hypotheses");
        let g0 = f.generation();
        f.assume_eq(&mut a, x, y);
        assert_ne!(f.generation(), g0, "mutation must re-tag");
        // The stale negative verdict must not be replayed: the new
        // generation misses and the prover re-derives `x = y`.
        assert!(f.prove_eq(&mut a, x, y));
        let (hits, _) = a.entail_cache_stats();
        assert_eq!(hits, 0, "no query may hit across the mutation");
    }

    #[test]
    fn empty_fact_sets_share_cached_verdicts() {
        let _g = cache_guard(true);
        let mut a = ExprArena::new();
        let x = a.var("x");
        let y = a.var("y");
        let f1 = Facts::new();
        let f2 = Facts::new();
        assert_eq!(f1.generation(), 0);
        assert_eq!(f2.generation(), 0);
        assert!(!f1.prove_eq(&mut a, x, y));
        assert!(!f2.prove_eq(&mut a, x, y));
        let (h, m) = a.entail_cache_stats();
        assert_eq!((h, m), (1, 1), "a fresh Facts reuses generation-0 slots");
    }

    #[test]
    fn clones_share_generation_until_their_own_mutation() {
        let _g = cache_guard(true);
        let mut a = ExprArena::new();
        let mut f = Facts::new();
        let x = a.var("x");
        let y = a.var("y");
        f.assume_eq(&mut a, x, y);
        let mut c = f.clone();
        assert_eq!(c.generation(), f.generation());
        assert_eq!(c, f);
        let z = a.var("z");
        c.assume_eq(&mut a, y, z);
        assert_ne!(c.generation(), f.generation());
        assert_ne!(c, f);
    }

    #[test]
    fn disabled_cache_touches_nothing() {
        let _g = cache_guard(false);
        assert!(!entail_cache_enabled());
        let mut a = ExprArena::new();
        let f = Facts::new();
        let x = a.var("x");
        let y = a.var("y");
        let l = a.add(x, y);
        let r = a.add(y, x);
        assert!(f.prove_eq(&mut a, l, r));
        assert!(f.prove_eq(&mut a, l, r));
        assert_eq!(a.entail_cache_stats(), (0, 0));
    }

    #[test]
    fn cached_and_uncached_verdicts_agree() {
        let _g = cache_guard(true);
        let mut warm = ExprArena::new();
        let mut cold = ExprArena::new();
        for (arena, on) in [(&mut warm, true), (&mut cold, false)] {
            set_entail_cache(on);
            let mut f = Facts::new();
            let i = arena.var("i");
            let n = arena.var("n");
            let cond = arena.bin(BinOp::Slt, i, n);
            let one = arena.int(1);
            f.assume_neq_zero(arena, cond);
            // Ask each query twice so the warm arena answers from cache.
            for _ in 0..2 {
                assert!(f.prove_eq(arena, cond, one));
                assert!(!f.prove_eq(arena, i, n));
                let d = arena.sub(n, i);
                let dm1 = arena.sub(d, one);
                assert!(!f.prove_eq_zero(arena, d));
                assert!(f.prove_ge0(arena, dm1));
            }
        }
        assert!(warm.entail_cache_stats().0 > 0);
        assert_eq!(cold.entail_cache_stats(), (0, 0));
    }
}

#[cfg(test)]
mod interval_tests {
    use super::*;

    /// Run a query battery with the interval layer on and off (memo cache
    /// off, so every query is decided fresh) and demand identical verdicts.
    /// Every tier-1/tier-2 rule has at least one query that exercises it.
    fn assert_mode_identical(build: impl Fn(&mut ExprArena, &mut Facts) -> Vec<bool>) {
        let mut verdicts: Vec<Vec<bool>> = Vec::new();
        for on in [true, false] {
            let _g = solver_knob_guard(Some(false), Some(on));
            let mut arena = ExprArena::new();
            let mut facts = Facts::new();
            verdicts.push(build(&mut arena, &mut facts));
        }
        assert_eq!(verdicts[0], verdicts[1], "interval layer changed a verdict");
    }

    #[test]
    fn tier1_rules_are_verdict_identical() {
        assert_mode_identical(|a, f| {
            let mut v = Vec::new();
            let i = a.var("i");
            let n = a.var("n");
            let x = a.var("x");
            f.assume_in_range(a, i, 0, 8); // 0 ≤ i ≤ 7
            let cond = a.bin(BinOp::Slt, x, n);
            f.assume_neq_zero(a, cond); // slt(x,n) = 1, n - x ≥ 1
            let one = a.int(1);
            // Solved opaque atom with canonical (unsubstituted) operands:
            // the env lookup may answer directly.
            v.push(f.prove_eq(a, cond, one));
            let k3 = a.int(3);
            f.assume_eq(a, x, k3); // x solved to the constant 3
                                   // Now `cond`'s operand is substituted away, so the raw node is
                                   // no longer its own canonical atom — the lookup must be
                                   // skipped, or tier 1 would out-prove the fallback.
            v.push(f.prove_eq(a, cond, one));
            let ten = a.int(10);
            let neg1 = a.int(-1);
            let i_m10 = a.sub(i, ten);
            let i_p1 = a.add(i, one);
            v.push(f.prove_ge0(a, i)); // lower bound: true
            v.push(f.prove_ge0(a, i_m10)); // i - 10 with i ≤ 7: false
            v.push(f.prove_ge0(a, x)); // rigid constant 3: true
            v.push(f.prove_ge0(a, neg1)); // rigid constant: false
            v.push(f.prove_eq(a, x, k3)); // equal points: true
            v.push(f.prove_eq(a, k3, ten)); // distinct rigid consts: false
            v.push(f.prove_neq(a, i, neg1)); // disjoint [0,7] vs -1: true
            v.push(f.prove_neq(a, i, ten)); // disjoint [0,7] vs 10: true
            v.push(f.prove_neq(a, i, i_p1)); // overlapping: constant gap
            v.push(f.prove_neq_zero(a, x)); // rigid 3 vs 0: true
            v.push(f.prove_neq_zero(a, i)); // 0 ∈ [0,7]: unprovable
            v
        });
    }

    #[test]
    fn tier2_box_is_verdict_identical() {
        assert_mode_identical(|a, f| {
            let i = a.var("i");
            let j = a.var("j");
            let n = a.var("n");
            f.assume_in_range(a, i, 0, 100);
            f.assume_in_range(a, j, 5, 50);
            let sum = a.add(i, j);
            let k104 = a.int(104);
            let bound = a.sub(k104, sum); // 104 - (i + j) ≥ 0 needs i+j ≤ 104
            let tight = a.int(103);
            let bound_tight = a.sub(tight, sum);
            let ij = a.sub(j, i);
            let ni = a.sub(n, i); // n unbounded: exact box, unbounded below
            vec![
                f.prove_ge0(a, sum),         // min 5 > -1: true
                f.prove_ge0(a, bound),       // max i+j = 148 > 104: false
                f.prove_ge0(a, bound_tight), // false
                f.prove_ge0(a, ij),          // j - i ∈ [-94, 49]: false
                f.prove_ge0(a, ni),          // unbounded below: false
            ]
        });
    }

    #[test]
    fn multiplication_and_opaque_ops_stay_transparent() {
        assert_mode_identical(|a, f| {
            let x = a.var("x");
            let y = a.var("y");
            f.assume_in_range(a, x, 1, 3); // x ∈ [1, 2]
            f.assume_in_range(a, y, 1, 3);
            let xy = a.mul(x, y); // nonlinear: must stay ⊤ both modes
            let two = a.int(2);
            let tx = a.mul(two, x); // rigid scale: 2x ∈ [2, 4]
            let mask = a.int(7);
            let m = a.bin(BinOp::And, x, mask); // shape bound [0, 7]
            let tx_m2 = a.sub(tx, two);
            let m_m8 = {
                let eight = a.int(8);
                a.sub(m, eight)
            };
            vec![
                f.prove_ge0(a, xy),
                f.prove_ge0(a, tx),
                f.prove_ge0(a, tx_m2),
                f.prove_ge0(a, m),
                f.prove_ge0(a, m_m8), // m - 8 with m ≤ 7: false
                f.prove_neq_zero(a, x),
                f.prove_neq_zero(a, xy),
            ]
        });
    }

    #[test]
    fn inconsistent_facts_still_prove_everything() {
        // Ex falso must survive the interval layer (it declines rather than
        // answering from an empty environment).
        assert_mode_identical(|a, f| {
            let x = a.var("x");
            let y = a.var("y");
            let one = a.int(1);
            let xm1 = a.sub(x, one);
            f.assume_ge0(a, xm1); // x ≥ 1
            let zero = a.int(0);
            let negx = a.sub(zero, x);
            f.assume_ge0(a, negx); // x ≤ 0: contradiction
            vec![
                f.prove_ge0(a, y),
                f.prove_eq(a, x, y),
                f.prove_neq_zero(a, y),
            ]
        });
    }

    #[test]
    fn overflow_near_i64_limits_is_declined_not_wrong() {
        assert_mode_identical(|a, f| {
            let x = a.var("x");
            let big = a.int(i64::MAX - 1);
            let d = a.sub(x, big);
            f.assume_ge0(a, d); // x ≥ i64::MAX - 1
            let two = a.int(2);
            let xp2 = a.add(x, two);
            let sum_bound = a.sub(xp2, big);
            vec![f.prove_ge0(a, xp2), f.prove_ge0(a, sum_bound)]
        });
    }

    #[test]
    fn eviction_counter_is_observable() {
        let _g = solver_knob_guard(Some(true), None);
        let mut a = ExprArena::new();
        let f = Facts::new();
        assert_eq!(a.entail_cache_evictions(), 0);
        // Hammer distinct queries until two keys collide in the 8192-slot
        // direct map; 10_000 distinct stores guarantee at least one.
        for k in 0..10_000 {
            let x = a.var("x");
            let c = a.int(k);
            let e = a.add(x, c);
            let _ = f.prove_eq_zero(&mut a, e);
        }
        assert!(
            a.entail_cache_evictions() > 0,
            "10k stores into 8192 slots must collide"
        );
        let (h, m) = a.entail_cache_stats();
        assert_eq!(h, 0);
        assert_eq!(m, 10_000);
    }
}

#[cfg(test)]
mod implicit_bounds_tests {
    use super::*;

    #[test]
    fn masked_index_is_bounded() {
        let mut a = ExprArena::new();
        let f = Facts::new();
        let i = a.var("i");
        let mask = a.int(7);
        let masked = a.bin(BinOp::And, i, mask);
        // 0 ≤ i & 7 ≤ 7 with no explicit facts
        assert!(f.prove_ge0(&mut a, masked));
        let seven = a.int(7);
        let upper = a.sub(seven, masked);
        assert!(f.prove_ge0(&mut a, upper));
        assert!(f.prove_in_range(&mut a, masked, 0, 8));
        assert!(!f.prove_in_range(&mut a, masked, 0, 7));
        // base + (i & 7) lands in [base, base+8)
        let base = a.int(4096);
        let addr = a.add(base, masked);
        assert!(f.prove_in_range(&mut a, addr, 4096, 4104));
    }

    #[test]
    fn slt_atom_is_bounded() {
        let mut a = ExprArena::new();
        let f = Facts::new();
        let x = a.var("x");
        let y = a.var("y");
        let lt = a.bin(BinOp::Slt, x, y);
        assert!(f.prove_in_range(&mut a, lt, 0, 2));
    }
}
