//! Substitutions `S ::= · | S, E/x` (paper Figure 5).
//!
//! The judgment `Δ ⊢ S : Δ'` holds when `S` maps every variable of `Δ'` to an
//! expression well-kinded in `Δ` at the matching kind.

use std::collections::HashMap;

use crate::expr::{ExprArena, ExprId, ExprNode, Kind, KindCtx, VarId};

/// A finite map from expression variables to expressions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Subst {
    map: HashMap<VarId, ExprId>,
}

impl Subst {
    /// The empty substitution.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Extend with `e/x`. Returns the previous binding, if any.
    pub fn bind(&mut self, x: VarId, e: ExprId) -> Option<ExprId> {
        self.map.insert(x, e)
    }

    /// Look up the image of `x`.
    #[must_use]
    pub fn get(&self, x: VarId) -> Option<ExprId> {
        self.map.get(&x).copied()
    }

    /// Number of bindings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the substitution is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate over `(x, E)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, ExprId)> + '_ {
        self.map.iter().map(|(&v, &e)| (v, e))
    }

    /// Apply the substitution to `e`. Unbound variables are left in place
    /// (so substitutions compose with weakening).
    pub fn apply(&self, arena: &mut ExprArena, e: ExprId) -> ExprId {
        match arena.node(e) {
            ExprNode::Var(v) => self.get(v).unwrap_or(e),
            ExprNode::Int(_) | ExprNode::Emp => e,
            ExprNode::Bin(op, a, b) => {
                let a2 = self.apply(arena, a);
                let b2 = self.apply(arena, b);
                if a2 == a && b2 == b {
                    e
                } else {
                    arena.bin(op, a2, b2)
                }
            }
            ExprNode::Sel(m, a) => {
                let m2 = self.apply(arena, m);
                let a2 = self.apply(arena, a);
                if m2 == m && a2 == a {
                    e
                } else {
                    arena.sel(m2, a2)
                }
            }
            ExprNode::Upd(m, a, v) => {
                let m2 = self.apply(arena, m);
                let a2 = self.apply(arena, a);
                let v2 = self.apply(arena, v);
                if m2 == m && a2 == a && v2 == v {
                    e
                } else {
                    arena.upd(m2, a2, v2)
                }
            }
        }
    }

    /// Check `Δ ⊢ S : Δ'`: every variable bound by `Δ'` has an image whose
    /// kind under `Δ` matches. Extra bindings in `S` are permitted.
    pub fn well_formed(
        &self,
        arena: &ExprArena,
        delta: &KindCtx,
        delta_target: &KindCtx,
    ) -> Result<(), SubstError> {
        for (x, k) in delta_target.iter() {
            let e = self.get(x).ok_or(SubstError::Missing(x))?;
            let got = arena
                .kind_of(delta, e)
                .map_err(|e| SubstError::IllKinded(x, e))?;
            if got != k {
                return Err(SubstError::KindMismatch {
                    var: x,
                    want: k,
                    got,
                });
            }
        }
        Ok(())
    }

    /// Whether the substitution covers every variable of `delta_target`.
    #[must_use]
    pub fn covers(&self, delta_target: &KindCtx) -> bool {
        delta_target.iter().all(|(x, _)| self.map.contains_key(&x))
    }
}

/// Error from checking `Δ ⊢ S : Δ'`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubstError {
    /// A target variable has no image.
    Missing(VarId),
    /// The image of a variable is ill-kinded in the source context.
    IllKinded(VarId, crate::expr::KindError),
    /// The image has the wrong kind.
    KindMismatch {
        /// The variable whose image is wrong.
        var: VarId,
        /// Kind required by `Δ'`.
        want: Kind,
        /// Kind found under `Δ`.
        got: Kind,
    },
}

impl std::fmt::Display for SubstError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubstError::Missing(v) => write!(f, "substitution misses variable #{}", v.0),
            SubstError::IllKinded(v, e) => {
                write!(f, "image of variable #{} is ill-kinded: {e}", v.0)
            }
            SubstError::KindMismatch { var, want, got } => write!(
                f,
                "image of variable #{} has kind {got}, expected {want}",
                var.0
            ),
        }
    }
}

impl std::error::Error for SubstError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_substitutes_and_shares() {
        let mut a = ExprArena::new();
        let x = a.var_id("x");
        let xe = a.var_expr(x);
        let one = a.int(1);
        let e = a.add(xe, one);
        let mut s = Subst::new();
        let seven = a.int(7);
        s.bind(x, seven);
        let e2 = s.apply(&mut a, e);
        assert_eq!(a.display(e2), "(add 7 1)");
        // applying to a term without x is identity (same id)
        let closed = a.add(one, one);
        assert_eq!(s.apply(&mut a, closed), closed);
    }

    #[test]
    fn apply_traverses_memory_ops() {
        let mut a = ExprArena::new();
        let m = a.var_id("m");
        let me = a.var_expr(m);
        let x = a.var_id("x");
        let xe = a.var_expr(x);
        let u = a.upd(me, xe, xe);
        let sel = a.sel(u, xe);
        let mut s = Subst::new();
        let emp = a.emp();
        let two = a.int(2);
        s.bind(m, emp);
        s.bind(x, two);
        let got = s.apply(&mut a, sel);
        assert_eq!(a.display(got), "(sel (upd emp 2 2) 2)");
    }

    #[test]
    fn well_formed_checks_kinds_and_coverage() {
        let mut a = ExprArena::new();
        let x = a.var_id("x");
        let m = a.var_id("m");
        let mut tgt = KindCtx::new();
        tgt.bind(x, Kind::Int);
        tgt.bind(m, Kind::Mem);

        let src = KindCtx::new();
        let mut s = Subst::new();
        let five = a.int(5);
        s.bind(x, five);
        // missing m
        assert!(matches!(
            s.well_formed(&a, &src, &tgt),
            Err(SubstError::Missing(_))
        ));
        // wrong kind for m
        s.bind(m, five);
        assert!(matches!(
            s.well_formed(&a, &src, &tgt),
            Err(SubstError::KindMismatch {
                want: Kind::Mem,
                got: Kind::Int,
                ..
            })
        ));
        let emp = a.emp();
        s.bind(m, emp);
        assert_eq!(s.well_formed(&a, &src, &tgt), Ok(()));
        assert!(s.covers(&tgt));
    }
}
