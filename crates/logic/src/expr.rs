//! Static expressions `E` and kinds `κ` (paper Figure 5, §3.1).
//!
//! Expressions are hash-consed into an [`ExprArena`]: structurally equal
//! expressions share an [`ExprId`], so syntactic equality is an integer
//! comparison and normal forms can be cached per node.
//!
//! The grammar follows the paper:
//!
//! ```text
//! kinds κ ::= κint | κmem
//! exps  E ::= x | n | E op E | sel Em En | emp | upd Em En1 En2
//! ```
//!
//! with the conservative extension that `op` ranges over the full machine
//! ALU-op set (the paper's `add|sub|mul` plus `slt` and bitwise ops; see
//! DESIGN.md §"Faithfulness notes").

use std::collections::HashMap;
use std::fmt;

/// Kind of a static expression: machine integer or memory (paper: `κint`, `κmem`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// `κint` — classifies integer-valued expressions.
    Int,
    /// `κmem` — classifies memory-valued expressions.
    Mem,
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Kind::Int => write!(f, "int"),
            Kind::Mem => write!(f, "mem"),
        }
    }
}

/// Binary operators usable inside static expressions.
///
/// `Add`/`Sub`/`Mul` are the paper's ALU ops and are interpreted by the
/// polynomial normalizer. The remaining operators are conservative ISA
/// extensions; the normalizer treats them as interpreted-but-opaque function
/// symbols (constant-folded when both operands are constants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed set-less-than: `1` if lhs < rhs else `0`.
    Slt,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (by rhs mod 64).
    Shl,
    /// Logical (unsigned) shift right (by rhs mod 64).
    Shr,
}

impl BinOp {
    /// Evaluate the operator on two machine words (wrapping semantics).
    #[must_use]
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Slt => i64::from(a < b),
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => ((a as u64) << (b as u64 & 63)) as i64,
            BinOp::Shr => ((a as u64) >> (b as u64 & 63)) as i64,
        }
    }

    /// Mnemonic used by the assembler and `Display`.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Slt => "slt",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        }
    }

    /// Parse a mnemonic back into an operator.
    #[must_use]
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "add" => BinOp::Add,
            "sub" => BinOp::Sub,
            "mul" => BinOp::Mul,
            "slt" => BinOp::Slt,
            "and" => BinOp::And,
            "or" => BinOp::Or,
            "xor" => BinOp::Xor,
            "shl" => BinOp::Shl,
            "shr" => BinOp::Shr,
            _ => return None,
        })
    }

    /// All operators, in a fixed order (useful for exhaustive tests).
    pub const ALL: [BinOp; 9] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Slt,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
    ];
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Interned expression-variable identifier (`x` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// Interned expression identifier. Equal ids ⇔ structurally equal expressions
/// (within one [`ExprArena`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub u32);

/// One node of the static-expression syntax tree (paper Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExprNode {
    /// Expression variable `x`.
    Var(VarId),
    /// Integer literal `n`.
    Int(i64),
    /// `E1 op E2`.
    Bin(BinOp, ExprId, ExprId),
    /// `sel Em En` — the integer at address `En` in memory `Em`.
    Sel(ExprId, ExprId),
    /// `emp` — the empty memory.
    Emp,
    /// `upd Em En1 En2` — `Em` with address `En1` mapped to `En2`.
    Upd(ExprId, ExprId, ExprId),
}

/// Hash-consing arena for static expressions and variable names.
///
/// All expression construction, inspection, and normalization is relative to
/// an arena. Mixing [`ExprId`]s across arenas is a logic error (unchecked).
#[derive(Debug, Default)]
pub struct ExprArena {
    nodes: Vec<ExprNode>,
    dedup: HashMap<ExprNode, ExprId>,
    var_names: Vec<String>,
    var_dedup: HashMap<String, VarId>,
    /// Memoized entailment verdicts (ids are arena-relative, so the cache
    /// must live and die with the arena; see `entail::EntailCache`).
    pub(crate) entail_cache: crate::entail::EntailCache,
}

impl ExprArena {
    /// Create an empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a variable name, returning a stable [`VarId`].
    pub fn var_id(&mut self, name: &str) -> VarId {
        if let Some(&v) = self.var_dedup.get(name) {
            return v;
        }
        let v = VarId(u32::try_from(self.var_names.len()).expect("too many variables"));
        self.var_names.push(name.to_owned());
        self.var_dedup.insert(name.to_owned(), v);
        v
    }

    /// Name of an interned variable.
    #[must_use]
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v.0 as usize]
    }

    /// Generate a fresh variable guaranteed not to collide with existing names.
    pub fn fresh_var(&mut self, hint: &str) -> VarId {
        let mut i = self.var_names.len();
        loop {
            let name = format!("{hint}${i}");
            if !self.var_dedup.contains_key(&name) {
                return self.var_id(&name);
            }
            i += 1;
        }
    }

    /// Intern a node, returning its id.
    pub fn intern(&mut self, node: ExprNode) -> ExprId {
        if let Some(&id) = self.dedup.get(&node) {
            return id;
        }
        let id = ExprId(u32::try_from(self.nodes.len()).expect("too many expressions"));
        self.nodes.push(node);
        self.dedup.insert(node, id);
        id
    }

    /// Look up the node for an id.
    #[must_use]
    pub fn node(&self, id: ExprId) -> ExprNode {
        self.nodes[id.0 as usize]
    }

    /// Number of interned nodes (for diagnostics).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena holds no expressions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// `(hits, misses)` of this arena's entailment query cache. Unlike the
    /// process-global `logic.cache.*` counters these are always recorded
    /// (they cost nothing extra on the exclusive `&mut` query path), so
    /// tests can assert cache behavior without enabling `talft_obs`.
    #[must_use]
    pub fn entail_cache_stats(&self) -> (u64, u64) {
        self.entail_cache.stats()
    }

    /// Number of live entries the direct-mapped entailment cache overwrote
    /// because a different key hashed to an occupied slot — the 8192-slot
    /// map's conflict rate, always recorded like
    /// [`ExprArena::entail_cache_stats`].
    #[must_use]
    pub fn entail_cache_evictions(&self) -> u64 {
        self.entail_cache.evictions()
    }

    /// Maximum syntax-tree depth over every interned expression (leaves have
    /// depth 1; an empty arena has depth 0). A single forward pass suffices
    /// because [`ExprArena::intern`] appends children before parents.
    #[must_use]
    pub fn max_depth(&self) -> u32 {
        let mut depth = vec![0u32; self.nodes.len()];
        let mut max = 0;
        for (i, node) in self.nodes.iter().enumerate() {
            let d = match *node {
                ExprNode::Var(_) | ExprNode::Int(_) | ExprNode::Emp => 1,
                ExprNode::Bin(_, a, b) | ExprNode::Sel(a, b) => {
                    1 + depth[a.0 as usize].max(depth[b.0 as usize])
                }
                ExprNode::Upd(m, a, v) => {
                    1 + depth[m.0 as usize]
                        .max(depth[a.0 as usize])
                        .max(depth[v.0 as usize])
                }
            };
            depth[i] = d;
            max = max.max(d);
        }
        max
    }

    // ---- convenience constructors ----------------------------------------

    /// `x` by name.
    pub fn var(&mut self, name: &str) -> ExprId {
        let v = self.var_id(name);
        self.intern(ExprNode::Var(v))
    }

    /// `x` by id.
    pub fn var_expr(&mut self, v: VarId) -> ExprId {
        self.intern(ExprNode::Var(v))
    }

    /// Integer literal.
    pub fn int(&mut self, n: i64) -> ExprId {
        self.intern(ExprNode::Int(n))
    }

    /// `a op b`.
    pub fn bin(&mut self, op: BinOp, a: ExprId, b: ExprId) -> ExprId {
        self.intern(ExprNode::Bin(op, a, b))
    }

    /// `a + b`.
    pub fn add(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.bin(BinOp::Add, a, b)
    }

    /// `a - b`.
    pub fn sub(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.bin(BinOp::Sub, a, b)
    }

    /// `a * b`.
    pub fn mul(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.bin(BinOp::Mul, a, b)
    }

    /// `sel m a`.
    pub fn sel(&mut self, m: ExprId, a: ExprId) -> ExprId {
        self.intern(ExprNode::Sel(m, a))
    }

    /// `emp`.
    pub fn emp(&mut self) -> ExprId {
        self.intern(ExprNode::Emp)
    }

    /// `upd m a v`.
    pub fn upd(&mut self, m: ExprId, a: ExprId, v: ExprId) -> ExprId {
        self.intern(ExprNode::Upd(m, a, v))
    }

    // ---- structural queries ----------------------------------------------

    /// Infer the kind of an expression under a kind context, or report the
    /// offending subterm. Implements the judgment `Δ ⊢ E : κ`.
    pub fn kind_of(&self, ctx: &KindCtx, e: ExprId) -> Result<Kind, KindError> {
        match self.node(e) {
            ExprNode::Var(v) => ctx.get(v).ok_or(KindError::UnboundVar(v)),
            ExprNode::Int(_) => Ok(Kind::Int),
            ExprNode::Bin(_, a, b) => {
                self.expect_kind(ctx, a, Kind::Int)?;
                self.expect_kind(ctx, b, Kind::Int)?;
                Ok(Kind::Int)
            }
            ExprNode::Sel(m, a) => {
                self.expect_kind(ctx, m, Kind::Mem)?;
                self.expect_kind(ctx, a, Kind::Int)?;
                Ok(Kind::Int)
            }
            ExprNode::Emp => Ok(Kind::Mem),
            ExprNode::Upd(m, a, v) => {
                self.expect_kind(ctx, m, Kind::Mem)?;
                self.expect_kind(ctx, a, Kind::Int)?;
                self.expect_kind(ctx, v, Kind::Int)?;
                Ok(Kind::Mem)
            }
        }
    }

    fn expect_kind(&self, ctx: &KindCtx, e: ExprId, want: Kind) -> Result<(), KindError> {
        let got = self.kind_of(ctx, e)?;
        if got == want {
            Ok(())
        } else {
            Err(KindError::Mismatch { expr: e, want, got })
        }
    }

    /// Collect the free variables of `e` into `out` (deduplicated).
    pub fn free_vars_into(&self, e: ExprId, out: &mut Vec<VarId>) {
        match self.node(e) {
            ExprNode::Var(v) => {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
            ExprNode::Int(_) | ExprNode::Emp => {}
            ExprNode::Bin(_, a, b) | ExprNode::Sel(a, b) => {
                self.free_vars_into(a, out);
                self.free_vars_into(b, out);
            }
            ExprNode::Upd(m, a, v) => {
                self.free_vars_into(m, out);
                self.free_vars_into(a, out);
                self.free_vars_into(v, out);
            }
        }
    }

    /// Free variables of `e`.
    #[must_use]
    pub fn free_vars(&self, e: ExprId) -> Vec<VarId> {
        let mut out = Vec::new();
        self.free_vars_into(e, &mut out);
        out
    }

    /// Whether `e` is closed (no free variables).
    #[must_use]
    pub fn is_closed(&self, e: ExprId) -> bool {
        match self.node(e) {
            ExprNode::Var(_) => false,
            ExprNode::Int(_) | ExprNode::Emp => true,
            ExprNode::Bin(_, a, b) | ExprNode::Sel(a, b) => self.is_closed(a) && self.is_closed(b),
            ExprNode::Upd(m, a, v) => self.is_closed(m) && self.is_closed(a) && self.is_closed(v),
        }
    }

    /// Pretty-print an expression.
    #[must_use]
    pub fn display(&self, e: ExprId) -> String {
        let mut s = String::new();
        self.write_expr(&mut s, e)
            .expect("string write cannot fail");
        s
    }

    fn write_expr(&self, f: &mut String, e: ExprId) -> fmt::Result {
        use fmt::Write;
        match self.node(e) {
            ExprNode::Var(v) => write!(f, "{}", self.var_name(v)),
            ExprNode::Int(n) => write!(f, "{n}"),
            ExprNode::Bin(op, a, b) => {
                write!(f, "({op} ")?;
                self.write_expr(f, a)?;
                write!(f, " ")?;
                self.write_expr(f, b)?;
                write!(f, ")")
            }
            ExprNode::Sel(m, a) => {
                write!(f, "(sel ")?;
                self.write_expr(f, m)?;
                write!(f, " ")?;
                self.write_expr(f, a)?;
                write!(f, ")")
            }
            ExprNode::Emp => write!(f, "emp"),
            ExprNode::Upd(m, a, v) => {
                write!(f, "(upd ")?;
                self.write_expr(f, m)?;
                write!(f, " ")?;
                self.write_expr(f, a)?;
                write!(f, " ")?;
                self.write_expr(f, v)?;
                write!(f, ")")
            }
        }
    }
}

/// Kind context `Δ` (the kinding part; facts live in [`crate::Facts`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KindCtx {
    binds: Vec<(VarId, Kind)>,
}

impl KindCtx {
    /// Empty context.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind `v : k`, shadowing any previous binding.
    pub fn bind(&mut self, v: VarId, k: Kind) {
        self.binds.retain(|(w, _)| *w != v);
        self.binds.push((v, k));
    }

    /// Look up a variable's kind.
    #[must_use]
    pub fn get(&self, v: VarId) -> Option<Kind> {
        self.binds
            .iter()
            .rev()
            .find(|(w, _)| *w == v)
            .map(|&(_, k)| k)
    }

    /// Whether the context binds `v`.
    #[must_use]
    pub fn contains(&self, v: VarId) -> bool {
        self.get(v).is_some()
    }

    /// Iterate over bindings in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, Kind)> + '_ {
        self.binds.iter().copied()
    }

    /// Number of bindings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.binds.len()
    }

    /// Whether the context is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.binds.is_empty()
    }
}

/// Error from kind inference (`Δ ⊢ E : κ`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KindError {
    /// A variable was not bound in `Δ`.
    UnboundVar(VarId),
    /// A subterm had the wrong kind.
    Mismatch {
        /// The offending subterm.
        expr: ExprId,
        /// Expected kind.
        want: Kind,
        /// Actual kind.
        got: Kind,
    },
}

impl fmt::Display for KindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KindError::UnboundVar(v) => write!(f, "unbound expression variable #{}", v.0),
            KindError::Mismatch { want, got, .. } => {
                write!(f, "kind mismatch: expected {want}, found {got}")
            }
        }
    }
}

impl std::error::Error for KindError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedups() {
        let mut a = ExprArena::new();
        let x1 = a.var("x");
        let x2 = a.var("x");
        assert_eq!(x1, x2);
        let e1 = a.add(x1, x2);
        let e2 = a.add(x1, x2);
        assert_eq!(e1, e2);
        let e3 = a.sub(x1, x2);
        assert_ne!(e1, e3);
    }

    #[test]
    fn kind_inference_int_and_mem() {
        let mut a = ExprArena::new();
        let mut ctx = KindCtx::new();
        let x = a.var_id("x");
        let m = a.var_id("m");
        ctx.bind(x, Kind::Int);
        ctx.bind(m, Kind::Mem);
        let xe = a.var_expr(x);
        let me = a.var_expr(m);
        let five = a.int(5);
        let sum = a.add(xe, five);
        assert_eq!(a.kind_of(&ctx, sum), Ok(Kind::Int));
        let sel = a.sel(me, sum);
        assert_eq!(a.kind_of(&ctx, sel), Ok(Kind::Int));
        let upd = a.upd(me, five, sel);
        assert_eq!(a.kind_of(&ctx, upd), Ok(Kind::Mem));
    }

    #[test]
    fn kind_inference_rejects_misuse() {
        let mut a = ExprArena::new();
        let mut ctx = KindCtx::new();
        let m = a.var_id("m");
        ctx.bind(m, Kind::Mem);
        let me = a.var_expr(m);
        let five = a.int(5);
        // `m + 5` is ill-kinded.
        let bad = a.add(me, five);
        assert!(matches!(
            a.kind_of(&ctx, bad),
            Err(KindError::Mismatch {
                want: Kind::Int,
                got: Kind::Mem,
                ..
            })
        ));
        // unbound variable
        let y = a.var("y");
        assert!(matches!(a.kind_of(&ctx, y), Err(KindError::UnboundVar(_))));
    }

    #[test]
    fn free_vars_and_closedness() {
        let mut a = ExprArena::new();
        let x = a.var("x");
        let m = a.var("m");
        let five = a.int(5);
        let e = a.sel(m, x);
        let e2 = a.add(e, five);
        let fv = a.free_vars(e2);
        assert_eq!(fv.len(), 2);
        assert!(!a.is_closed(e2));
        let emp = a.emp();
        let c = a.upd(emp, five, five);
        assert!(a.is_closed(c));
    }

    #[test]
    fn binop_eval_wrapping_and_slt() {
        assert_eq!(BinOp::Add.eval(i64::MAX, 1), i64::MIN);
        assert_eq!(BinOp::Mul.eval(1 << 62, 4), 0);
        assert_eq!(BinOp::Slt.eval(-1, 0), 1);
        assert_eq!(BinOp::Slt.eval(0, 0), 0);
        assert_eq!(BinOp::Shl.eval(1, 65), 2); // shift amount mod 64
        assert_eq!(BinOp::Shr.eval(-1, 63), 1);
    }

    #[test]
    fn mnemonic_round_trip() {
        for op in BinOp::ALL {
            assert_eq!(BinOp::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(BinOp::from_mnemonic("bogus"), None);
    }

    #[test]
    fn display_is_readable() {
        let mut a = ExprArena::new();
        let x = a.var("x");
        let one = a.int(1);
        let e = a.add(x, one);
        assert_eq!(a.display(e), "(add x 1)");
        let m = a.emp();
        let u = a.upd(m, one, x);
        let s = a.sel(u, one);
        assert_eq!(a.display(s), "(sel (upd emp 1 x) 1)");
    }

    #[test]
    fn max_depth_forward_pass() {
        let mut a = ExprArena::new();
        assert_eq!(a.max_depth(), 0);
        let x = a.var("x");
        assert_eq!(a.max_depth(), 1);
        let one = a.int(1);
        let e = a.add(x, one); // depth 2
        let _ = a.mul(e, e); // depth 3
        assert_eq!(a.max_depth(), 3);
        let emp = a.emp();
        let _ = a.upd(emp, x, e); // 1 + max(1, 1, 2) = 3
        assert_eq!(a.max_depth(), 3);
    }

    #[test]
    fn fresh_var_does_not_collide() {
        let mut a = ExprArena::new();
        let x = a.var_id("t$0");
        let f = a.fresh_var("t");
        assert_ne!(x, f);
        assert_ne!(a.var_name(f), "t$0");
    }
}
