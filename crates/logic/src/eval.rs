//! Denotation of closed static expressions, `[[E]]` (paper Appendix A.2).
//!
//! ```text
//! [[n]]              = n
//! [[E1 op E2]]       = [[E1]] op [[E2]]
//! [[emp]]            = ·
//! [[sel Em En]]      = [[Em]]([[En]])
//! [[upd Em E1 E2]]   = [[Em]][[[E1]] ↦ [[E2]]]
//! ```
//!
//! Memories are modelled as *total* functions that default to `0` outside the
//! explicitly written footprint; this matches the normalizer's read-over-write
//! reasoning and keeps `[[·]]` total on well-kinded closed terms. (Whether a
//! concrete machine address is mapped at all is a *machine*-level question,
//! handled by `talft-machine`'s `Dom(M)` checks, not a logic-level one.)

use std::collections::BTreeMap;
use std::collections::HashMap;

use crate::expr::{ExprArena, ExprId, ExprNode, VarId};

/// A denotational value: an integer or a memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// An integer (kind `κint`).
    Int(i64),
    /// A memory (kind `κmem`): explicit footprint, default 0 elsewhere.
    Mem(MemVal),
}

impl Value {
    /// Extract an integer, if this is one.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::Mem(_) => None,
        }
    }

    /// Extract a memory, if this is one.
    #[must_use]
    pub fn as_mem(&self) -> Option<&MemVal> {
        match self {
            Value::Mem(m) => Some(m),
            Value::Int(_) => None,
        }
    }
}

/// A memory value: total function `i64 → i64` with finite support.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemVal {
    writes: BTreeMap<i64, i64>,
}

impl MemVal {
    /// The empty memory `·` (all zeros).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from explicit contents.
    #[must_use]
    pub fn from_map(map: BTreeMap<i64, i64>) -> Self {
        let mut m = Self { writes: map };
        m.writes.retain(|_, v| *v != 0);
        m
    }

    /// Read address `a` (0 outside the footprint).
    #[must_use]
    pub fn get(&self, a: i64) -> i64 {
        self.writes.get(&a).copied().unwrap_or(0)
    }

    /// Write `v` at `a`.
    pub fn set(&mut self, a: i64, v: i64) {
        if v == 0 {
            self.writes.remove(&a);
        } else {
            self.writes.insert(a, v);
        }
    }

    /// The non-zero footprint, in address order.
    pub fn iter(&self) -> impl Iterator<Item = (i64, i64)> + '_ {
        self.writes.iter().map(|(&a, &v)| (a, v))
    }
}

/// An environment giving ground values to free variables.
#[derive(Debug, Clone, Default)]
pub struct Env {
    vals: HashMap<VarId, Value>,
}

impl Env {
    /// Empty environment (only closed terms evaluate).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind a variable to a value.
    pub fn bind(&mut self, v: VarId, val: Value) {
        self.vals.insert(v, val);
    }

    /// Bind an integer.
    pub fn bind_int(&mut self, v: VarId, n: i64) {
        self.bind(v, Value::Int(n));
    }

    /// Bind a memory.
    pub fn bind_mem(&mut self, v: VarId, m: MemVal) {
        self.bind(v, Value::Mem(m));
    }

    /// Look up a variable.
    #[must_use]
    pub fn get(&self, v: VarId) -> Option<&Value> {
        self.vals.get(&v)
    }
}

/// Evaluation error: the term was open (or ill-kinded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A free variable had no binding in the environment.
    UnboundVar(VarId),
    /// An operand had the wrong kind (e.g. `sel` of an integer).
    KindMismatch(ExprId),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::UnboundVar(v) => write!(f, "unbound variable #{}", v.0),
            EvalError::KindMismatch(e) => write!(f, "kind mismatch at expression #{}", e.0),
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluate `e` under `env`. Implements `[[E]]` of Appendix A.2.
pub fn eval(arena: &ExprArena, env: &Env, e: ExprId) -> Result<Value, EvalError> {
    match arena.node(e) {
        ExprNode::Var(v) => env.get(v).cloned().ok_or(EvalError::UnboundVar(v)),
        ExprNode::Int(n) => Ok(Value::Int(n)),
        ExprNode::Bin(op, a, b) => {
            let a = eval_int(arena, env, a)?;
            let b = eval_int(arena, env, b)?;
            Ok(Value::Int(op.eval(a, b)))
        }
        ExprNode::Sel(m, a) => {
            let m = eval_mem(arena, env, m)?;
            let a = eval_int(arena, env, a)?;
            Ok(Value::Int(m.get(a)))
        }
        ExprNode::Emp => Ok(Value::Mem(MemVal::new())),
        ExprNode::Upd(m, a, v) => {
            let mut m = eval_mem(arena, env, m)?;
            let a = eval_int(arena, env, a)?;
            let v = eval_int(arena, env, v)?;
            m.set(a, v);
            Ok(Value::Mem(m))
        }
    }
}

/// Evaluate an integer-kinded expression.
pub fn eval_int(arena: &ExprArena, env: &Env, e: ExprId) -> Result<i64, EvalError> {
    match eval(arena, env, e)? {
        Value::Int(n) => Ok(n),
        Value::Mem(_) => Err(EvalError::KindMismatch(e)),
    }
}

/// Evaluate a memory-kinded expression.
pub fn eval_mem(arena: &ExprArena, env: &Env, e: ExprId) -> Result<MemVal, EvalError> {
    match eval(arena, env, e)? {
        Value::Mem(m) => Ok(m),
        Value::Int(_) => Err(EvalError::KindMismatch(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    #[test]
    fn eval_arith() {
        let mut a = ExprArena::new();
        let e1 = a.int(3);
        let e2 = a.int(4);
        let s = a.mul(e1, e2);
        let s = a.add(s, e1);
        assert_eq!(eval(&a, &Env::new(), s), Ok(Value::Int(15)));
    }

    #[test]
    fn eval_memory_update_and_select() {
        let mut a = ExprArena::new();
        let emp = a.emp();
        let a1 = a.int(100);
        let v1 = a.int(7);
        let a2 = a.int(101);
        let v2 = a.int(9);
        let m1 = a.upd(emp, a1, v1);
        let m2 = a.upd(m1, a2, v2);
        let m3 = a.upd(m2, a1, v2); // overwrite 100
        let s1 = a.sel(m3, a1);
        let s2 = a.sel(m3, a2);
        let s3 = a.sel(m3, v1); // untouched address ⇒ 0
        let env = Env::new();
        assert_eq!(eval(&a, &env, s1), Ok(Value::Int(9)));
        assert_eq!(eval(&a, &env, s2), Ok(Value::Int(9)));
        assert_eq!(eval(&a, &env, s3), Ok(Value::Int(0)));
    }

    #[test]
    fn eval_env_lookup() {
        let mut a = ExprArena::new();
        let x = a.var_id("x");
        let xe = a.var_expr(x);
        let one = a.int(1);
        let e = a.bin(BinOp::Slt, xe, one);
        let mut env = Env::new();
        env.bind_int(x, 0);
        assert_eq!(eval(&a, &env, e), Ok(Value::Int(1)));
        env.bind_int(x, 5);
        assert_eq!(eval(&a, &env, e), Ok(Value::Int(0)));
        let y = a.var("y");
        assert!(matches!(eval(&a, &env, y), Err(EvalError::UnboundVar(_))));
    }

    #[test]
    fn eval_mem_var() {
        let mut a = ExprArena::new();
        let m = a.var_id("m");
        let me = a.var_expr(m);
        let addr = a.int(42);
        let s = a.sel(me, addr);
        let mut env = Env::new();
        let mut mv = MemVal::new();
        mv.set(42, -3);
        env.bind_mem(m, mv);
        assert_eq!(eval(&a, &env, s), Ok(Value::Int(-3)));
    }

    #[test]
    fn memval_zero_writes_normalize_footprint() {
        let mut m = MemVal::new();
        m.set(1, 5);
        m.set(1, 0);
        assert_eq!(m.iter().count(), 0);
        assert_eq!(m.get(1), 0);
    }
}
