//! Normal forms for static expressions.
//!
//! Integer expressions normalize to **polynomials** over *atoms* — variables,
//! residual `sel` terms, and opaque-operator applications — with coefficients
//! in the machine ring `ℤ/2⁶⁴` (wrapping `i64` arithmetic, which matches the
//! machine's ALU, so ring rewriting is sound for the machine semantics).
//! Memory expressions normalize to a **base + canonical write list**
//! ([`MemNf`]) with read-over-write simplification for `sel (upd …)`.
//!
//! Normalization consults a [`crate::Facts`] set so that facts learned from
//! branches (`E = 0` / `E ≠ 0` / `E ≥ 0`) sharpen array-aliasing decisions.
//! The procedure is *sound* and deliberately incomplete: validity in nonlinear
//! arithmetic plus arrays is undecidable (§3.1 of the paper leans on a
//! classical Hoare-logic theory; a real checker, like ours, ships a sound
//! fragment).

use std::collections::BTreeMap;

use crate::entail::Facts;
use crate::expr::{BinOp, ExprArena, ExprId, ExprNode};

/// A monomial: a multiset of atom ids, kept sorted. Empty = the constant
/// monomial `1`.
pub type Monomial = Vec<ExprId>;

/// A polynomial over atoms with wrapping `i64` coefficients.
///
/// Invariant: no zero coefficients are stored; each monomial's atom list is
/// sorted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Poly {
    terms: BTreeMap<Monomial, i64>,
}

impl Poly {
    /// The zero polynomial.
    #[must_use]
    pub fn zero() -> Self {
        Self::default()
    }

    /// A constant polynomial.
    #[must_use]
    pub fn constant(n: i64) -> Self {
        let mut p = Self::zero();
        if n != 0 {
            p.terms.insert(Vec::new(), n);
        }
        p
    }

    /// A single atom with coefficient 1.
    #[must_use]
    pub fn atom(a: ExprId) -> Self {
        let mut p = Self::zero();
        p.terms.insert(vec![a], 1);
        p
    }

    /// Whether this is the zero polynomial.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// If the polynomial is a constant, return it.
    #[must_use]
    pub fn as_constant(&self) -> Option<i64> {
        match self.terms.len() {
            0 => Some(0),
            1 => self.terms.get(&Vec::new() as &Monomial).copied(),
            _ => None,
        }
    }

    /// If the polynomial is exactly one atom with coefficient 1, return it.
    #[must_use]
    pub fn as_single_atom(&self) -> Option<ExprId> {
        if self.terms.len() != 1 {
            return None;
        }
        let (m, &c) = self.terms.iter().next().expect("len == 1");
        if c == 1 && m.len() == 1 {
            Some(m[0])
        } else {
            None
        }
    }

    /// Iterate `(monomial, coefficient)` in canonical order.
    pub fn terms(&self) -> impl Iterator<Item = (&Monomial, i64)> + '_ {
        self.terms.iter().map(|(m, &c)| (m, c))
    }

    /// Number of terms.
    #[must_use]
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    fn add_term(&mut self, m: Monomial, c: i64) {
        if c == 0 {
            return;
        }
        let entry = self.terms.entry(m);
        match entry {
            std::collections::btree_map::Entry::Occupied(mut o) => {
                let nc = o.get().wrapping_add(c);
                if nc == 0 {
                    o.remove();
                } else {
                    *o.get_mut() = nc;
                }
            }
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(c);
            }
        }
    }

    /// `self + other`.
    #[must_use]
    pub fn add(&self, other: &Poly) -> Poly {
        let mut out = self.clone();
        for (m, c) in other.terms() {
            out.add_term(m.clone(), c);
        }
        out
    }

    /// `-self`.
    #[must_use]
    pub fn neg(&self) -> Poly {
        let mut out = Poly::zero();
        for (m, c) in self.terms() {
            out.add_term(m.clone(), c.wrapping_neg());
        }
        out
    }

    /// `self - other`.
    #[must_use]
    pub fn sub(&self, other: &Poly) -> Poly {
        self.add(&other.neg())
    }

    /// `self * other`.
    #[must_use]
    pub fn mul(&self, other: &Poly) -> Poly {
        let mut out = Poly::zero();
        for (m1, c1) in self.terms() {
            for (m2, c2) in other.terms() {
                let mut m: Monomial = m1.iter().chain(m2.iter()).copied().collect();
                m.sort_unstable();
                out.add_term(m, c1.wrapping_mul(c2));
            }
        }
        out
    }

    /// Substitute `replacement` for `atom` throughout (used to apply solved
    /// equality facts). Monomials containing the atom k times are multiplied
    /// by `replacement` k times.
    #[must_use]
    pub fn subst_atom(&self, atom: ExprId, replacement: &Poly) -> Poly {
        let mut out = Poly::zero();
        for (m, c) in self.terms() {
            let count = m.iter().filter(|&&a| a == atom).count();
            if count == 0 {
                out.add_term(m.clone(), c);
            } else {
                let rest: Monomial = m.iter().copied().filter(|&a| a != atom).collect();
                let mut piece = Poly::constant(c);
                {
                    let mut base = Poly::zero();
                    base.add_term(rest, 1);
                    piece = piece.mul(&base);
                }
                for _ in 0..count {
                    piece = piece.mul(replacement);
                }
                out = out.add(&piece);
            }
        }
        out
    }

    /// Whether the atom occurs in any monomial.
    #[must_use]
    pub fn mentions_atom(&self, atom: ExprId) -> bool {
        self.terms.keys().any(|m| m.contains(&atom))
    }
}

/// Memory normal form: a base (variable or `emp`, as an expression id) plus a
/// write list `(addr, val)` oldest→newest, canonically reordered where
/// aliasing is decidable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemNf {
    /// Base memory: `emp` or a memory variable (reified expression).
    pub base: ExprId,
    /// Writes oldest→newest; addresses pairwise either provably distinct
    /// (then sorted by reified id) or of unknown aliasing (order preserved).
    pub writes: Vec<(Poly, Poly)>,
}

/// Normalize an integer-kinded expression to a polynomial.
///
/// Sound w.r.t. [`crate::eval()`] for every environment satisfying `facts`.
pub fn norm_int(arena: &mut ExprArena, facts: &Facts, e: ExprId) -> Poly {
    match arena.node(e) {
        ExprNode::Var(_) => facts.resolve_atom(e),
        ExprNode::Int(n) => Poly::constant(n),
        ExprNode::Bin(op, a, b) => {
            let pa = norm_int(arena, facts, a);
            let pb = norm_int(arena, facts, b);
            match op {
                BinOp::Add => pa.add(&pb),
                BinOp::Sub => pa.sub(&pb),
                BinOp::Mul => pa.mul(&pb),
                _ => {
                    // Opaque operator: constant-fold or build a canonical atom.
                    if let (Some(ca), Some(cb)) = (pa.as_constant(), pb.as_constant()) {
                        Poly::constant(op.eval(ca, cb))
                    } else {
                        let ra = reify_poly(arena, &pa);
                        let rb = reify_poly(arena, &pb);
                        let atom = arena.bin(op, ra, rb);
                        facts.resolve_atom(atom)
                    }
                }
            }
        }
        ExprNode::Sel(m, a) => {
            let nm = norm_mem(arena, facts, m);
            let pa = norm_int(arena, facts, a);
            sel_memnf(arena, facts, &nm, &pa)
        }
        ExprNode::Emp | ExprNode::Upd(..) => {
            // Ill-kinded use; treat as an opaque atom so normalization stays
            // total. Kind checking reports the real error elsewhere.
            facts.resolve_atom(e)
        }
    }
}

/// Read `addr` out of a normalized memory, applying read-over-write.
pub fn sel_memnf(arena: &mut ExprArena, facts: &Facts, m: &MemNf, addr: &Poly) -> Poly {
    // Scan newest → oldest.
    for (i, (waddr, wval)) in m.writes.iter().enumerate().rev() {
        let diff = addr.sub(waddr);
        if diff.is_zero() {
            return wval.clone();
        }
        if facts.poly_nonzero_with(arena, &diff) {
            continue; // cannot alias; look deeper
        }
        // Unknown aliasing: residual select over the memory truncated to
        // this write (deeper writes cannot be skipped soundly, but they are
        // still part of the residual term).
        let mem_expr = reify_memnf_prefix(arena, m, i + 1);
        let addr_expr = reify_poly(arena, addr);
        let atom = arena.sel(mem_expr, addr_expr);
        return facts.resolve_atom(atom);
    }
    // Missed every write: select from the base.
    if arena.node(m.base) == ExprNode::Emp {
        return Poly::zero(); // memories default to 0 off-footprint
    }
    let addr_expr = reify_poly(arena, addr);
    let atom = arena.sel(m.base, addr_expr);
    facts.resolve_atom(atom)
}

/// Normalize a memory-kinded expression.
pub fn norm_mem(arena: &mut ExprArena, facts: &Facts, e: ExprId) -> MemNf {
    match arena.node(e) {
        ExprNode::Emp => MemNf {
            base: e,
            writes: Vec::new(),
        },
        ExprNode::Var(_) => MemNf {
            base: e,
            writes: Vec::new(),
        },
        ExprNode::Upd(m, a, v) => {
            let mut nm = norm_mem(arena, facts, m);
            let pa = norm_int(arena, facts, a);
            let pv = norm_int(arena, facts, v);
            push_write(arena, facts, &mut nm, pa, pv);
            nm
        }
        // Ill-kinded (integer where memory expected): opaque base.
        ExprNode::Int(_) | ExprNode::Bin(..) | ExprNode::Sel(..) => MemNf {
            base: e,
            writes: Vec::new(),
        },
    }
}

/// Append a write, removing superseded older writes and canonically
/// reordering past provably-distinct neighbours.
fn push_write(arena: &mut ExprArena, facts: &Facts, m: &mut MemNf, addr: Poly, val: Poly) {
    // Drop older writes at a provably equal address (the new write wins).
    m.writes.retain(|(waddr, _)| !addr.sub(waddr).is_zero());
    m.writes.push((addr, val));
    // Insertion-style canonicalization: bubble the new write left while the
    // neighbour is provably distinct and has a larger canonical key.
    let mut i = m.writes.len() - 1;
    while i > 0 {
        let diff = m.writes[i].0.sub(&m.writes[i - 1].0);
        if !facts.poly_nonzero_with(arena, &diff) && diff.as_constant() != Some(0) {
            break; // unknown aliasing: order is semantic, keep it
        }
        let key_prev = reify_poly(arena, &m.writes[i - 1].0);
        let key_new = reify_poly(arena, &m.writes[i].0);
        if key_new < key_prev {
            m.writes.swap(i, i - 1);
            i -= 1;
        } else {
            break;
        }
    }
}

/// Reify a polynomial back into a canonical expression.
pub fn reify_poly(arena: &mut ExprArena, p: &Poly) -> ExprId {
    let mut acc: Option<ExprId> = None;
    for (m, c) in p.terms() {
        let mut term: Option<ExprId> = None;
        for &atom in m {
            term = Some(match term {
                None => atom,
                Some(t) => arena.mul(t, atom),
            });
        }
        let with_coeff = match term {
            None => arena.int(c),
            Some(t) => {
                if c == 1 {
                    t
                } else {
                    let ce = arena.int(c);
                    arena.mul(ce, t)
                }
            }
        };
        acc = Some(match acc {
            None => with_coeff,
            Some(a) => arena.add(a, with_coeff),
        });
    }
    acc.unwrap_or_else(|| arena.int(0))
}

/// Reify a memory normal form into a canonical expression.
pub fn reify_memnf(arena: &mut ExprArena, m: &MemNf) -> ExprId {
    reify_memnf_prefix(arena, m, m.writes.len())
}

fn reify_memnf_prefix(arena: &mut ExprArena, m: &MemNf, n_writes: usize) -> ExprId {
    let mut acc = m.base;
    for (addr, val) in &m.writes[..n_writes] {
        let a = reify_poly(arena, addr);
        let v = reify_poly(arena, val);
        acc = arena.upd(acc, a, v);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entail::Facts;

    fn setup() -> (ExprArena, Facts) {
        (ExprArena::new(), Facts::new())
    }

    #[test]
    fn ring_identities() {
        let (mut a, f) = setup();
        let x = a.var("x");
        let y = a.var("y");
        // (x + y) * (x - y) == x*x - y*y
        let sum = a.add(x, y);
        let dif = a.sub(x, y);
        let lhs = a.mul(sum, dif);
        let xx = a.mul(x, x);
        let yy = a.mul(y, y);
        let rhs = a.sub(xx, yy);
        assert_eq!(norm_int(&mut a, &f, lhs), norm_int(&mut a, &f, rhs));
    }

    #[test]
    fn constants_fold_with_wrapping() {
        let (mut a, f) = setup();
        let big = a.int(i64::MAX);
        let one = a.int(1);
        let e = a.add(big, one);
        assert_eq!(norm_int(&mut a, &f, e).as_constant(), Some(i64::MIN));
    }

    #[test]
    fn opaque_ops_fold_on_constants_only() {
        let (mut a, f) = setup();
        let two = a.int(2);
        let three = a.int(3);
        let e = a.bin(BinOp::Slt, two, three);
        assert_eq!(norm_int(&mut a, &f, e).as_constant(), Some(1));
        let x = a.var("x");
        let e2 = a.bin(BinOp::Slt, x, three);
        let p = norm_int(&mut a, &f, e2);
        assert!(p.as_constant().is_none());
        // but it is canonical: same term normalizes to same atom
        let e3 = a.bin(BinOp::Slt, x, three);
        assert_eq!(p, norm_int(&mut a, &f, e3));
    }

    #[test]
    fn read_over_write_hit_and_miss() {
        let (mut a, f) = setup();
        let m = a.var("m");
        let a10 = a.int(10);
        let a11 = a.int(11);
        let v = a.var("v");
        let m1 = a.upd(m, a10, v);
        // hit: sel (upd m 10 v) 10 == v
        let s_hit = a.sel(m1, a10);
        let pv = norm_int(&mut a, &f, v);
        assert_eq!(norm_int(&mut a, &f, s_hit), pv);
        // miss: sel (upd m 10 v) 11 == sel m 11
        let s_miss = a.sel(m1, a11);
        let s_base = a.sel(m, a11);
        assert_eq!(norm_int(&mut a, &f, s_miss), norm_int(&mut a, &f, s_base));
    }

    #[test]
    fn read_over_write_unknown_aliasing_is_residual_but_canonical() {
        let (mut a, f) = setup();
        let m = a.var("m");
        let i = a.var("i");
        let j = a.var("j");
        let v = a.var("v");
        let m1 = a.upd(m, i, v);
        let s = a.sel(m1, j); // i vs j unknown
        let p1 = norm_int(&mut a, &f, s);
        assert!(p1.as_constant().is_none());
        // same term again → identical normal form
        let m1b = a.upd(m, i, v);
        let sb = a.sel(m1b, j);
        assert_eq!(p1, norm_int(&mut a, &f, sb));
    }

    #[test]
    fn write_supersedes_older_same_address() {
        let (mut a, f) = setup();
        let m = a.var("m");
        let i = a.var("i");
        let v1 = a.int(1);
        let v2 = a.int(2);
        let u1 = a.upd(m, i, v1);
        let u2 = a.upd(u1, i, v2);
        let direct = a.upd(m, i, v2);
        let n1 = norm_mem(&mut a, &f, u2);
        let n2 = norm_mem(&mut a, &f, direct);
        assert_eq!(n1, n2);
    }

    #[test]
    fn distinct_writes_commute_canonically() {
        let (mut a, f) = setup();
        let m = a.var("m");
        let a1 = a.int(100);
        let a2 = a.int(200);
        let v1 = a.var("v1");
        let v2 = a.var("v2");
        let u12 = {
            let t = a.upd(m, a1, v1);
            a.upd(t, a2, v2)
        };
        let u21 = {
            let t = a.upd(m, a2, v2);
            a.upd(t, a1, v1)
        };
        assert_eq!(norm_mem(&mut a, &f, u12), norm_mem(&mut a, &f, u21));
    }

    #[test]
    fn reify_round_trips_through_norm() {
        let (mut a, f) = setup();
        let x = a.var("x");
        let y = a.var("y");
        let three = a.int(3);
        let xy = a.mul(x, y);
        let t = a.mul(three, xy);
        let e = a.add(t, x);
        let p = norm_int(&mut a, &f, e);
        let r = reify_poly(&mut a, &p);
        assert_eq!(norm_int(&mut a, &f, r), p);
    }

    #[test]
    fn subst_atom_expands_powers() {
        let (mut a, f) = setup();
        let x = a.var("x");
        let xx = a.mul(x, x);
        let p = norm_int(&mut a, &f, xx);
        // substitute x ↦ 3 ⇒ 9
        let got = p.subst_atom(x, &Poly::constant(3));
        assert_eq!(got.as_constant(), Some(9));
    }
}
