//! Interval pre-solver: a cheap abstract domain consulted *before*
//! polynomial normalization and Fourier–Motzkin (DESIGN.md §13).
//!
//! Each query first evaluates the raw expression tree over per-atom
//! intervals derived from the [`crate::Facts`] set (unit-coefficient
//! single-atom `≥ 0` facts and constant solved equalities). When the
//! abstract value already decides the query, normalization and FM are
//! skipped entirely; otherwise the solver falls through unchanged.
//!
//! # Verdict transparency
//!
//! The layer must never change a verdict, only short-circuit its
//! computation, so every answer is backed by a certificate the fallback
//! path would also find:
//!
//! * **TRUE answers** (`lo ≥ 0`, disjointness, point equality) follow from
//!   a non-negative linear combination of a *subset* of the constraints FM
//!   sees, so ℚ-complete FM refutation with the superset also proves them.
//!   Only unit-coefficient bounds are absorbed (a rounded `2a ≥ 1 ⇒ a ≥ 1`
//!   is ℤ-sound but not ℚ-derivable, and would out-prove FM).
//! * **FALSE answers** are confined to *rigid* constants — values the
//!   normalizer itself folds to the same constant — where the fallback's
//!   own constant check gives the identical verdict.
//! * Multiplication of two non-constant intervals yields ⊤, mirroring FM's
//!   treatment of nonlinear monomials as opaque variables; a constant
//!   operand must be **rigid** (syntactic or solved-substitution constant)
//!   before it scales the other side, because only then does the
//!   normalizer see a linear polynomial.
//! * Any `i64` overflow during evaluation declines the whole query: the
//!   machine wraps where the fact language is ideal, so an out-of-range
//!   intermediate invalidates the certificate.
//! * An inconsistent environment (some atom's `lo > hi`) declines rather
//!   than answering ex falso; FM finds the contradiction itself.
//!
//! The env/runtime knob (`TALFT_ENTAIL_INTERVAL`, [`set_entail_interval`])
//! mirrors the entailment-cache knob so differential tests can prove the
//! on/off verdict identity (`tests/interval_prop.rs`).

use std::sync::atomic::{AtomicU8, Ordering};

use talft_obs::LazyCounter;

use crate::expr::{BinOp, ExprArena, ExprId, ExprNode};

/// Interval-layer metrics (DESIGN.md §Observability). The invariant
/// `hit + miss == queries` is validated by `perfreport --check`.
static IV_QUERIES: LazyCounter = LazyCounter::new("logic.interval.queries");
static IV_HIT: LazyCounter = LazyCounter::new("logic.interval.hit");
static IV_MISS: LazyCounter = LazyCounter::new("logic.interval.miss");
static IV_NARROWED: LazyCounter = LazyCounter::new("logic.interval.narrowed");

/// Runtime switch for the interval layer: 0 = unset (consult the
/// `TALFT_ENTAIL_INTERVAL` environment variable on first query), 1 = on,
/// 2 = off.
static INTERVAL_MODE: AtomicU8 = AtomicU8::new(0);

/// Whether the interval pre-solver is active. Defaults to **on**; the
/// `TALFT_ENTAIL_INTERVAL` environment variable (`0`/`off`/`false`
/// disables) sets the initial state, and [`set_entail_interval`] overrides
/// it at runtime.
#[must_use]
pub fn entail_interval_enabled() -> bool {
    match INTERVAL_MODE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = std::env::var("TALFT_ENTAIL_INTERVAL")
                .map_or(true, |v| !matches!(v.trim(), "0" | "off" | "false"));
            INTERVAL_MODE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Force the interval pre-solver on or off process-wide (overrides
/// `TALFT_ENTAIL_INTERVAL`). The layer is verdict-transparent — this knob
/// exists for differential testing and perf measurement, not correctness.
pub fn set_entail_interval(on: bool) {
    INTERVAL_MODE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Raw mode byte, for test guards that must restore ambient state.
#[cfg(test)]
pub(crate) fn mode_raw() -> u8 {
    INTERVAL_MODE.load(Ordering::Relaxed)
}

/// Restore a previously read raw mode byte (test guards only).
#[cfg(test)]
pub(crate) fn restore_mode(m: u8) {
    INTERVAL_MODE.store(m, Ordering::Relaxed);
}

/// Record one interval-layer consultation. `narrowed` marks near-misses:
/// the abstract value gained at least one finite endpoint yet did not
/// decide the query.
pub(crate) fn note_consult(hit: bool, narrowed: bool) {
    IV_QUERIES.inc();
    if hit {
        IV_HIT.inc();
    } else {
        IV_MISS.inc();
        if narrowed {
            IV_NARROWED.inc();
        }
    }
}

/// A (possibly half-open) integer interval. `None` endpoints are unbounded.
/// `rigid` marks a point interval whose value the polynomial normalizer
/// would itself fold to the same constant (syntactic constants and
/// constant solved-substitutions) — the only intervals allowed to scale a
/// multiplication or constant-fold an opaque operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Itv {
    pub(crate) lo: Option<i64>,
    pub(crate) hi: Option<i64>,
    pub(crate) rigid: bool,
}

impl Itv {
    pub(crate) const TOP: Itv = Itv {
        lo: None,
        hi: None,
        rigid: false,
    };

    pub(crate) fn rigid_point(n: i64) -> Itv {
        Itv {
            lo: Some(n),
            hi: Some(n),
            rigid: true,
        }
    }

    fn bounds(lo: Option<i64>, hi: Option<i64>) -> Itv {
        Itv {
            lo,
            hi,
            rigid: false,
        }
    }

    /// The value as a point interval, rigid or not.
    pub(crate) fn as_point(&self) -> Option<i64> {
        match (self.lo, self.hi) {
            (Some(a), Some(b)) if a == b => Some(a),
            _ => None,
        }
    }

    /// `self + other`; `None` on overflow (the query must be declined, not
    /// loosened: an out-of-range intermediate may wrap on the machine).
    fn add(&self, other: &Itv) -> Option<Itv> {
        Some(Itv {
            lo: add_end(self.lo, other.lo)?,
            hi: add_end(self.hi, other.hi)?,
            rigid: self.rigid && other.rigid,
        })
    }

    /// `-self`; `None` on overflow.
    fn neg(&self) -> Option<Itv> {
        let flip = |e: Option<i64>| -> Option<Option<i64>> {
            match e {
                None => Some(None),
                Some(v) => v.checked_neg().map(Some),
            }
        };
        Some(Itv {
            lo: flip(self.hi)?,
            hi: flip(self.lo)?,
            rigid: self.rigid,
        })
    }

    fn sub(&self, other: &Itv) -> Option<Itv> {
        self.add(&other.neg()?)
    }

    /// Scale by a rigid constant; `None` on overflow.
    fn mul_const(&self, c: i64) -> Option<Itv> {
        if c == 0 {
            return Some(Itv::rigid_point(0));
        }
        let scale = |e: Option<i64>| -> Option<Option<i64>> {
            match e {
                None => Some(None),
                Some(v) => v.checked_mul(c).map(Some),
            }
        };
        let (lo, hi) = if c > 0 {
            (scale(self.lo)?, scale(self.hi)?)
        } else {
            (scale(self.hi)?, scale(self.lo)?)
        };
        Some(Itv {
            lo,
            hi,
            rigid: self.rigid,
        })
    }

    /// Intersect with `[lo, hi]`; `None` when the result is empty (the
    /// hypotheses contradict the shape bound — decline, never ex falso).
    fn meet(&self, lo: i64, hi: i64) -> Option<Itv> {
        let nlo = self.lo.map_or(lo, |v| v.max(lo));
        let nhi = self.hi.map_or(hi, |v| v.min(hi));
        if nlo > nhi {
            return None;
        }
        Some(Itv {
            lo: Some(nlo),
            hi: Some(nhi),
            rigid: self.rigid,
        })
    }

    /// Whether either endpoint is finite (the domain narrowed something).
    pub(crate) fn is_narrowed(&self) -> bool {
        self.lo.is_some() || self.hi.is_some()
    }
}

fn add_end(a: Option<i64>, b: Option<i64>) -> Option<Option<i64>> {
    match (a, b) {
        (Some(x), Some(y)) => x.checked_add(y).map(Some),
        _ => Some(None),
    }
}

/// Per-atom interval environment derived from a fact set.
///
/// Built by `Facts::interval_env`; holds constant solved-substitutions
/// (rigid points), atoms solved to non-constants (forced to ⊤ so the tree
/// walk cannot use stale bounds), and unit-coefficient `≥ 0` bounds.
#[derive(Debug, Default)]
pub(crate) struct IntervalEnv {
    /// Atoms solved to a constant: the normalizer substitutes the same value.
    rigid: Vec<(ExprId, i64)>,
    /// Atoms solved to a non-constant polynomial: must evaluate to ⊤.
    opaque: Vec<ExprId>,
    /// `atom ∈ [lo, hi]` from unit-coefficient single-atom `ges` facts.
    bounds: Vec<(ExprId, Option<i64>, Option<i64>)>,
    /// Some unit bound pair was contradictory (`lo > hi`): the whole
    /// environment declines (FM reports ex falso itself).
    pub(crate) inconsistent: bool,
}

impl IntervalEnv {
    /// Record `atom = c` from a constant solved equality.
    pub(crate) fn set_rigid(&mut self, atom: ExprId, c: i64) {
        self.rigid.push((atom, c));
    }

    /// Record that `atom` is substituted away by a non-constant equality.
    pub(crate) fn set_opaque(&mut self, atom: ExprId) {
        self.opaque.push(atom);
    }

    /// Tighten `atom ≥ lo` or `atom ≤ hi` from a unit-coefficient fact.
    pub(crate) fn tighten(&mut self, atom: ExprId, lo: Option<i64>, hi: Option<i64>) {
        for (a, l, h) in &mut self.bounds {
            if *a == atom {
                if let Some(lo) = lo {
                    *l = Some(l.map_or(lo, |v| v.max(lo)));
                }
                if let Some(hi) = hi {
                    *h = Some(h.map_or(hi, |v| v.min(hi)));
                }
                if let (Some(l), Some(h)) = (*l, *h) {
                    if l > h {
                        self.inconsistent = true;
                    }
                }
                return;
            }
        }
        self.bounds.push((atom, lo, hi));
    }

    fn lookup_atom(&self, atom: ExprId) -> Itv {
        for &(a, c) in &self.rigid {
            if a == atom {
                return Itv::rigid_point(c);
            }
        }
        if self.opaque.contains(&atom) {
            return Itv::TOP;
        }
        for &(a, lo, hi) in &self.bounds {
            if a == atom {
                return Itv::bounds(lo, hi);
            }
        }
        Itv::TOP
    }

    /// Whether the solved-substitution rewrites this atom away.
    fn is_substituted(&self, atom: ExprId) -> bool {
        self.rigid.iter().any(|&(a, _)| a == atom) || self.opaque.contains(&atom)
    }
}

/// Whether an opaque operator's operand survives normalization unchanged:
/// an integer literal or a variable the solved-substitution leaves alone.
/// Only then is the raw tree node its own canonical atom, making env
/// lookups on it transparent (facts were normalized at `assume` time, so
/// their atoms are always canonical ids).
fn operand_is_canonical(arena: &ExprArena, env: &IntervalEnv, e: ExprId) -> bool {
    match arena.node(e) {
        ExprNode::Int(_) => true,
        ExprNode::Var(_) => !env.is_substituted(e),
        _ => false,
    }
}

/// Evaluate an expression tree to an interval. `implicit` enables the
/// shape bounds (`slt ∈ [0,1]`, `x & m ∈ [0,m]`) and must match whether
/// the fallback FM path passes the arena (`prove_ge0`/`prove_neq` do;
/// the `prove_eq` path does not — see `Facts::poly_provably_zero`).
///
/// Returns `None` when the query must be declined (overflow or an
/// inconsistent meet).
pub(crate) fn eval_tree(
    arena: &ExprArena,
    env: &IntervalEnv,
    implicit: bool,
    e: ExprId,
) -> Option<Itv> {
    if env.inconsistent {
        return None;
    }
    match arena.node(e) {
        ExprNode::Int(n) => Some(Itv::rigid_point(n)),
        ExprNode::Var(_) => Some(env.lookup_atom(e)),
        ExprNode::Bin(op, a, b) => {
            let ia = eval_tree(arena, env, implicit, a)?;
            let ib = eval_tree(arena, env, implicit, b)?;
            match op {
                BinOp::Add => ia.add(&ib),
                BinOp::Sub => ia.sub(&ib),
                BinOp::Mul => {
                    // A rigid constant scales the other side (the
                    // normalizer sees the same linear polynomial); two
                    // non-rigid operands form a nonlinear monomial FM
                    // treats as opaque, so ⊤ is the transparent answer.
                    if ia.rigid {
                        ib.mul_const(ia.as_point().expect("rigid is a point"))
                    } else if ib.rigid {
                        ia.mul_const(ib.as_point().expect("rigid is a point"))
                    } else {
                        Some(Itv::TOP)
                    }
                }
                _ => {
                    // Opaque operator: fold only rigid constants (exactly
                    // when the normalizer folds). Otherwise the node is a
                    // residual atom: when it is provably its own canonical
                    // form, fact bounds on it apply directly; the shape
                    // bounds the FM path would add come on top.
                    if ia.rigid && ib.rigid {
                        let (ca, cb) = (ia.as_point().unwrap(), ib.as_point().unwrap());
                        return Some(Itv::rigid_point(op.eval(ca, cb)));
                    }
                    let base = if operand_is_canonical(arena, env, a)
                        && operand_is_canonical(arena, env, b)
                    {
                        env.lookup_atom(e)
                    } else {
                        Itv::TOP
                    };
                    if !implicit {
                        return Some(base);
                    }
                    match op {
                        BinOp::Slt => base.meet(0, 1),
                        BinOp::And => {
                            let mask = |e: ExprId| match arena.node(e) {
                                ExprNode::Int(n) if n >= 0 => Some(n),
                                _ => None,
                            };
                            match (mask(a), mask(b)) {
                                (Some(x), Some(y)) => base.meet(0, x.min(y)),
                                (Some(x), None) | (None, Some(x)) => base.meet(0, x),
                                (None, None) => Some(base),
                            }
                        }
                        _ => Some(base),
                    }
                }
            }
        }
        // `sel` may rewrite under read-over-write during normalization;
        // any bound the tree id happens to carry could be attached to a
        // different residual, so stay at ⊤.
        ExprNode::Sel(..) | ExprNode::Emp | ExprNode::Upd(..) => Some(Itv::TOP),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_overflow() {
        let p = Itv::rigid_point(3);
        let q = Itv::bounds(Some(0), Some(7));
        let s = p.add(&q).unwrap();
        assert_eq!((s.lo, s.hi, s.rigid), (Some(3), Some(10), false));
        let d = q.sub(&p).unwrap();
        assert_eq!((d.lo, d.hi), (Some(-3), Some(4)));
        let m = q.mul_const(-2).unwrap();
        assert_eq!((m.lo, m.hi), (Some(-14), Some(0)));
        // Overflow declines instead of loosening.
        let big = Itv::rigid_point(i64::MAX);
        assert!(big.add(&p).is_none());
        assert!(Itv::rigid_point(i64::MIN).neg().is_none());
    }

    #[test]
    fn meet_detects_empty() {
        let b = Itv::bounds(Some(5), None);
        assert!(b.meet(0, 1).is_none(), "x ≥ 5 ∧ x ∈ [0,1] is empty");
        let ok = b.meet(0, 9).unwrap();
        assert_eq!((ok.lo, ok.hi), (Some(5), Some(9)));
    }

    #[test]
    fn env_tighten_and_inconsistency() {
        let mut arena = ExprArena::new();
        let x = arena.var("x");
        let mut env = IntervalEnv::default();
        env.tighten(x, Some(2), None);
        env.tighten(x, None, Some(10));
        let itv = env.lookup_atom(x);
        assert_eq!((itv.lo, itv.hi), (Some(2), Some(10)));
        env.tighten(x, Some(11), None);
        assert!(env.inconsistent);
    }

    #[test]
    fn tree_eval_uses_bounds_and_shape() {
        let mut arena = ExprArena::new();
        let x = arena.var("x");
        let seven = arena.int(7);
        let masked = arena.bin(BinOp::And, x, seven);
        let base = arena.int(100);
        let addr = arena.add(base, masked);
        let env = IntervalEnv::default();
        let itv = eval_tree(&arena, &env, true, addr).unwrap();
        assert_eq!((itv.lo, itv.hi), (Some(100), Some(107)));
        // Without implicit bounds the masked atom is ⊤.
        let plain = eval_tree(&arena, &env, false, addr).unwrap();
        assert_eq!((plain.lo, plain.hi), (None, None));
    }

    #[test]
    fn nonlinear_product_is_top_but_rigid_scales() {
        let mut arena = ExprArena::new();
        let x = arena.var("x");
        let y = arena.var("y");
        let mut env = IntervalEnv::default();
        env.tighten(x, Some(1), Some(2));
        env.tighten(y, Some(1), Some(2));
        let xy = arena.mul(x, y);
        let itv = eval_tree(&arena, &env, true, xy).unwrap();
        assert_eq!((itv.lo, itv.hi), (None, None), "nonlinear must stay ⊤");
        let three = arena.int(3);
        let tx = arena.mul(three, x);
        let itv = eval_tree(&arena, &env, true, tx).unwrap();
        assert_eq!((itv.lo, itv.hi), (Some(3), Some(6)));
    }

    #[test]
    fn squeezed_point_is_not_rigid_so_opaque_ops_do_not_fold() {
        let mut arena = ExprArena::new();
        let x = arena.var("x");
        let five = arena.int(5);
        let mut env = IntervalEnv::default();
        env.tighten(x, Some(3), Some(3)); // point via ges squeeze, not solved
        let lt = arena.bin(BinOp::Slt, x, five);
        let itv = eval_tree(&arena, &env, true, lt).unwrap();
        // Folding slt(3,5)=1 here would out-prove FM (the opaque atom only
        // has its [0,1] shape bound); the walk must keep the shape bound.
        assert_eq!((itv.lo, itv.hi), (Some(0), Some(1)));
        assert!(!itv.rigid);
    }

    #[test]
    fn rigid_constants_fold_opaque_ops() {
        let mut arena = ExprArena::new();
        let x = arena.var("x");
        let five = arena.int(5);
        let mut env = IntervalEnv::default();
        env.set_rigid(x, 3); // constant solved equality: normalizer folds too
        let lt = arena.bin(BinOp::Slt, x, five);
        let itv = eval_tree(&arena, &env, true, lt).unwrap();
        assert_eq!(itv.as_point(), Some(1));
        assert!(itv.rigid);
    }
}
