//! The mutation-operator catalog: semantic transformations over well-typed
//! TAL_FT programs, each modeling a realistic *protection* bug — the §2.2
//! class where a post-duplication optimization (or a plain compiler defect)
//! silently weakens fault coverage while leaving fault-free behavior intact.
//!
//! Operators are keyed to the four principles of §2.3:
//!
//! * **P1** (type safety of the underlying computation) — structural damage
//!   such as deleting an arm of the duplicated computation;
//! * **P2** (color separation) — miscoloring an operand so one physical
//!   value feeds both redundant streams;
//! * **P3** (dual-color sign-off on dangerous actions) — skipping the blue
//!   compare half of a store pair or control-transfer pair;
//! * **P4** (green/blue value agreement via singleton types) —
//!   desynchronizing the two copies of a constant.
//!
//! Every operator produces mutants that *differ* from their input program
//! (enforced structurally), and each is exercised by the productivity test
//! in `tests/productivity.rs` so the catalog cannot silently rot.

use talft_isa::{CVal, CodeTy, Color, Instr, OpSrc, Program};
use talft_logic::{ExprArena, Kind};

/// One semantic mutation operator (see module docs for the P1–P4 mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MutationOp {
    /// Delete a `stG`: the enqueue half of a store pair vanishes (P3 — the
    /// later `stB` has nothing to compare against).
    DropGreenStore,
    /// Delete a `stB`: the store pair's compare-and-commit half vanishes
    /// (P3 — the dangerous action loses its blue sign-off).
    DropBlueStore,
    /// Delete a `bzB`/`jmpB`: the control transfer loses its blue
    /// commit half (P3).
    DropBlueControl,
    /// Delete a green compute instruction (`mov`/`op`/`ldG`): one arm of
    /// the duplicated computation is gone (P1/P2 — lost redundancy).
    DropGreenArm,
    /// Flip the color of an ALU immediate operand (P2 — a green value flows
    /// into the blue stream or vice versa).
    MiscolorOperand,
    /// Bump a blue constant by one so the green and blue copies disagree
    /// (P4 — the singleton types can no longer prove equality).
    DesyncValue,
    /// Rewrite a `stB` to reuse the registers of its matching `stG` — the
    /// paper's §2.2 common-subexpression-elimination bug verbatim (P2).
    SameRegStorePair,
    /// Swap address and value registers of a store (wrong-operand bug).
    SwapStoreOperands,
    /// Flip a store's color: `stG`↔`stB` (queue protocol inverted, P3).
    StoreColorFlip,
    /// Repoint a blue code-label constant at a different block (P4 — the
    /// green and blue halves of a transfer now disagree on the target).
    RedirectBlueTarget,
    /// Insert a block boundary between a store pair's halves: a trivial
    /// precondition lands right before the `stB`, so the pair spans blocks
    /// (the layout invariant the compiler maintains and the checker's
    /// transfer rule must enforce).
    SplitStorePair,
    /// Swap a `bzB` with its fall-through successor — unsafe code motion
    /// hoisting an instruction across the branch commit point.
    ReorderBzFall,
}

impl MutationOp {
    /// Every operator in the catalog.
    pub const ALL: [MutationOp; 12] = [
        MutationOp::DropGreenStore,
        MutationOp::DropBlueStore,
        MutationOp::DropBlueControl,
        MutationOp::DropGreenArm,
        MutationOp::MiscolorOperand,
        MutationOp::DesyncValue,
        MutationOp::SameRegStorePair,
        MutationOp::SwapStoreOperands,
        MutationOp::StoreColorFlip,
        MutationOp::RedirectBlueTarget,
        MutationOp::SplitStorePair,
        MutationOp::ReorderBzFall,
    ];

    /// Short stable name (table rows, CLI).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MutationOp::DropGreenStore => "drop-stG",
            MutationOp::DropBlueStore => "drop-stB",
            MutationOp::DropBlueControl => "drop-blue-control",
            MutationOp::DropGreenArm => "drop-green-arm",
            MutationOp::MiscolorOperand => "miscolor-operand",
            MutationOp::DesyncValue => "desync-value",
            MutationOp::SameRegStorePair => "same-reg-store-pair",
            MutationOp::SwapStoreOperands => "swap-store-operands",
            MutationOp::StoreColorFlip => "store-color-flip",
            MutationOp::RedirectBlueTarget => "redirect-blue-target",
            MutationOp::SplitStorePair => "split-store-pair",
            MutationOp::ReorderBzFall => "reorder-bz-fall",
        }
    }

    /// Which of the paper's §2.3 principles the operator attacks.
    #[must_use]
    pub fn principle(self) -> &'static str {
        match self {
            MutationOp::DropGreenStore
            | MutationOp::DropBlueStore
            | MutationOp::DropBlueControl
            | MutationOp::StoreColorFlip => "P3",
            MutationOp::DropGreenArm | MutationOp::SwapStoreOperands => "P1",
            MutationOp::MiscolorOperand | MutationOp::SameRegStorePair => "P2",
            MutationOp::DesyncValue | MutationOp::RedirectBlueTarget => "P4",
            MutationOp::SplitStorePair | MutationOp::ReorderBzFall => "layout",
        }
    }

    /// Apply the operator at every applicable site of `p`, returning one
    /// mutant per site. `arena` is the program's expression arena; it is
    /// only extended (hash-consed), never rewritten, so one arena serves
    /// the original and all its mutants.
    #[must_use]
    pub fn apply(self, p: &Program, arena: &mut ExprArena) -> Vec<Mutant> {
        let mut out = Vec::new();
        for addr in 1..=(p.instrs.len() as i64) {
            let i = (addr - 1) as usize;
            let instr = p.instrs[i];
            let mutated: Option<(Program, String)> = match self {
                MutationOp::DropGreenStore => match instr {
                    Instr::St {
                        color: Color::Green,
                        ..
                    } => Some((delete_instr(p, addr), format!("deleted `{instr}`"))),
                    _ => None,
                },
                MutationOp::DropBlueStore => match instr {
                    Instr::St {
                        color: Color::Blue, ..
                    } => Some((delete_instr(p, addr), format!("deleted `{instr}`"))),
                    _ => None,
                },
                MutationOp::DropBlueControl => match instr {
                    Instr::Bz {
                        color: Color::Blue, ..
                    }
                    | Instr::Jmp {
                        color: Color::Blue, ..
                    } => Some((delete_instr(p, addr), format!("deleted `{instr}`"))),
                    _ => None,
                },
                MutationOp::DropGreenArm => match instr {
                    Instr::St { .. } => None,
                    _ if instr.color() == Some(Color::Green) && !instr.is_control() => {
                        Some((delete_instr(p, addr), format!("deleted `{instr}`")))
                    }
                    _ => None,
                },
                MutationOp::MiscolorOperand => match instr {
                    Instr::Op {
                        op,
                        rd,
                        rs,
                        src2: OpSrc::Imm(v),
                    } => {
                        let mut q = p.clone();
                        q.instrs[i] = Instr::Op {
                            op,
                            rd,
                            rs,
                            src2: OpSrc::Imm(CVal::new(v.color.other(), v.val)),
                        };
                        Some((q, format!("recolored immediate of `{instr}`")))
                    }
                    _ => None,
                },
                MutationOp::DesyncValue => match instr {
                    Instr::Mov { rd, v }
                        if v.color == Color::Blue && !p.preconds.contains_key(&v.val) =>
                    {
                        let mut q = p.clone();
                        q.instrs[i] = Instr::Mov {
                            rd,
                            v: CVal::new(v.color, v.val.wrapping_add(1)),
                        };
                        Some((q, format!("`{instr}` value bumped")))
                    }
                    Instr::Op {
                        op,
                        rd,
                        rs,
                        src2: OpSrc::Imm(v),
                    } if v.color == Color::Blue && !p.preconds.contains_key(&v.val) => {
                        let mut q = p.clone();
                        q.instrs[i] = Instr::Op {
                            op,
                            rd,
                            rs,
                            src2: OpSrc::Imm(CVal::new(v.color, v.val.wrapping_add(1))),
                        };
                        Some((q, format!("`{instr}` immediate bumped")))
                    }
                    _ => None,
                },
                MutationOp::SameRegStorePair => match instr {
                    Instr::St {
                        color: Color::Blue,
                        rd,
                        rs,
                    } => matching_green_store(p, i).and_then(|(gd, gs)| {
                        if (gd, gs) == (rd, rs) {
                            return None;
                        }
                        let mut q = p.clone();
                        q.instrs[i] = Instr::St {
                            color: Color::Blue,
                            rd: gd,
                            rs: gs,
                        };
                        Some((q, format!("`{instr}` now reuses the stG registers")))
                    }),
                    _ => None,
                },
                MutationOp::SwapStoreOperands => match instr {
                    Instr::St { color, rd, rs } if rd != rs => {
                        let mut q = p.clone();
                        q.instrs[i] = Instr::St {
                            color,
                            rd: rs,
                            rs: rd,
                        };
                        Some((q, format!("swapped operands of `{instr}`")))
                    }
                    _ => None,
                },
                MutationOp::StoreColorFlip => match instr {
                    Instr::St { color, rd, rs } => {
                        let mut q = p.clone();
                        q.instrs[i] = Instr::St {
                            color: color.other(),
                            rd,
                            rs,
                        };
                        Some((q, format!("flipped color of `{instr}`")))
                    }
                    _ => None,
                },
                MutationOp::RedirectBlueTarget => match instr {
                    Instr::Mov { rd, v }
                        if v.color == Color::Blue && p.preconds.contains_key(&v.val) =>
                    {
                        next_precond_addr(p, v.val).map(|next| {
                            let mut q = p.clone();
                            q.instrs[i] = Instr::Mov {
                                rd,
                                v: CVal::new(Color::Blue, next),
                            };
                            (q, format!("blue target {} repointed to {}", v.val, next))
                        })
                    }
                    _ => None,
                },
                MutationOp::SplitStorePair => match instr {
                    Instr::St {
                        color: Color::Blue, ..
                    } if !p.preconds.contains_key(&addr) => {
                        let mut q = p.clone();
                        q.preconds.insert(addr, trivial_precond(arena));
                        q.labels.insert(format!("__split_{addr}"), addr);
                        Some((q, format!("block boundary inserted before `{instr}`")))
                    }
                    _ => None,
                },
                MutationOp::ReorderBzFall => match instr {
                    Instr::Bz {
                        color: Color::Blue, ..
                    } if p.is_code_addr(addr + 1) => {
                        let mut q = p.clone();
                        q.instrs.swap(i, i + 1);
                        Some((q, format!("hoisted `{}` above `{instr}`", p.instrs[i + 1])))
                    }
                    _ => None,
                },
            };
            if let Some((program, detail)) = mutated {
                if program != *p {
                    out.push(Mutant {
                        op: self,
                        addr,
                        detail,
                        program,
                    });
                }
            }
        }
        out
    }
}

/// One mutated program plus provenance (operator, site, human note).
#[derive(Debug, Clone)]
pub struct Mutant {
    /// The operator that produced this mutant.
    pub op: MutationOp,
    /// Code address of the mutated site in the *original* program.
    pub addr: i64,
    /// Human-readable description of the edit.
    pub detail: String,
    /// The mutated program (shares the original's expression arena).
    pub program: Program,
}

/// Delete the instruction at `addr` (1-based), shifting every later code
/// address down by one: labels, preconditions, the entry point, and —
/// crucially — *code-label immediates* (constants whose value names a block
/// start in the original program). Without the immediate remap a deletion
/// would break every branch target after the site, and the checker would be
/// rejecting address arithmetic rather than the lost protection.
fn delete_instr(p: &Program, addr: i64) -> Program {
    let shift = |a: i64| if a > addr { a - 1 } else { a };
    let mut q = p.clone();
    q.instrs.remove((addr - 1) as usize);
    q.labels = p
        .labels
        .iter()
        .map(|(n, &a)| (n.clone(), shift(a)))
        .collect();
    q.preconds = p
        .preconds
        .iter()
        .map(|(&a, t)| (shift(a), t.clone()))
        .collect();
    q.entry = shift(p.entry);
    for ins in &mut q.instrs {
        match ins {
            Instr::Mov { v, .. }
            | Instr::Op {
                src2: OpSrc::Imm(v),
                ..
            } if p.preconds.contains_key(&v.val) => v.val = shift(v.val),
            _ => {}
        }
    }
    q
}

/// The most recent `stG` before instruction index `i` within the same
/// block (no intervening control, no crossing above the block's label).
fn matching_green_store(p: &Program, i: usize) -> Option<(talft_isa::Gpr, talft_isa::Gpr)> {
    let mut j = i;
    while j > 0 {
        let prev = p.instrs[j - 1];
        if prev.is_control() {
            return None;
        }
        if let Instr::St {
            color: Color::Green,
            rd,
            rs,
        } = prev
        {
            return Some((rd, rs));
        }
        if p.preconds.contains_key(&(j as i64)) {
            return None; // reached the block's start without finding a stG
        }
        j -= 1;
    }
    None
}

/// The next annotated block address after `cur` (cyclically), if distinct.
fn next_precond_addr(p: &Program, cur: i64) -> Option<i64> {
    let keys: Vec<i64> = p.preconds.keys().copied().collect();
    let pos = keys.iter().position(|&k| k == cur)?;
    let next = keys[(pos + 1) % keys.len()];
    (next != cur).then_some(next)
}

/// `forall m:mem; mem: m;` — the weakest honest precondition: no register
/// typing, empty static queue. Inserting it mid-pair forces the checker to
/// confront a store pair spanning a block boundary.
fn trivial_precond(arena: &mut ExprArena) -> CodeTy {
    let m = arena.fresh_var("mem");
    let me = arena.var_expr(m);
    CodeTy {
        delta: vec![(m, Kind::Mem)],
        facts: vec![],
        regs: talft_isa::RegFileTy::new(),
        queue: vec![],
        mem: me,
    }
}

/// All mutants of every operator, in catalog order.
#[must_use]
pub fn all_mutants(p: &Program, arena: &mut ExprArena) -> Vec<Mutant> {
    MutationOp::ALL
        .iter()
        .flat_map(|op| op.apply(p, arena))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use talft_isa::Gpr;

    /// mov r1, G2; mov r2, B2; jmpG..jmpB shaped dummy — enough structure
    /// to exercise the deletion/remap helper without a full compile.
    fn toy() -> Program {
        let mut preconds = BTreeMap::new();
        let mut arena = ExprArena::default();
        preconds.insert(1, trivial_precond(&mut arena));
        preconds.insert(3, trivial_precond(&mut arena));
        let mut labels = BTreeMap::new();
        labels.insert("main".into(), 1);
        labels.insert("next".into(), 3);
        Program {
            instrs: vec![
                Instr::Mov {
                    rd: Gpr(1),
                    v: CVal::green(3), // code label: points at `next`
                },
                Instr::Mov {
                    rd: Gpr(2),
                    v: CVal::blue(3), // code label too
                },
                Instr::Halt,
            ],
            labels,
            preconds,
            regions: vec![],
            num_gprs: 8,
            entry: 1,
        }
    }

    #[test]
    fn delete_shifts_labels_preconds_and_label_immediates() {
        let p = toy();
        let q = delete_instr(&p, 2);
        assert_eq!(q.instrs.len(), 2);
        assert_eq!(q.labels["next"], 2);
        assert!(q.preconds.contains_key(&2));
        assert!(!q.preconds.contains_key(&3));
        // the remaining mov's label immediate followed the block
        assert_eq!(
            q.instrs[0],
            Instr::Mov {
                rd: Gpr(1),
                v: CVal::green(2)
            }
        );
        assert_eq!(q.entry, 1);
    }

    #[test]
    fn delete_before_site_leaves_earlier_addresses_alone() {
        let p = toy();
        let q = delete_instr(&p, 3);
        assert_eq!(q.labels["main"], 1);
        assert_eq!(q.labels["next"], 3); // at the site, not after it
        assert_eq!(
            q.instrs[0],
            Instr::Mov {
                rd: Gpr(1),
                v: CVal::green(3)
            }
        );
    }

    #[test]
    fn catalog_is_twelve_distinct_named_operators() {
        let mut names: Vec<&str> = MutationOp::ALL.iter().map(|o| o.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }
}
