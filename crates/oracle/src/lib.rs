//! Adversarial oracle for the TAL_FT checker (experiment E14).
//!
//! Every existing test exercises the *acceptance* side of the type system:
//! compiler output always checks, protected campaigns report zero SDC. This
//! crate probes the **rejection** side — the direction Theorems 1–4 actually
//! hinge on: start from a well-typed program, apply a catalog of semantic
//! [`MutationOp`]s each modeling a realistic protection bug, and run every
//! mutant through both `talft_core::check_program` *and* a `k = 1` fault
//! campaign. The campaign is ground truth; the checker is the device under
//! test. Three outcomes:
//!
//! * **killed by the checker** — the mutant is rejected; the type system
//!   caught the broken protection. The mutation *score* is the fraction of
//!   mutants killed statically (checker or lint).
//! * **killed by the lint engine** — the checker accepted, but a `TF0xx`
//!   error-severity lint (`talft_analysis::lint_program`) flagged the
//!   mutant. Still a static kill, tallied separately so E14 can report how
//!   much of the catalog the lightweight lints cover on their own.
//! * **killed by the campaign only** — the checker accepted a mutant that a
//!   single-upset campaign then drives to silent data corruption (or that
//!   cannot even complete its fault-free run). This is a checker soundness
//!   gap and a **hard failure**: the `mutation` bench bin and the CI smoke
//!   job exit nonzero on any occurrence.
//! * **equivalent** — accepted and still fault tolerant. Harmless by
//!   construction (the campaign over the mutant's own golden run is clean);
//!   EXPERIMENTS.md documents each equivalence class.

#![warn(missing_docs)]

pub mod ops;

use std::collections::BTreeMap;
use std::sync::Arc;

use talft_core::check_program;
use talft_faultsim::{golden_run, run_campaign_against, CampaignConfig};
use talft_isa::Program;
use talft_logic::ExprArena;
use talft_machine::Status;

pub use ops::{all_mutants, Mutant, MutationOp};

/// Oracle verdict for one mutant (see crate docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutantVerdict {
    /// `check_program` rejected the mutant — the intended outcome.
    KilledByChecker {
        /// The type error, verbatim.
        reason: String,
    },
    /// The checker accepted, but an error-severity `TF0xx` lint fired —
    /// a static kill by the second line of defense.
    KilledByLint {
        /// The first error diagnostic, verbatim.
        reason: String,
    },
    /// The checker accepted, but the campaign (or the fault-free run
    /// itself) demonstrates the protection is broken — a soundness gap.
    KilledByCampaignOnly {
        /// What the campaign found.
        reason: String,
    },
    /// Accepted and campaign-clean: a harmless equivalent mutant.
    Equivalent {
        /// Evidence of harmlessness (injection count of the clean sweep).
        note: String,
    },
}

impl MutantVerdict {
    /// Did the checker kill this mutant?
    #[must_use]
    pub fn killed_by_checker(&self) -> bool {
        matches!(self, MutantVerdict::KilledByChecker { .. })
    }

    /// Did the lint engine kill this mutant?
    #[must_use]
    pub fn killed_by_lint(&self) -> bool {
        matches!(self, MutantVerdict::KilledByLint { .. })
    }

    /// Is this the hard-failure class?
    #[must_use]
    pub fn killed_by_campaign_only(&self) -> bool {
        matches!(self, MutantVerdict::KilledByCampaignOnly { .. })
    }
}

/// One classified mutant.
#[derive(Debug, Clone)]
pub struct MutantOutcome {
    /// The operator that produced the mutant.
    pub op: MutationOp,
    /// Mutated code address (in the original program).
    pub addr: i64,
    /// Human-readable description of the edit.
    pub detail: String,
    /// The oracle's verdict.
    pub verdict: MutantVerdict,
}

/// Oracle configuration.
#[derive(Debug, Clone, Default)]
pub struct OracleConfig {
    /// Campaign settings used as ground truth for checker-accepted mutants
    /// (`stride` is scaled by `TALFT_STRIDE_SCALE` as everywhere else).
    pub campaign: CampaignConfig,
    /// Per-operator cap on mutants per program (`0` = unlimited). Capped
    /// selections are deterministic and evenly spread over the sites, so a
    /// capped run still samples every region of the program.
    pub max_mutants_per_op: usize,
}

/// Classify a single mutant program: checker first, then the `TF0xx`
/// lints, then the campaign as ground truth for whatever survives both
/// static passes.
#[must_use]
pub fn classify(mutant: &Program, arena: &mut ExprArena, cfg: &CampaignConfig) -> MutantVerdict {
    match check_program(mutant, arena) {
        Err(e) => MutantVerdict::KilledByChecker {
            reason: e.to_string(),
        },
        Ok(_) => {
            if let Some(d) = talft_analysis::lint_program(mutant)
                .into_iter()
                .find(|d| d.severity == talft_core::Severity::Error)
            {
                return MutantVerdict::KilledByLint {
                    reason: d.to_string(),
                };
            }
            let prog = Arc::new(mutant.clone());
            let golden = match golden_run(&prog, cfg) {
                Ok(g) => g,
                Err(e) => {
                    return MutantVerdict::KilledByCampaignOnly {
                        reason: format!("accepted, but the fault-free run failed: {e}"),
                    }
                }
            };
            if golden.status != Status::Halted {
                // Accepted programs must run clean fault-free (Corollary 3 /
                // progress) — an accepted crasher is as damning as SDC.
                return MutantVerdict::KilledByCampaignOnly {
                    reason: format!("accepted, but the fault-free run ends {:?}", golden.status),
                };
            }
            let rep = run_campaign_against(&prog, cfg, &golden);
            if rep.fault_tolerant() {
                MutantVerdict::Equivalent {
                    note: format!("campaign clean over {} injections", rep.total),
                }
            } else {
                MutantVerdict::KilledByCampaignOnly {
                    reason: format!(
                        "accepted, but campaign found {} SDC / {} other violations",
                        rep.sdc, rep.other_violations
                    ),
                }
            }
        }
    }
}

/// Run the full catalog against one well-typed program. The arena must be
/// the program's own (mutants only ever *extend* it, hash-consed, so one
/// arena soundly serves the original and every mutant).
#[must_use]
pub fn run_oracle(p: &Program, arena: &mut ExprArena, cfg: &OracleConfig) -> Vec<MutantOutcome> {
    let mut out = Vec::new();
    for op in MutationOp::ALL {
        let mutants = cap_select(op.apply(p, arena), cfg.max_mutants_per_op);
        for m in mutants {
            let verdict = classify(&m.program, arena, &cfg.campaign);
            out.push(MutantOutcome {
                op: m.op,
                addr: m.addr,
                detail: m.detail,
                verdict,
            });
        }
    }
    out
}

/// Deterministic, evenly spread selection of at most `cap` elements
/// (`cap == 0` keeps everything).
fn cap_select<T>(v: Vec<T>, cap: usize) -> Vec<T> {
    if cap == 0 || v.len() <= cap {
        return v;
    }
    let n = v.len();
    let mut picked = vec![false; n];
    for k in 0..cap {
        picked[k * n / cap] = true;
    }
    v.into_iter()
        .zip(picked)
        .filter_map(|(x, keep)| keep.then_some(x))
        .collect()
}

/// Per-operator tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpScore {
    /// Mutants generated (post-cap).
    pub total: u64,
    /// Rejected by `check_program`.
    pub killed_by_checker: u64,
    /// Accepted by the checker, killed by an error-severity lint.
    pub killed_by_lint: u64,
    /// Accepted but campaign-killed (soundness gap — must stay 0).
    pub killed_by_campaign_only: u64,
    /// Accepted and campaign-clean.
    pub equivalent: u64,
}

impl OpScore {
    /// Static mutation score for this operator — fraction of mutants
    /// killed by checker or lint (1.0 when no mutants).
    #[must_use]
    pub fn score(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        (self.killed_by_checker + self.killed_by_lint) as f64 / self.total as f64
    }

    /// Fold one outcome in.
    pub fn absorb(&mut self, v: &MutantVerdict) {
        self.total += 1;
        match v {
            MutantVerdict::KilledByChecker { .. } => self.killed_by_checker += 1,
            MutantVerdict::KilledByLint { .. } => self.killed_by_lint += 1,
            MutantVerdict::KilledByCampaignOnly { .. } => self.killed_by_campaign_only += 1,
            MutantVerdict::Equivalent { .. } => self.equivalent += 1,
        }
    }

    /// Merge another tally (for cross-kernel aggregation).
    pub fn merge(&mut self, other: &OpScore) {
        self.total += other.total;
        self.killed_by_checker += other.killed_by_checker;
        self.killed_by_lint += other.killed_by_lint;
        self.killed_by_campaign_only += other.killed_by_campaign_only;
        self.equivalent += other.equivalent;
    }
}

/// Aggregate outcomes per operator.
#[must_use]
pub fn score_by_op(outcomes: &[MutantOutcome]) -> BTreeMap<MutationOp, OpScore> {
    let mut m: BTreeMap<MutationOp, OpScore> = BTreeMap::new();
    for o in outcomes {
        m.entry(o.op).or_default().absorb(&o.verdict);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_select_even_spread() {
        let v: Vec<usize> = (0..10).collect();
        assert_eq!(cap_select(v.clone(), 0), v);
        assert_eq!(cap_select(v.clone(), 20), v);
        let picked = cap_select(v, 3);
        assert_eq!(picked, vec![0, 3, 6]);
    }

    #[test]
    fn op_score_arithmetic() {
        let mut s = OpScore::default();
        s.absorb(&MutantVerdict::KilledByChecker { reason: "x".into() });
        s.absorb(&MutantVerdict::Equivalent { note: "y".into() });
        assert_eq!(s.total, 2);
        assert!((s.score() - 0.5).abs() < 1e-12);
        let mut t = OpScore::default();
        t.merge(&s);
        t.merge(&s);
        assert_eq!(t.total, 4);
        assert_eq!(t.killed_by_checker, 2);
    }
}
