//! Satellite guard: every mutation operator must be *productive* — produce
//! at least one mutant differing from its input — on at least one suite
//! kernel. Without this, an operator whose pattern match silently stops
//! firing (say, after a compiler scheduling change) would rot into a no-op
//! and the E14 mutation score would quietly measure a smaller catalog.

use std::collections::BTreeMap;

use talft_compiler::{compile, CompileOptions};
use talft_oracle::MutationOp;
use talft_suite::{kernels, Scale};

#[test]
fn every_operator_is_productive_on_some_kernel() {
    let mut hits: BTreeMap<MutationOp, &'static str> = BTreeMap::new();
    for kernel in kernels(Scale::Tiny) {
        if hits.len() == MutationOp::ALL.len() {
            break;
        }
        let mut c = compile(&kernel.source, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
        for op in MutationOp::ALL {
            if hits.contains_key(&op) {
                continue;
            }
            let mutants = op.apply(&c.protected.program, &mut c.protected.arena);
            // `apply` already discards identity rewrites, so nonempty means
            // "differs from input".
            if !mutants.is_empty() {
                assert!(
                    mutants.iter().all(|m| m.program != *c.protected.program),
                    "{}: operator {} returned an identity mutant",
                    kernel.name,
                    op.name()
                );
                hits.insert(op, kernel.name);
            }
        }
    }
    let missing: Vec<&str> = MutationOp::ALL
        .iter()
        .filter(|op| !hits.contains_key(op))
        .map(|op| op.name())
        .collect();
    assert!(
        missing.is_empty(),
        "operators unproductive on every suite kernel: {missing:?}"
    );
}
