//! Differential smoke test over a subset of the suite: the checker must
//! kill the overwhelming majority of catalog mutants, and — the E14 hard
//! gate — **no** mutant may be killed by the campaign alone. The full
//! 18-kernel sweep lives in the `mutation` bench bin; this test keeps the
//! same invariants enforced under plain `cargo test`.

use talft_compiler::{compile, CompileOptions};
use talft_faultsim::CampaignConfig;
use talft_oracle::{run_oracle, score_by_op, MutantOutcome, OracleConfig};
use talft_suite::{kernels, Scale};

#[test]
fn checker_kills_catalog_mutants_and_never_trails_the_campaign() {
    let cfg = OracleConfig {
        campaign: CampaignConfig {
            stride: 23,
            mutations_per_site: 1,
            ..CampaignConfig::default()
        },
        max_mutants_per_op: 4,
    };
    let mut outcomes: Vec<(&'static str, MutantOutcome)> = Vec::new();
    for kernel in kernels(Scale::Tiny).iter().take(3) {
        let mut c = compile(&kernel.source, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
        for o in run_oracle(&c.protected.program, &mut c.protected.arena, &cfg) {
            outcomes.push((kernel.name, o));
        }
    }
    assert!(
        outcomes.len() >= 30,
        "too few mutants generated: {}",
        outcomes.len()
    );

    // Hard gate: a checker-accepted mutant with demonstrable k=1 SDC (or a
    // broken fault-free run) is a soundness hole in this reproduction.
    let gaps: Vec<String> = outcomes
        .iter()
        .filter(|(_, o)| o.verdict.killed_by_campaign_only())
        .map(|(k, o)| format!("{k} @{} {}: {:?}", o.addr, o.op.name(), o.verdict))
        .collect();
    assert!(gaps.is_empty(), "CHECKER SOUNDNESS GAP(S):\n{gaps:#?}");

    // Mutation score: the catalog models protection bugs, so the checker
    // should reject nearly everything (survivors are documented-equivalent).
    let flat: Vec<MutantOutcome> = outcomes.iter().map(|(_, o)| o.clone()).collect();
    let per_op = score_by_op(&flat);
    let total: u64 = per_op.values().map(|s| s.total).sum();
    let killed: u64 = per_op.values().map(|s| s.killed_by_checker).sum();
    let score = killed as f64 / total as f64;
    assert!(
        score >= 0.85,
        "mutation score {score:.3} too low on the smoke subset ({killed}/{total})"
    );
}
