//! Property test: random instruction streams survive the
//! print → assemble round-trip exactly.

use proptest::prelude::*;
use talft_isa::{assemble, print_program, CVal, Color, Gpr, Instr, OpSrc};
use talft_logic::BinOp;

fn color() -> impl Strategy<Value = Color> {
    prop_oneof![Just(Color::Green), Just(Color::Blue)]
}

fn gpr() -> impl Strategy<Value = Gpr> {
    (0u16..16).prop_map(Gpr)
}

fn instr() -> impl Strategy<Value = Instr> {
    let binop = prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Slt),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
    ];
    prop_oneof![
        (binop, gpr(), gpr(), prop_oneof![
            gpr().prop_map(OpSrc::Reg),
            (color(), -100i64..100).prop_map(|(c, n)| OpSrc::Imm(CVal::new(c, n))),
        ])
            .prop_map(|(op, rd, rs, src2)| Instr::Op { op, rd, rs, src2 }),
        (gpr(), color(), -1000i64..1000)
            .prop_map(|(rd, c, n)| Instr::Mov { rd, v: CVal::new(c, n) }),
        (color(), gpr(), gpr()).prop_map(|(color, rd, rs)| Instr::Ld { color, rd, rs }),
        (color(), gpr(), gpr()).prop_map(|(color, rd, rs)| Instr::St { color, rd, rs }),
        (color(), gpr(), gpr()).prop_map(|(color, rz, rd)| Instr::Bz { color, rz, rd }),
        (color(), gpr()).prop_map(|(color, rd)| Instr::Jmp { color, rd }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_assemble_round_trip(instrs in proptest::collection::vec(instr(), 1..40)) {
        // Build a program around the random body (halt-terminated so the
        // structure is always valid).
        let mut src = String::from(".code\nmain:\n  .pre { forall m:mem; mem: m; }\n");
        for i in &instrs {
            src.push_str(&format!("  {i}\n"));
        }
        src.push_str("  halt\n");
        let asm1 = assemble(&src).expect("assembles");
        prop_assert_eq!(&asm1.program.instrs[..instrs.len()], &instrs[..]);
        // Round-trip through the printer.
        let text = print_program(&asm1.program, &asm1.arena);
        let asm2 = assemble(&text).unwrap_or_else(|e| panic!("reassemble: {e}\n{text}"));
        prop_assert_eq!(&asm1.program.instrs, &asm2.program.instrs);
        prop_assert_eq!(&asm1.program.labels, &asm2.program.labels);
    }
}
