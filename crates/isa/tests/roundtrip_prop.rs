//! Randomized property test (seeded, dependency-free): random instruction
//! streams survive the print → assemble round-trip exactly.

use talft_isa::{assemble, print_program, CVal, Color, Gpr, Instr, OpSrc};
use talft_logic::BinOp;
use talft_testutil::SplitMix64;

fn color(r: &mut SplitMix64) -> Color {
    if r.chance(1, 2) {
        Color::Green
    } else {
        Color::Blue
    }
}

fn gpr(r: &mut SplitMix64) -> Gpr {
    Gpr(r.below(16) as u16)
}

const BINOPS: [BinOp; 9] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Slt,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::Shr,
];

fn instr(r: &mut SplitMix64) -> Instr {
    match r.below(6) {
        0 => {
            let src2 = if r.chance(1, 2) {
                OpSrc::Reg(gpr(r))
            } else {
                let c = color(r);
                OpSrc::Imm(CVal::new(c, r.range_i64(-100, 100)))
            };
            Instr::Op {
                op: *r.pick(&BINOPS),
                rd: gpr(r),
                rs: gpr(r),
                src2,
            }
        }
        1 => {
            let c = color(r);
            Instr::Mov {
                rd: gpr(r),
                v: CVal::new(c, r.range_i64(-1000, 1000)),
            }
        }
        2 => Instr::Ld {
            color: color(r),
            rd: gpr(r),
            rs: gpr(r),
        },
        3 => Instr::St {
            color: color(r),
            rd: gpr(r),
            rs: gpr(r),
        },
        4 => Instr::Bz {
            color: color(r),
            rz: gpr(r),
            rd: gpr(r),
        },
        _ => Instr::Jmp {
            color: color(r),
            rd: gpr(r),
        },
    }
}

#[test]
fn print_assemble_round_trip() {
    let mut rng = SplitMix64::new(0x0151_7201);
    for case in 0..256 {
        let len = 1 + rng.index(39);
        let instrs: Vec<Instr> = (0..len).map(|_| instr(&mut rng)).collect();
        // Build a program around the random body (halt-terminated so the
        // structure is always valid).
        let mut src = String::from(".code\nmain:\n  .pre { forall m:mem; mem: m; }\n");
        for i in &instrs {
            src.push_str(&format!("  {i}\n"));
        }
        src.push_str("  halt\n");
        let asm1 = assemble(&src).expect("assembles");
        assert_eq!(
            &asm1.program.instrs[..instrs.len()],
            &instrs[..],
            "case {case}"
        );
        // Round-trip through the printer.
        let text = print_program(&asm1.program, &asm1.arena);
        let asm2 =
            assemble(&text).unwrap_or_else(|e| panic!("case {case}: reassemble: {e}\n{text}"));
        assert_eq!(asm1.program.instrs, asm2.program.instrs, "case {case}");
        assert_eq!(asm1.program.labels, asm2.program.labels, "case {case}");
    }
}
