//! Programs: code memory `C`, data regions (initial value memory `M` plus
//! the heap typing `Ψ`), label preconditions, and entry point.
//!
//! Code memory maps addresses `1 ..= len` to instructions (the paper:
//! "Address 0 is not considered a valid code address"). Value memory is laid
//! out in named **regions** — contiguous, `b ref`-typed address ranges — which
//! both seed the machine's `M` and define `Ψ` on data addresses. Regions are
//! how we realize the paper's `Ψ ⊢ ℓ : b ref` memory typing for arrays
//! (DESIGN.md, "Region-typed heap").

use std::collections::BTreeMap;
use std::fmt;

use talft_logic::ExprArena;

use crate::instr::Instr;
use crate::ty::{BasicTy, CodeTy};

/// Lowest data address; code lives strictly below this.
pub const DATA_BASE: i64 = 4096;

/// A contiguous typed data region (part of `M` and `Ψ`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Region name (for assembly syntax and diagnostics).
    pub name: String,
    /// First address.
    pub base: i64,
    /// Number of addressable cells.
    pub len: i64,
    /// Element type: every address `a ∈ [base, base+len)` has `Ψ(a) = elem ref`.
    pub elem: BasicTy,
    /// Initial contents (zero-padded to `len`).
    pub init: Vec<i64>,
    /// Whether the region is an observable output device window (used by
    /// harnesses to filter traces; the machine itself treats all committed
    /// stores as observable, as in the paper).
    pub output: bool,
}

impl Region {
    /// Whether `addr` falls inside the region.
    #[must_use]
    pub fn contains(&self, addr: i64) -> bool {
        addr >= self.base && addr < self.base + self.len
    }

    /// End address (exclusive).
    #[must_use]
    pub fn end(&self) -> i64 {
        self.base + self.len
    }
}

/// A complete TAL_FT program: code, label preconditions, data regions.
///
/// Static expressions inside preconditions live in an external
/// [`ExprArena`] (returned alongside the program by the assembler and the
/// compiler), so the program itself stays cheaply cloneable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Instructions; address `n` (1-based) is `instrs[n-1]`.
    pub instrs: Vec<Instr>,
    /// Label name → code address.
    pub labels: BTreeMap<String, i64>,
    /// Code-type preconditions at labeled addresses (`Ψ` on code).
    pub preconds: BTreeMap<i64, CodeTy>,
    /// Typed data regions (`Ψ` on data + initial `M`).
    pub regions: Vec<Region>,
    /// Number of general-purpose registers the program assumes.
    pub num_gprs: u16,
    /// Entry address (must be labeled).
    pub entry: i64,
}

impl Program {
    /// The instruction at code address `addr`, if valid.
    #[must_use]
    pub fn instr(&self, addr: i64) -> Option<&Instr> {
        if addr < 1 {
            return None;
        }
        self.instrs.get(usize::try_from(addr).ok()?.checked_sub(1)?)
    }

    /// Whether `addr ∈ Dom(C)`.
    #[must_use]
    pub fn is_code_addr(&self, addr: i64) -> bool {
        addr >= 1 && (addr as u64) <= self.instrs.len() as u64
    }

    /// Number of instructions.
    #[must_use]
    pub fn code_len(&self) -> usize {
        self.instrs.len()
    }

    /// The precondition at a labeled address.
    #[must_use]
    pub fn precond(&self, addr: i64) -> Option<&CodeTy> {
        self.preconds.get(&addr)
    }

    /// The address of a label.
    #[must_use]
    pub fn label_addr(&self, name: &str) -> Option<i64> {
        self.labels.get(name).copied()
    }

    /// The label at an address (reverse lookup, for diagnostics).
    #[must_use]
    pub fn label_at(&self, addr: i64) -> Option<&str> {
        self.labels
            .iter()
            .find(|(_, &a)| a == addr)
            .map(|(n, _)| n.as_str())
    }

    /// The region containing `addr`, if any.
    #[must_use]
    pub fn region_of(&self, addr: i64) -> Option<&Region> {
        self.regions.iter().find(|r| r.contains(addr))
    }

    /// The region by name.
    #[must_use]
    pub fn region(&self, name: &str) -> Option<&Region> {
        self.regions.iter().find(|r| r.name == name)
    }

    /// `Ψ(addr)` on data addresses: the *pointer* type `elem ref`.
    #[must_use]
    pub fn data_ptr_ty(&self, addr: i64) -> Option<BasicTy> {
        self.region_of(addr).map(|r| r.elem.clone().reference())
    }

    /// Whether `addr ∈ Dom(M)`.
    #[must_use]
    pub fn is_data_addr(&self, addr: i64) -> bool {
        self.region_of(addr).is_some()
    }

    /// Initial value memory `M` (region contents, zero-padded).
    #[must_use]
    pub fn initial_memory(&self) -> BTreeMap<i64, i64> {
        let mut m = BTreeMap::new();
        for r in &self.regions {
            for i in 0..r.len {
                let v = r
                    .init
                    .get(usize::try_from(i).expect("region len fits usize"));
                m.insert(r.base + i, v.copied().unwrap_or(0));
            }
        }
        m
    }

    /// Structural well-formedness (not type checking): label/entry/precond
    /// addresses valid, regions disjoint and above [`DATA_BASE`], code fits
    /// below the data space.
    pub fn validate(&self, arena: &ExprArena) -> Result<(), ProgramError> {
        if !self.is_code_addr(self.entry) {
            return Err(ProgramError::BadEntry(self.entry));
        }
        if !self.preconds.contains_key(&self.entry) {
            return Err(ProgramError::EntryNotAnnotated(self.entry));
        }
        if self.instrs.len() as i64 >= DATA_BASE {
            return Err(ProgramError::CodeOverflowsDataSpace(self.instrs.len()));
        }
        for (name, &addr) in &self.labels {
            if !self.is_code_addr(addr) {
                return Err(ProgramError::BadLabel(name.clone(), addr));
            }
        }
        for &addr in self.preconds.keys() {
            if !self.is_code_addr(addr) {
                return Err(ProgramError::BadPrecondAddr(addr));
            }
        }
        // Every precondition's expressions must be well-kinded under its Δ.
        for (addr, t) in &self.preconds {
            let ctx = t.kind_ctx();
            let check = |e, want| -> Result<(), ProgramError> {
                let got = arena
                    .kind_of(&ctx, e)
                    .map_err(|err| ProgramError::IllKindedPrecond(*addr, err.to_string()))?;
                if got != want {
                    return Err(ProgramError::IllKindedPrecond(
                        *addr,
                        format!("expected kind {want}, found {got}"),
                    ));
                }
                Ok(())
            };
            check(t.mem, talft_logic::Kind::Mem)?;
            for &(d, v) in &t.queue {
                check(d, talft_logic::Kind::Int)?;
                check(v, talft_logic::Kind::Int)?;
            }
        }
        let mut sorted: Vec<&Region> = self.regions.iter().collect();
        sorted.sort_by_key(|r| r.base);
        for r in &sorted {
            if r.base < DATA_BASE {
                return Err(ProgramError::RegionBelowDataBase(r.name.clone(), r.base));
            }
            if r.len <= 0 {
                return Err(ProgramError::EmptyRegion(r.name.clone()));
            }
            if r.init.len() as i64 > r.len {
                return Err(ProgramError::InitTooLong(r.name.clone()));
            }
        }
        for w in sorted.windows(2) {
            if w[0].end() > w[1].base {
                return Err(ProgramError::OverlappingRegions(
                    w[0].name.clone(),
                    w[1].name.clone(),
                ));
            }
        }
        Ok(())
    }
}

/// Structural program errors found by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// Entry address is not a valid code address.
    BadEntry(i64),
    /// Entry block has no precondition annotation.
    EntryNotAnnotated(i64),
    /// Too many instructions: code would spill into the data address space.
    CodeOverflowsDataSpace(usize),
    /// A label points outside code memory.
    BadLabel(String, i64),
    /// A precondition is attached to a non-code address.
    BadPrecondAddr(i64),
    /// A precondition contains an ill-kinded expression.
    IllKindedPrecond(i64, String),
    /// A region starts below [`DATA_BASE`].
    RegionBelowDataBase(String, i64),
    /// A region has non-positive length.
    EmptyRegion(String),
    /// A region's initializer is longer than the region.
    InitTooLong(String),
    /// Two regions overlap.
    OverlappingRegions(String, String),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::BadEntry(a) => write!(f, "entry address {a} is not a code address"),
            ProgramError::EntryNotAnnotated(a) => {
                write!(f, "entry address {a} has no precondition")
            }
            ProgramError::CodeOverflowsDataSpace(n) => {
                write!(f, "{n} instructions overflow the code address space")
            }
            ProgramError::BadLabel(n, a) => write!(f, "label {n} points at bad address {a}"),
            ProgramError::BadPrecondAddr(a) => {
                write!(f, "precondition at non-code address {a}")
            }
            ProgramError::IllKindedPrecond(a, e) => {
                write!(f, "ill-kinded precondition at address {a}: {e}")
            }
            ProgramError::RegionBelowDataBase(n, b) => {
                write!(f, "region {n} base {b} is below the data base {DATA_BASE}")
            }
            ProgramError::EmptyRegion(n) => write!(f, "region {n} has non-positive length"),
            ProgramError::InitTooLong(n) => {
                write!(f, "region {n} initializer longer than region")
            }
            ProgramError::OverlappingRegions(a, b) => {
                write!(f, "regions {a} and {b} overlap")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Color;
    use crate::reg::Gpr;
    use crate::ty::RegFileTy;

    fn trivial_precond(arena: &mut ExprArena) -> CodeTy {
        let m = arena.var_id("m");
        let me = arena.var_expr(m);
        CodeTy {
            delta: vec![(m, talft_logic::Kind::Mem)],
            facts: vec![],
            regs: RegFileTy::new(),
            queue: vec![],
            mem: me,
        }
    }

    fn tiny_program(arena: &mut ExprArena) -> Program {
        let mut p = Program {
            instrs: vec![Instr::Halt],
            num_gprs: 8,
            entry: 1,
            ..Program::default()
        };
        p.labels.insert("main".into(), 1);
        p.preconds.insert(1, trivial_precond(arena));
        p
    }

    #[test]
    fn addressing_is_one_based() {
        let mut arena = ExprArena::new();
        let p = tiny_program(&mut arena);
        assert!(p.instr(0).is_none());
        assert_eq!(p.instr(1), Some(&Instr::Halt));
        assert!(p.instr(2).is_none());
        assert!(p.is_code_addr(1));
        assert!(!p.is_code_addr(0));
        assert!(!p.is_code_addr(-5));
    }

    #[test]
    fn validate_accepts_tiny_program() {
        let mut arena = ExprArena::new();
        let p = tiny_program(&mut arena);
        assert_eq!(p.validate(&arena), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_entry_and_labels() {
        let mut arena = ExprArena::new();
        let mut p = tiny_program(&mut arena);
        p.entry = 7;
        assert!(matches!(p.validate(&arena), Err(ProgramError::BadEntry(7))));
        p.entry = 1;
        p.labels.insert("ghost".into(), 99);
        assert!(matches!(
            p.validate(&arena),
            Err(ProgramError::BadLabel(_, 99))
        ));
    }

    #[test]
    fn validate_rejects_overlapping_and_low_regions() {
        let mut arena = ExprArena::new();
        let mut p = tiny_program(&mut arena);
        p.regions.push(Region {
            name: "a".into(),
            base: DATA_BASE,
            len: 10,
            elem: BasicTy::Int,
            init: vec![],
            output: false,
        });
        p.regions.push(Region {
            name: "b".into(),
            base: DATA_BASE + 5,
            len: 10,
            elem: BasicTy::Int,
            init: vec![],
            output: false,
        });
        assert!(matches!(
            p.validate(&arena),
            Err(ProgramError::OverlappingRegions(_, _))
        ));
        p.regions.pop();
        p.regions[0].base = 10;
        assert!(matches!(
            p.validate(&arena),
            Err(ProgramError::RegionBelowDataBase(_, 10))
        ));
    }

    #[test]
    fn region_queries_and_initial_memory() {
        let mut arena = ExprArena::new();
        let mut p = tiny_program(&mut arena);
        p.regions.push(Region {
            name: "tab".into(),
            base: DATA_BASE,
            len: 4,
            elem: BasicTy::Int,
            init: vec![9, 8],
            output: false,
        });
        assert!(p.is_data_addr(DATA_BASE + 3));
        assert!(!p.is_data_addr(DATA_BASE + 4));
        assert_eq!(p.data_ptr_ty(DATA_BASE), Some(BasicTy::Int.reference()));
        let m = p.initial_memory();
        assert_eq!(m.get(&DATA_BASE), Some(&9));
        assert_eq!(m.get(&(DATA_BASE + 1)), Some(&8));
        assert_eq!(m.get(&(DATA_BASE + 2)), Some(&0));
        assert_eq!(m.get(&(DATA_BASE + 4)), None);
        assert_eq!(p.region("tab").map(|r| r.len), Some(4));
        assert_eq!(p.region_of(DATA_BASE).map(|r| r.name.as_str()), Some("tab"));
    }

    #[test]
    fn label_reverse_lookup() {
        let mut arena = ExprArena::new();
        let p = tiny_program(&mut arena);
        assert_eq!(p.label_at(1), Some("main"));
        assert_eq!(p.label_at(2), None);
        assert_eq!(p.label_addr("main"), Some(1));
    }

    #[test]
    fn validate_rejects_ill_kinded_precond() {
        let mut arena = ExprArena::new();
        let mut p = tiny_program(&mut arena);
        // mem expression of kind int
        let t = p.preconds.get_mut(&1).unwrap();
        t.mem = arena.int(5);
        assert!(matches!(
            p.validate(&arena),
            Err(ProgramError::IllKindedPrecond(1, _))
        ));
    }

    // Silence unused warnings for imports used by other tests.
    #[allow(dead_code)]
    fn _unused(_: Color, _: Gpr) {}
}
