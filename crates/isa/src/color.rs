//! Computation colors and colored values (paper Figure 1).
//!
//! Every fault-tolerant program maintains two redundant computations: a
//! **green** (leading) and a **blue** (trailing) one. Runtime values carry a
//! color tag `c` which — per the paper — "has no effect on the run-time
//! behavior of programs" but makes the fault-tolerance metatheory (and our
//! dynamic audits) expressible.

use std::fmt;

/// A computation color: `c ::= G | B`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Color {
    /// The green (generally leading) computation.
    Green,
    /// The blue (generally trailing) computation.
    Blue,
}

impl Color {
    /// The other color.
    #[must_use]
    pub fn other(self) -> Color {
        match self {
            Color::Green => Color::Blue,
            Color::Blue => Color::Green,
        }
    }

    /// One-letter tag used in assembly syntax (`G`/`B`).
    #[must_use]
    pub fn letter(self) -> char {
        match self {
            Color::Green => 'G',
            Color::Blue => 'B',
        }
    }

    /// Parse the one-letter tag.
    #[must_use]
    pub fn from_letter(c: char) -> Option<Color> {
        match c {
            'G' => Some(Color::Green),
            'B' => Some(Color::Blue),
            _ => None,
        }
    }

    /// Both colors, green first.
    pub const BOTH: [Color; 2] = [Color::Green, Color::Blue];
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// A colored machine word: `v ::= c n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CVal {
    /// The color tag (fictional at runtime; preserved by faults).
    pub color: Color,
    /// The payload integer.
    pub val: i64,
}

impl CVal {
    /// Construct a colored value.
    #[must_use]
    pub fn new(color: Color, val: i64) -> Self {
        Self { color, val }
    }

    /// A green value.
    #[must_use]
    pub fn green(val: i64) -> Self {
        Self::new(Color::Green, val)
    }

    /// A blue value.
    #[must_use]
    pub fn blue(val: i64) -> Self {
        Self::new(Color::Blue, val)
    }

    /// Same color, different payload (how `reg-zap` corrupts a register:
    /// "the color tag is preserved").
    #[must_use]
    pub fn with_val(self, val: i64) -> Self {
        Self { val, ..self }
    }
}

impl fmt::Display for CVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.color, self.val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_is_involutive() {
        for c in Color::BOTH {
            assert_eq!(c.other().other(), c);
            assert_ne!(c.other(), c);
        }
    }

    #[test]
    fn letter_round_trip() {
        for c in Color::BOTH {
            assert_eq!(Color::from_letter(c.letter()), Some(c));
        }
        assert_eq!(Color::from_letter('x'), None);
    }

    #[test]
    fn cval_display_and_zap() {
        let v = CVal::green(42);
        assert_eq!(v.to_string(), "G 42");
        let z = v.with_val(-7);
        assert_eq!(z.color, Color::Green);
        assert_eq!(z.val, -7);
    }
}
