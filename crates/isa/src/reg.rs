//! Register names (paper Figure 1).
//!
//! ```text
//! general regs  r ::= rn
//! registers     a ::= r | d | pcG | pcB
//! ```
//!
//! The machine has a bank of general-purpose registers `r0 … r(N-1)` (the
//! paper writes `r1, r2, …`; we are zero-based), the special **destination
//! register** `d` used by the split control-flow protocol, and the two
//! program counters `pcG`/`pcB`.

use std::fmt;

use crate::color::Color;

/// A general-purpose register index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Gpr(pub u16);

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Any register (`a` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Reg {
    /// A general-purpose register.
    Gpr(Gpr),
    /// The destination register `d` (latched control-flow intent).
    Dst,
    /// The program counter of color `c`.
    Pc(Color),
}

impl Reg {
    /// Shorthand for a GPR.
    #[must_use]
    pub fn r(n: u16) -> Reg {
        Reg::Gpr(Gpr(n))
    }

    /// Parse a register name (`r7`, `d`, `pcG`, `pcB`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Reg> {
        match s {
            "d" => Some(Reg::Dst),
            "pcG" => Some(Reg::Pc(Color::Green)),
            "pcB" => Some(Reg::Pc(Color::Blue)),
            _ => {
                let n = s.strip_prefix('r')?;
                n.parse::<u16>().ok().map(Reg::r)
            }
        }
    }

    /// Enumerate every register of a machine with `num_gprs` GPRs
    /// (GPRs first, then `d`, `pcG`, `pcB`).
    pub fn all(num_gprs: u16) -> impl Iterator<Item = Reg> {
        (0..num_gprs)
            .map(Reg::r)
            .chain([Reg::Dst, Reg::Pc(Color::Green), Reg::Pc(Color::Blue)])
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::Gpr(g) => write!(f, "{g}"),
            Reg::Dst => write!(f, "d"),
            Reg::Pc(c) => write!(f, "pc{c}"),
        }
    }
}

impl From<Gpr> for Reg {
    fn from(g: Gpr) -> Reg {
        Reg::Gpr(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        for r in [
            Reg::r(0),
            Reg::r(63),
            Reg::Dst,
            Reg::Pc(Color::Green),
            Reg::Pc(Color::Blue),
        ] {
            assert_eq!(Reg::parse(&r.to_string()), Some(r));
        }
        assert_eq!(Reg::parse("x1"), None);
        assert_eq!(Reg::parse("r"), None);
        assert_eq!(Reg::parse("pcX"), None);
    }

    #[test]
    fn all_enumerates_gprs_and_specials() {
        let regs: Vec<Reg> = Reg::all(4).collect();
        assert_eq!(regs.len(), 7);
        assert_eq!(regs[0], Reg::r(0));
        assert_eq!(regs[4], Reg::Dst);
        assert_eq!(regs[6], Reg::Pc(Color::Blue));
    }
}
