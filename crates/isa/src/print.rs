//! Pretty-printing programs back to `.talft` source text.
//!
//! The printer emits exactly the grammar [`crate::asm`] accepts, so
//! `assemble(print(p)) == p` up to expression identity (round-trip tested in
//! `tests/roundtrip.rs`). Useful for inspecting compiler output and for
//! shipping compiled kernels as standalone artifacts.

use std::fmt::Write;

use talft_logic::{BinOp, ExprArena, ExprId, ExprNode, Kind};

use crate::program::Program;
use crate::reg::Reg;
use crate::ty::{BasicTy, CodeTy, FactAnn, RegTy, ValTy};
use crate::Instr;

/// Render a whole program as `.talft` source.
#[must_use]
pub fn print_program(program: &Program, arena: &ExprArena) -> String {
    let mut s = String::new();
    if !program.regions.is_empty() {
        s.push_str(".data\n");
        for r in &program.regions {
            write!(
                s,
                "region {} at {} len {} : {}",
                r.name,
                r.base,
                r.len,
                print_basic(&r.elem, program)
            )
            .expect("write to string");
            if r.output {
                s.push_str(" output");
            }
            if !r.init.is_empty() {
                s.push_str(" =");
                for v in &r.init {
                    write!(s, " {v}").expect("write to string");
                }
            }
            s.push('\n');
        }
        s.push('\n');
    }
    if program.num_gprs != crate::asm::DEFAULT_GPRS {
        writeln!(s, ".gprs {}", program.num_gprs).expect("write to string");
    }
    if let Some(entry) = program.label_at(program.entry) {
        if entry != "main" {
            writeln!(s, ".entry {entry}").expect("write to string");
        }
    }
    s.push_str(".code\n");
    for (idx, instr) in program.instrs.iter().enumerate() {
        let addr = idx as i64 + 1;
        if let Some(label) = program.label_at(addr) {
            writeln!(s, "{label}:").expect("write to string");
        }
        if let Some(pre) = program.precond(addr) {
            s.push_str(&print_precond(pre, arena, program, addr));
        }
        writeln!(s, "  {instr}").expect("write to string");
    }
    s
}

/// Render one precondition as a `.pre { … }` block.
#[must_use]
pub fn print_precond(pre: &CodeTy, arena: &ExprArena, program: &Program, addr: i64) -> String {
    let mut s = String::from("  .pre {\n");
    if !pre.delta.is_empty() {
        s.push_str("    forall ");
        for (i, (v, k)) in pre.delta.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            write!(
                s,
                "{}:{}",
                arena.var_name(*v),
                match k {
                    Kind::Int => "int",
                    Kind::Mem => "mem",
                }
            )
            .expect("write to string");
        }
        s.push('\n');
    }
    for f in &pre.facts {
        match f {
            FactAnn::EqZero(e) => {
                writeln!(s, "    fact {} == 0", print_expr(arena, *e)).expect("write")
            }
            FactAnn::NeqZero(e) => {
                writeln!(s, "    fact {} != 0", print_expr(arena, *e)).expect("write")
            }
            FactAnn::Ge0(e) => {
                writeln!(s, "    fact {} >= 0", print_expr(arena, *e)).expect("write")
            }
        }
    }
    for (r, t) in pre.regs.iter() {
        // The assembler re-creates the default pc/d rows; print them only
        // when they deviate from the defaults.
        if is_default_row(r, t, arena, addr) {
            continue;
        }
        writeln!(s, "    {r}: {}", print_reg_ty(t, arena, program)).expect("write");
    }
    if !pre.queue.is_empty() {
        s.push_str("    queue: [");
        for (i, (d, v)) in pre.queue.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            write!(s, "({}, {})", print_expr(arena, *d), print_expr(arena, *v)).expect("write");
        }
        s.push_str("]\n");
    }
    writeln!(s, "    mem: {}", print_expr(arena, pre.mem)).expect("write");
    s.push_str("  }\n");
    s
}

fn is_default_row(r: Reg, t: &RegTy, arena: &ExprArena, addr: i64) -> bool {
    let expr_is = |e: ExprId, n: i64| matches!(arena.node(e), ExprNode::Int(v) if v == n);
    match (r, t) {
        (Reg::Dst, RegTy::Val(v)) => {
            v.color == crate::Color::Green && v.basic == BasicTy::Int && expr_is(v.expr, 0)
        }
        (Reg::Pc(c), RegTy::Val(v)) => {
            v.color == c && v.basic == BasicTy::Int && expr_is(v.expr, addr)
        }
        _ => false,
    }
}

/// Render a register type.
#[must_use]
pub fn print_reg_ty(t: &RegTy, arena: &ExprArena, program: &Program) -> String {
    match t {
        RegTy::Top => "top".to_owned(),
        RegTy::Val(v) => print_val_ty(v, arena, program),
        RegTy::Cond { guard, inner } => format!(
            "{} == 0 => {}",
            print_expr(arena, *guard),
            print_val_ty(inner, arena, program)
        ),
    }
}

fn print_val_ty(v: &ValTy, arena: &ExprArena, program: &Program) -> String {
    format!(
        "({}, {}, {})",
        v.color,
        print_basic(&v.basic, program),
        print_expr(arena, v.expr)
    )
}

/// Render a basic type in assembler syntax (`code @label` needs the label).
#[must_use]
pub fn print_basic(b: &BasicTy, program: &Program) -> String {
    match b {
        BasicTy::Int => "int".to_owned(),
        BasicTy::Code(addr) => {
            let label = program
                .label_at(*addr)
                .map_or_else(|| format!("addr{addr}"), str::to_owned);
            format!("code @{label}")
        }
        BasicTy::Ref(inner) => match **inner {
            BasicTy::Ref(_) | BasicTy::Code(_) => {
                format!("({}) ref", print_basic(inner, program))
            }
            BasicTy::Int => "int ref".to_owned(),
        },
    }
}

/// Render a static expression in the assembler's infix grammar.
#[must_use]
pub fn print_expr(arena: &ExprArena, e: ExprId) -> String {
    match arena.node(e) {
        ExprNode::Var(v) => arena.var_name(v).to_owned(),
        ExprNode::Int(n) => {
            if n < 0 {
                format!("(0 - {})", n.unsigned_abs())
            } else {
                n.to_string()
            }
        }
        ExprNode::Emp => "emp".to_owned(),
        ExprNode::Bin(op, a, b) => match op {
            BinOp::Add => format!("({} + {})", print_expr(arena, a), print_expr(arena, b)),
            BinOp::Sub => format!("({} - {})", print_expr(arena, a), print_expr(arena, b)),
            BinOp::Mul => format!("({} * {})", print_expr(arena, a), print_expr(arena, b)),
            other => format!(
                "{}({}, {})",
                other.mnemonic(),
                print_expr(arena, a),
                print_expr(arena, b)
            ),
        },
        ExprNode::Sel(m, a) => {
            format!("sel({}, {})", print_expr(arena, m), print_expr(arena, a))
        }
        ExprNode::Upd(m, a, v) => format!(
            "upd({}, {}, {})",
            print_expr(arena, m),
            print_expr(arena, a),
            print_expr(arena, v)
        ),
    }
}

/// Disassemble just the instruction stream (addresses + labels, no types).
#[must_use]
pub fn disassemble(program: &Program) -> String {
    let mut s = String::new();
    for (idx, instr) in program.instrs.iter().enumerate() {
        let addr = idx as i64 + 1;
        if let Some(label) = program.label_at(addr) {
            writeln!(s, "{label}:").expect("write");
        }
        writeln!(s, "  {addr:4}  {instr}").expect("write");
    }
    s
}

/// Re-export target check helper for tests.
#[doc(hidden)]
pub fn _instr_display(i: &Instr) -> String {
    i.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    const SRC: &str = r#"
.data
region tab at 8192 len 4 : int = 9 8 7
region out at 4096 len 2 : int output

.code
main:
  .pre {
    forall x:int, m:mem;
    fact x >= 0
    r1: (G, int, x + 1);
    r2: (B, int ref, 4096);
    queue: [(x, x * 2)]
    mem: upd(m, 4096, x)
  }
  add r3, r1, G 1
  mov r4, G @main
  stG r2, r1
  halt
"#;

    #[test]
    fn print_then_reassemble_preserves_structure() {
        let asm1 = assemble(SRC).expect("assembles");
        let text = print_program(&asm1.program, &asm1.arena);
        let asm2 = assemble(&text).unwrap_or_else(|e| panic!("reassembles: {e}\n{text}"));
        assert_eq!(asm1.program.instrs, asm2.program.instrs);
        assert_eq!(asm1.program.labels, asm2.program.labels);
        assert_eq!(asm1.program.entry, asm2.program.entry);
        assert_eq!(asm1.program.regions, asm2.program.regions);
        assert_eq!(
            asm1.program.preconds.keys().collect::<Vec<_>>(),
            asm2.program.preconds.keys().collect::<Vec<_>>()
        );
        // precondition shapes survive
        let p1 = asm1.program.precond(1).expect("pre");
        let p2 = asm2.program.precond(1).expect("pre");
        assert_eq!(p1.delta.len(), p2.delta.len());
        assert_eq!(p1.facts.len(), p2.facts.len());
        assert_eq!(p1.queue.len(), p2.queue.len());
        assert_eq!(p1.regs.len(), p2.regs.len());
    }

    #[test]
    fn expr_printer_matches_grammar() {
        let mut a = ExprArena::new();
        let x = a.var("x");
        let two = a.int(2);
        let neg = a.int(-3);
        let m = a.var("m");
        let prod = a.mul(x, two);
        let sum = a.add(prod, neg);
        let slt = a.bin(BinOp::Slt, x, two);
        let sel = a.sel(m, sum);
        assert_eq!(print_expr(&a, sum), "((x * 2) + (0 - 3))");
        assert_eq!(print_expr(&a, slt), "slt(x, 2)");
        assert_eq!(print_expr(&a, sel), "sel(m, ((x * 2) + (0 - 3)))");
    }

    #[test]
    fn disassembly_lists_addresses() {
        let asm = assemble(SRC).expect("assembles");
        let d = disassemble(&asm.program);
        assert!(d.contains("main:"));
        assert!(d.contains("add r3, r1, G 1"));
        assert!(d.contains("   4  halt"));
    }
}
