//! Machine instructions (paper Figure 1).
//!
//! ```text
//! i ::= op rd, rs, rt | op rd, rs, v | ld_c rd, rs | st_c rd, rs
//!     | mov rd, v | bz_c rz, rd | jmp_c rd
//! ```
//!
//! plus the `halt` pseudo-instruction (our extension: the paper's programs
//! never terminate, but an evaluation needs terminating workloads; `halt` is
//! a dangerous-action-free sink state, see DESIGN.md).
//!
//! ALU ops `op` come from [`talft_logic::BinOp`] — `add|sub|mul` as in the
//! paper, plus the conservative `slt`/bitwise extensions.

use std::fmt;

use talft_logic::BinOp;

use crate::color::{CVal, Color};
use crate::reg::Gpr;

/// Second ALU operand: a register or a colored immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpSrc {
    /// Register operand (`op rd, rs, rt`).
    Reg(Gpr),
    /// Colored-constant operand (`op rd, rs, c n`).
    Imm(CVal),
}

impl fmt::Display for OpSrc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpSrc::Reg(r) => write!(f, "{r}"),
            OpSrc::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// One TAL_FT machine instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `op rd, rs, src2` — ALU operation (rules `op2r` / `op1r`).
    Op {
        /// The ALU operation.
        op: BinOp,
        /// Destination register.
        rd: Gpr,
        /// First (register) source.
        rs: Gpr,
        /// Second source: register or colored immediate.
        src2: OpSrc,
    },
    /// `mov rd, v` — load a colored constant (rule `mov`).
    Mov {
        /// Destination register.
        rd: Gpr,
        /// The colored immediate.
        v: CVal,
    },
    /// `ld_c rd, rs` — load from memory; the green variant snoops the store
    /// queue first (rules `ldG-queue` / `ldG-mem` / `ldB-mem`).
    Ld {
        /// Color of this load.
        color: Color,
        /// Destination register.
        rd: Gpr,
        /// Address register.
        rs: Gpr,
    },
    /// `st_c rd, rs` — store `rs` to address `rd`. `stG` enqueues the pair;
    /// `stB` compares against the queue tail and commits (rules `stG-queue`
    /// / `stB-mem`).
    St {
        /// Color of this store.
        color: Color,
        /// Address register.
        rd: Gpr,
        /// Value register.
        rs: Gpr,
    },
    /// `bz_c rz, rd` — conditional branch protocol: the green version
    /// conditionally latches the target into `d`; the blue version commits
    /// or falls through (rules `bz-untaken` / `bzG-taken` / `bzB-taken`).
    Bz {
        /// Color of this branch half.
        color: Color,
        /// Register tested against zero.
        rz: Gpr,
        /// Register holding the branch target.
        rd: Gpr,
    },
    /// `jmp_c rd` — unconditional jump protocol: green latches the target
    /// into `d`; blue compares and transfers (rules `jmpG` / `jmpB`).
    Jmp {
        /// Color of this jump half.
        color: Color,
        /// Register holding the jump target.
        rd: Gpr,
    },
    /// `halt` — stop cleanly (extension; see module docs).
    Halt,
}

impl Instr {
    /// The GPRs this instruction reads.
    #[must_use]
    pub fn uses(&self) -> Vec<Gpr> {
        match *self {
            Instr::Op { rs, src2, .. } => match src2 {
                OpSrc::Reg(rt) => vec![rs, rt],
                OpSrc::Imm(_) => vec![rs],
            },
            Instr::Mov { .. } | Instr::Halt => vec![],
            Instr::Ld { rs, .. } => vec![rs],
            Instr::St { rd, rs, .. } => vec![rd, rs],
            Instr::Bz { rz, rd, .. } => vec![rz, rd],
            Instr::Jmp { rd, .. } => vec![rd],
        }
    }

    /// The GPR this instruction writes, if any.
    #[must_use]
    pub fn def(&self) -> Option<Gpr> {
        match *self {
            Instr::Op { rd, .. } | Instr::Mov { rd, .. } | Instr::Ld { rd, .. } => Some(rd),
            Instr::St { .. } | Instr::Bz { .. } | Instr::Jmp { .. } | Instr::Halt => None,
        }
    }

    /// Whether this instruction can transfer control (blue halves and halt).
    #[must_use]
    pub fn is_control(&self) -> bool {
        matches!(self, Instr::Jmp { .. } | Instr::Bz { .. } | Instr::Halt)
    }

    /// The color annotation, for colored instructions.
    #[must_use]
    pub fn color(&self) -> Option<Color> {
        match *self {
            Instr::Ld { color, .. }
            | Instr::St { color, .. }
            | Instr::Bz { color, .. }
            | Instr::Jmp { color, .. } => Some(color),
            Instr::Op {
                src2: OpSrc::Imm(v),
                ..
            } => Some(v.color),
            Instr::Mov { v, .. } => Some(v.color),
            _ => None,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Op { op, rd, rs, src2 } => write!(f, "{op} {rd}, {rs}, {src2}"),
            Instr::Mov { rd, v } => write!(f, "mov {rd}, {v}"),
            Instr::Ld { color, rd, rs } => write!(f, "ld{color} {rd}, {rs}"),
            Instr::St { color, rd, rs } => write!(f, "st{color} {rd}, {rs}"),
            Instr::Bz { color, rz, rd } => write!(f, "bz{color} {rz}, {rd}"),
            Instr::Jmp { color, rd } => write!(f, "jmp{color} {rd}"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_syntax() {
        let i = Instr::St {
            color: Color::Green,
            rd: Gpr(2),
            rs: Gpr(1),
        };
        assert_eq!(i.to_string(), "stG r2, r1");
        let j = Instr::Op {
            op: BinOp::Add,
            rd: Gpr(1),
            rs: Gpr(2),
            src2: OpSrc::Imm(CVal::blue(5)),
        };
        assert_eq!(j.to_string(), "add r1, r2, B 5");
        let k = Instr::Bz {
            color: Color::Blue,
            rz: Gpr(3),
            rd: Gpr(4),
        };
        assert_eq!(k.to_string(), "bzB r3, r4");
    }

    #[test]
    fn uses_and_defs() {
        let st = Instr::St {
            color: Color::Green,
            rd: Gpr(2),
            rs: Gpr(1),
        };
        assert_eq!(st.uses(), vec![Gpr(2), Gpr(1)]);
        assert_eq!(st.def(), None);
        let op = Instr::Op {
            op: BinOp::Mul,
            rd: Gpr(0),
            rs: Gpr(1),
            src2: OpSrc::Reg(Gpr(2)),
        };
        assert_eq!(op.uses(), vec![Gpr(1), Gpr(2)]);
        assert_eq!(op.def(), Some(Gpr(0)));
        let mv = Instr::Mov {
            rd: Gpr(9),
            v: CVal::green(3),
        };
        assert!(mv.uses().is_empty());
        assert_eq!(mv.def(), Some(Gpr(9)));
    }

    #[test]
    fn control_and_color_classification() {
        assert!(Instr::Halt.is_control());
        assert!(Instr::Jmp {
            color: Color::Green,
            rd: Gpr(0)
        }
        .is_control());
        assert!(!Instr::Mov {
            rd: Gpr(0),
            v: CVal::green(0)
        }
        .is_control());
        assert_eq!(
            Instr::Ld {
                color: Color::Blue,
                rd: Gpr(0),
                rs: Gpr(1)
            }
            .color(),
            Some(Color::Blue)
        );
        assert_eq!(Instr::Halt.color(), None);
    }
}
