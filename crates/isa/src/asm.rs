//! Textual assembler for `.talft` programs.
//!
//! The surface syntax mirrors the paper's (Figure 1) with type annotations in
//! the style of Figure 5:
//!
//! ```text
//! // comments run to end of line (# also works)
//! .data
//! region out at 4096 len 16 : int output
//! region tab at 8192 len 8 : int = 1 2 3 4 5 6 7 8
//!
//! .code
//! main:
//!   .pre {
//!     forall x:int, m:mem;
//!     fact x >= 0;
//!     r1: (G, int, x);
//!     r2: top;
//!     queue: [];
//!     mem: m;
//!   }
//!   mov r1, G 5
//!   mov r2, G 4096
//!   stG r2, r1
//!   mov r3, B 5
//!   mov r4, B 4096
//!   stB r4, r3
//!   halt
//! ```
//!
//! Label-address immediates are written `@label` (`mov r1, G @loop`).
//! Precondition defaults per label: `d : (G,int,0)`, `pcG/pcB : (c,int,addr)`,
//! `queue: []`, and a fresh universally-quantified memory variable if `mem:`
//! is omitted. GPRs not mentioned are `top`.

use std::collections::BTreeMap;
use std::fmt;

use talft_logic::{BinOp, ExprArena, ExprId, Kind};

use crate::color::{CVal, Color};
use crate::instr::{Instr, OpSrc};
use crate::program::{Program, Region};
use crate::reg::{Gpr, Reg};
use crate::ty::{BasicTy, CodeTy, FactAnn, RegFileTy, RegTy, ValTy};

/// Default GPR count for assembled programs without a `.gprs` directive.
pub const DEFAULT_GPRS: u16 = 64;

/// Result of assembling: the program plus the arena owning its expressions.
#[derive(Debug)]
pub struct Assembled {
    /// The assembled program.
    pub program: Program,
    /// Arena holding every static expression referenced by the program.
    pub arena: ExprArena,
    /// 1-based source line of each instruction (`lines[addr - 1]`), for
    /// span-bearing diagnostics ([`crate::span::Span::with_line_table`]).
    pub lines: Vec<u32>,
}

/// Assemble `.talft` source text.
pub fn assemble(src: &str) -> Result<Assembled, AsmError> {
    let mut arena = ExprArena::new();
    let (program, lines) = Assembler::new(src, &mut arena)?.run()?;
    program
        .validate(&arena)
        .map_err(|e| AsmError::new(0, format!("invalid program: {e}")))?;
    Ok(Assembled {
        program,
        arena,
        lines,
    })
}

/// An assembly error with a 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number (0 = whole file).
    pub line: usize,
    /// Human-readable message.
    pub msg: String,
}

impl AsmError {
    fn new(line: usize, msg: impl Into<String>) -> Self {
        Self {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Punct(&'static str),
}

fn lex_line(line: &str, lineno: usize) -> Result<Vec<Tok>, AsmError> {
    let mut toks = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '#' => break, // comment
            '/' => {
                if bytes.get(i + 1) == Some(&b'/') {
                    break; // comment
                }
                return Err(AsmError::new(lineno, "stray '/'"));
            }
            c if c.is_whitespace() => i += 1,
            '(' | ')' | '[' | ']' | '{' | '}' | ',' | '@' | '+' | '*' | '.' => {
                toks.push(Tok::Punct(match c {
                    '(' => "(",
                    ')' => ")",
                    '[' => "[",
                    ']' => "]",
                    '{' => "{",
                    '}' => "}",
                    ',' => ",",
                    '@' => "@",
                    '+' => "+",
                    '*' => "*",
                    _ => ".",
                }));
                i += 1;
            }
            ':' => {
                toks.push(Tok::Punct(":"));
                i += 1;
            }
            ';' => {
                toks.push(Tok::Punct(";"));
                i += 1;
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Punct("=="));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    toks.push(Tok::Punct("=>"));
                    i += 2;
                } else {
                    toks.push(Tok::Punct("="));
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Punct("!="));
                    i += 2;
                } else {
                    return Err(AsmError::new(lineno, "stray '!'"));
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Punct(">="));
                    i += 2;
                } else {
                    toks.push(Tok::Punct(">"));
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Punct("<="));
                    i += 2;
                } else {
                    toks.push(Tok::Punct("<"));
                    i += 1;
                }
            }
            '-' => {
                // negative literal or binary minus: decide by lookahead digit
                // plus previous token (binary minus after ident/int/`)`).
                let prev_value = matches!(
                    toks.last(),
                    Some(Tok::Ident(_)) | Some(Tok::Int(_)) | Some(Tok::Punct(")"))
                );
                if !prev_value && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) {
                    let start = i;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let n: i64 = line[start..i]
                        .parse()
                        .map_err(|_| AsmError::new(lineno, "bad integer literal"))?;
                    toks.push(Tok::Int(n));
                } else {
                    toks.push(Tok::Punct("-"));
                    i += 1;
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: i64 = line[start..i]
                    .parse()
                    .map_err(|_| AsmError::new(lineno, "bad integer literal"))?;
                toks.push(Tok::Int(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '$' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'$')
                {
                    i += 1;
                }
                toks.push(Tok::Ident(line[start..i].to_owned()));
            }
            c => return Err(AsmError::new(lineno, format!("unexpected character '{c}'"))),
        }
    }
    Ok(toks)
}

// ---------------------------------------------------------------------------
// Assembler (two phases: layout, then parse with label table)
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum Item {
    Region { line: usize, toks: Vec<Tok> },
    Label { line: usize, name: String },
    Pre { line: usize, toks: Vec<Tok> },
    Instr { line: usize, toks: Vec<Tok> },
    Gprs { line: usize, toks: Vec<Tok> },
    Entry { line: usize, toks: Vec<Tok> },
}

struct Assembler<'a> {
    arena: &'a mut ExprArena,
    items: Vec<Item>,
}

impl<'a> Assembler<'a> {
    fn new(src: &str, arena: &'a mut ExprArena) -> Result<Self, AsmError> {
        let mut items = Vec::new();
        let mut pre_acc: Option<(usize, Vec<Tok>)> = None;
        for (idx, raw) in src.lines().enumerate() {
            let lineno = idx + 1;
            let toks = lex_line(raw, lineno)?;
            if toks.is_empty() {
                continue;
            }
            if let Some((start, acc)) = &mut pre_acc {
                let closes = toks.contains(&Tok::Punct("}"));
                acc.extend(toks);
                if closes {
                    let (line, toks) = pre_acc.take().expect("accumulating");
                    items.push(Item::Pre { line, toks });
                } else {
                    let _ = start;
                }
                continue;
            }
            match &toks[0] {
                Tok::Punct(".") => {
                    let dir = match toks.get(1) {
                        Some(Tok::Ident(d)) => d.clone(),
                        _ => {
                            return Err(AsmError::new(lineno, "expected directive name after '.'"))
                        }
                    };
                    match dir.as_str() {
                        "data" | "code" => {} // section markers are informational
                        "pre" => {
                            let rest: Vec<Tok> = toks[2..].to_vec();
                            if rest.contains(&Tok::Punct("}")) {
                                items.push(Item::Pre {
                                    line: lineno,
                                    toks: rest,
                                });
                            } else {
                                pre_acc = Some((lineno, rest));
                            }
                        }
                        "gprs" => items.push(Item::Gprs {
                            line: lineno,
                            toks: toks[2..].to_vec(),
                        }),
                        "entry" => items.push(Item::Entry {
                            line: lineno,
                            toks: toks[2..].to_vec(),
                        }),
                        other => {
                            return Err(AsmError::new(
                                lineno,
                                format!("unknown directive .{other}"),
                            ))
                        }
                    }
                }
                Tok::Ident(w) if w == "region" => {
                    items.push(Item::Region { line: lineno, toks });
                }
                Tok::Ident(name) if toks.get(1) == Some(&Tok::Punct(":")) && toks.len() == 2 => {
                    items.push(Item::Label {
                        line: lineno,
                        name: name.clone(),
                    });
                }
                Tok::Ident(_) => items.push(Item::Instr { line: lineno, toks }),
                _ => return Err(AsmError::new(lineno, "unrecognized line")),
            }
        }
        if let Some((line, _)) = pre_acc {
            return Err(AsmError::new(line, "unterminated .pre block"));
        }
        Ok(Self { arena, items })
    }

    fn run(mut self) -> Result<(Program, Vec<u32>), AsmError> {
        // Phase 1: assign code addresses to labels.
        let mut labels: BTreeMap<String, i64> = BTreeMap::new();
        let mut addr: i64 = 1;
        for item in &self.items {
            match item {
                Item::Label { line, name } if labels.insert(name.clone(), addr).is_some() => {
                    return Err(AsmError::new(*line, format!("duplicate label {name}")));
                }
                Item::Instr { .. } => addr += 1,
                _ => {}
            }
        }

        // Phase 2: parse everything with the label table in scope.
        let mut program = Program {
            num_gprs: DEFAULT_GPRS,
            labels: labels.clone(),
            ..Program::default()
        };
        let mut entry_label: Option<(usize, String)> = None;
        let mut pending_pre: Option<(usize, Vec<Tok>)> = None;
        let mut current_addr: i64 = 1;
        let mut lines: Vec<u32> = Vec::new();

        let items = std::mem::take(&mut self.items);
        for item in items {
            match item {
                Item::Gprs { line, toks } => match toks.as_slice() {
                    [Tok::Int(n)] if *n > 0 && *n <= 4096 => {
                        program.num_gprs = u16::try_from(*n).expect("range-checked");
                    }
                    _ => return Err(AsmError::new(line, "usage: .gprs N")),
                },
                Item::Entry { line, toks } => match toks.as_slice() {
                    [Tok::Ident(name)] => entry_label = Some((line, name.clone())),
                    _ => return Err(AsmError::new(line, "usage: .entry label")),
                },
                Item::Region { line, toks } => {
                    program
                        .regions
                        .push(self.parse_region(line, &toks, &labels)?);
                }
                Item::Label { .. } => {}
                Item::Pre { line, toks } => {
                    if pending_pre.is_some() {
                        return Err(AsmError::new(line, "two .pre blocks for one address"));
                    }
                    pending_pre = Some((line, toks));
                }
                Item::Instr { line, toks } => {
                    if let Some((pl, pt)) = pending_pre.take() {
                        let pre = self.parse_precond(pl, &pt, &labels, current_addr)?;
                        program.preconds.insert(current_addr, pre);
                    }
                    let instr = self.parse_instr(line, &toks, &labels)?;
                    program.instrs.push(instr);
                    lines.push(u32::try_from(line).unwrap_or(u32::MAX));
                    current_addr += 1;
                }
            }
        }
        if let Some((line, _)) = pending_pre {
            return Err(AsmError::new(
                line,
                ".pre block not followed by an instruction",
            ));
        }

        program.entry = match entry_label {
            Some((line, name)) => *labels
                .get(&name)
                .ok_or_else(|| AsmError::new(line, format!("unknown entry label {name}")))?,
            None => *labels
                .get("main")
                .ok_or_else(|| AsmError::new(0, "no .entry directive and no main label"))?,
        };
        Ok((program, lines))
    }

    fn parse_region(
        &mut self,
        line: usize,
        toks: &[Tok],
        labels: &BTreeMap<String, i64>,
    ) -> Result<Region, AsmError> {
        // region NAME at INT len INT : BTY [output] [= INT*]
        let mut p = Parser {
            arena: self.arena,
            toks,
            pos: 0,
            line,
            labels,
        };
        p.expect_ident("region")?;
        let name = p.ident()?;
        p.expect_ident("at")?;
        let base = p.int()?;
        p.expect_ident("len")?;
        let len = p.int()?;
        p.expect(":")?;
        let elem = p.basic_ty()?;
        let mut output = false;
        let mut init = Vec::new();
        if p.peek_ident("output") {
            p.ident()?;
            output = true;
        }
        if p.peek_punct("=") {
            p.expect("=")?;
            while !p.at_end() {
                init.push(p.int()?);
            }
        }
        p.finish()?;
        Ok(Region {
            name,
            base,
            len,
            elem,
            init,
            output,
        })
    }

    fn parse_instr(
        &mut self,
        line: usize,
        toks: &[Tok],
        labels: &BTreeMap<String, i64>,
    ) -> Result<Instr, AsmError> {
        let mut p = Parser {
            arena: self.arena,
            toks,
            pos: 0,
            line,
            labels,
        };
        let mn = p.ident()?;
        let instr = match mn.as_str() {
            "halt" => Instr::Halt,
            "mov" => {
                let rd = p.gpr()?;
                p.expect(",")?;
                let v = p.cval()?;
                Instr::Mov { rd, v }
            }
            "ldG" | "ldB" | "stG" | "stB" => {
                let color = Color::from_letter(mn.chars().last().expect("len 3")).expect("G|B");
                let rd = p.gpr()?;
                p.expect(",")?;
                let rs = p.gpr()?;
                if mn.starts_with("ld") {
                    Instr::Ld { color, rd, rs }
                } else {
                    Instr::St { color, rd, rs }
                }
            }
            "bzG" | "bzB" => {
                let color = Color::from_letter(mn.chars().last().expect("len 3")).expect("G|B");
                let rz = p.gpr()?;
                p.expect(",")?;
                let rd = p.gpr()?;
                Instr::Bz { color, rz, rd }
            }
            "jmpG" | "jmpB" => {
                let color = Color::from_letter(mn.chars().last().expect("len 4")).expect("G|B");
                let rd = p.gpr()?;
                Instr::Jmp { color, rd }
            }
            other => {
                let op = BinOp::from_mnemonic(other)
                    .ok_or_else(|| AsmError::new(line, format!("unknown mnemonic {other}")))?;
                let rd = p.gpr()?;
                p.expect(",")?;
                let rs = p.gpr()?;
                p.expect(",")?;
                let src2 = if p.peek_gpr() {
                    OpSrc::Reg(p.gpr()?)
                } else {
                    OpSrc::Imm(p.cval()?)
                };
                Instr::Op { op, rd, rs, src2 }
            }
        };
        p.finish()?;
        Ok(instr)
    }

    fn parse_precond(
        &mut self,
        line: usize,
        toks: &[Tok],
        labels: &BTreeMap<String, i64>,
        addr: i64,
    ) -> Result<CodeTy, AsmError> {
        let mut p = Parser {
            arena: self.arena,
            toks,
            pos: 0,
            line,
            labels,
        };
        p.expect("{")?;
        while p.peek_punct(";") {
            p.expect(";")?;
        }
        let mut delta: Vec<(talft_logic::VarId, Kind)> = Vec::new();
        let mut facts = Vec::new();
        let mut regs = RegFileTy::new();
        let mut queue = Vec::new();
        let mut mem: Option<ExprId> = None;
        let mut saw_d = false;
        let mut saw_pcg = false;
        let mut saw_pcb = false;

        while !p.peek_punct("}") {
            if p.peek_ident("forall") {
                p.ident()?;
                loop {
                    let name = p.ident()?;
                    p.expect(":")?;
                    let kw = p.ident()?;
                    let kind = match kw.as_str() {
                        "int" => Kind::Int,
                        "mem" => Kind::Mem,
                        other => return Err(AsmError::new(line, format!("unknown kind {other}"))),
                    };
                    let v = p.arena.var_id(&name);
                    delta.push((v, kind));
                    if p.peek_punct(",") {
                        p.expect(",")?;
                    } else {
                        break;
                    }
                }
            } else if p.peek_ident("fact") {
                p.ident()?;
                facts.push(p.fact()?);
            } else if p.peek_ident("queue") {
                p.ident()?;
                p.expect(":")?;
                p.expect("[")?;
                while !p.peek_punct("]") {
                    p.expect("(")?;
                    let d = p.expr()?;
                    p.expect(",")?;
                    let v = p.expr()?;
                    p.expect(")")?;
                    queue.push((d, v));
                    if p.peek_punct(",") {
                        p.expect(",")?;
                    }
                }
                p.expect("]")?;
            } else if p.peek_ident("mem") {
                p.ident()?;
                p.expect(":")?;
                mem = Some(p.expr()?);
            } else {
                // register binding: REG ':' regty
                let rname = p.ident()?;
                let reg = Reg::parse(&rname)
                    .ok_or_else(|| AsmError::new(line, format!("unknown register {rname}")))?;
                p.expect(":")?;
                let t = p.reg_ty()?;
                match reg {
                    Reg::Dst => saw_d = true,
                    Reg::Pc(Color::Green) => saw_pcg = true,
                    Reg::Pc(Color::Blue) => saw_pcb = true,
                    Reg::Gpr(_) => {}
                }
                regs.set(reg, t);
            }
            while p.peek_punct(";") {
                p.expect(";")?;
            }
        }
        p.expect("}")?;
        p.finish()?;

        // Defaults.
        if !saw_d {
            let zero = p.arena.int(0);
            regs.set(Reg::Dst, RegTy::int(Color::Green, zero));
        }
        if !saw_pcg {
            let a = p.arena.int(addr);
            regs.set(Reg::Pc(Color::Green), RegTy::int(Color::Green, a));
        }
        if !saw_pcb {
            let a = p.arena.int(addr);
            regs.set(Reg::Pc(Color::Blue), RegTy::int(Color::Blue, a));
        }
        let mem = match mem {
            Some(m) => m,
            None => {
                let v = p.arena.fresh_var("mem");
                delta.push((v, Kind::Mem));
                p.arena.var_expr(v)
            }
        };
        Ok(CodeTy {
            delta,
            facts,
            regs,
            queue,
            mem,
        })
    }
}

// ---------------------------------------------------------------------------
// Token-stream parser with expression grammar
// ---------------------------------------------------------------------------

struct Parser<'t, 'a> {
    arena: &'a mut ExprArena,
    toks: &'t [Tok],
    pos: usize,
    line: usize,
    labels: &'t BTreeMap<String, i64>,
}

impl Parser<'_, '_> {
    fn err(&self, msg: impl Into<String>) -> AsmError {
        AsmError::new(self.line, msg)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Result<Tok, AsmError> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| AsmError::new(self.line, "unexpected end of line"))?;
        self.pos += 1;
        Ok(t)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn finish(&self) -> Result<(), AsmError> {
        if self.at_end() {
            Ok(())
        } else {
            Err(self.err("trailing tokens"))
        }
    }

    fn peek_punct(&self, p: &str) -> bool {
        matches!(self.peek(), Some(Tok::Punct(q)) if *q == p)
    }

    fn peek_ident(&self, s: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(w)) if w == s)
    }

    fn peek_gpr(&self) -> bool {
        matches!(self.peek(), Some(Tok::Ident(w)) if Reg::parse(w).is_some())
    }

    fn expect(&mut self, p: &str) -> Result<(), AsmError> {
        match self.next()? {
            Tok::Punct(q) if q == p => Ok(()),
            t => Err(self.err(format!("expected '{p}', found {t:?}"))),
        }
    }

    fn expect_ident(&mut self, s: &str) -> Result<(), AsmError> {
        match self.next()? {
            Tok::Ident(w) if w == s => Ok(()),
            t => Err(self.err(format!("expected '{s}', found {t:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String, AsmError> {
        match self.next()? {
            Tok::Ident(w) => Ok(w),
            t => Err(self.err(format!("expected identifier, found {t:?}"))),
        }
    }

    fn int(&mut self) -> Result<i64, AsmError> {
        match self.next()? {
            Tok::Int(n) => Ok(n),
            t => Err(self.err(format!("expected integer, found {t:?}"))),
        }
    }

    fn gpr(&mut self) -> Result<Gpr, AsmError> {
        let name = self.ident()?;
        match Reg::parse(&name) {
            Some(Reg::Gpr(g)) => Ok(g),
            _ => Err(self.err(format!("expected general register, found {name}"))),
        }
    }

    /// `G 5`, `B -3`, `G @label`.
    fn cval(&mut self) -> Result<CVal, AsmError> {
        let c = self.ident()?;
        let color = c
            .chars()
            .next()
            .filter(|_| c.len() == 1)
            .and_then(Color::from_letter)
            .ok_or_else(|| self.err(format!("expected color G|B, found {c}")))?;
        if self.peek_punct("@") {
            self.expect("@")?;
            let l = self.ident()?;
            let addr = self
                .labels
                .get(&l)
                .copied()
                .ok_or_else(|| self.err(format!("unknown label @{l}")))?;
            Ok(CVal::new(color, addr))
        } else if self.peek_punct("-") {
            self.expect("-")?;
            Ok(CVal::new(color, self.int()?.wrapping_neg()))
        } else {
            Ok(CVal::new(color, self.int()?))
        }
    }

    /// `int` | `code @L` | bty `ref`* | `(` bty `)`.
    fn basic_ty(&mut self) -> Result<BasicTy, AsmError> {
        let mut t = if self.peek_punct("(") {
            self.expect("(")?;
            let t = self.basic_ty()?;
            self.expect(")")?;
            t
        } else {
            match self.ident()?.as_str() {
                "int" => BasicTy::Int,
                "code" => {
                    self.expect("@")?;
                    let l = self.ident()?;
                    let addr = self
                        .labels
                        .get(&l)
                        .copied()
                        .ok_or_else(|| self.err(format!("unknown label @{l}")))?;
                    BasicTy::Code(addr)
                }
                other => return Err(self.err(format!("unknown basic type {other}"))),
            }
        };
        while self.peek_ident("ref") {
            self.ident()?;
            t = t.reference();
        }
        Ok(t)
    }

    /// `top` | `(C, bty, expr)` | `expr == 0 => (C, bty, expr)`.
    fn reg_ty(&mut self) -> Result<RegTy, AsmError> {
        if self.peek_ident("top") {
            self.ident()?;
            return Ok(RegTy::Top);
        }
        // Look ahead: a conditional type starts with an expression followed
        // by `== 0 =>`. We try the value form first when it starts with '('
        // followed by a color letter and a comma.
        if self.peek_punct("(") {
            let save = self.pos;
            self.expect("(")?;
            if let Some(Tok::Ident(c)) = self.peek() {
                if c.len() == 1 && Color::from_letter(c.chars().next().expect("len 1")).is_some() {
                    let color =
                        Color::from_letter(c.chars().next().expect("len 1")).expect("checked");
                    self.next()?;
                    if self.peek_punct(",") {
                        self.expect(",")?;
                        let basic = self.basic_ty()?;
                        self.expect(",")?;
                        let expr = self.expr()?;
                        self.expect(")")?;
                        return Ok(RegTy::Val(ValTy::new(color, basic, expr)));
                    }
                }
            }
            self.pos = save;
        }
        // Conditional form.
        let guard = self.expr()?;
        self.expect("==")?;
        let z = self.int()?;
        if z != 0 {
            return Err(self.err("conditional guard must compare against 0"));
        }
        self.expect("=>")?;
        self.expect("(")?;
        let c = self.ident()?;
        let color = c
            .chars()
            .next()
            .filter(|_| c.len() == 1)
            .and_then(Color::from_letter)
            .ok_or_else(|| self.err(format!("expected color, found {c}")))?;
        self.expect(",")?;
        let basic = self.basic_ty()?;
        self.expect(",")?;
        let expr = self.expr()?;
        self.expect(")")?;
        Ok(RegTy::Cond {
            guard,
            inner: ValTy::new(color, basic, expr),
        })
    }

    /// A fact: `expr REL expr` with REL ∈ `== != >= <= < >`.
    fn fact(&mut self) -> Result<FactAnn, AsmError> {
        let lhs = self.expr()?;
        let rel = match self.next()? {
            Tok::Punct(p) => p,
            t => return Err(self.err(format!("expected relation, found {t:?}"))),
        };
        let rhs = self.expr()?;
        let diff = self.arena.sub(lhs, rhs);
        Ok(match rel {
            "==" => FactAnn::EqZero(diff),
            "!=" => FactAnn::NeqZero(diff),
            ">=" => FactAnn::Ge0(diff),
            "<=" => {
                let neg = self.arena.sub(rhs, lhs);
                FactAnn::Ge0(neg)
            }
            ">" => {
                let one = self.arena.int(1);
                let e = self.arena.sub(diff, one);
                FactAnn::Ge0(e)
            }
            "<" => {
                let one = self.arena.int(1);
                let neg = self.arena.sub(rhs, lhs);
                let e = self.arena.sub(neg, one);
                FactAnn::Ge0(e)
            }
            other => return Err(self.err(format!("unknown relation {other}"))),
        })
    }

    // Expression grammar: sum of products with function atoms.
    fn expr(&mut self) -> Result<ExprId, AsmError> {
        let mut acc = self.prod()?;
        loop {
            if self.peek_punct("+") {
                self.expect("+")?;
                let rhs = self.prod()?;
                acc = self.arena.add(acc, rhs);
            } else if self.peek_punct("-") {
                self.expect("-")?;
                let rhs = self.prod()?;
                acc = self.arena.sub(acc, rhs);
            } else {
                return Ok(acc);
            }
        }
    }

    fn prod(&mut self) -> Result<ExprId, AsmError> {
        let mut acc = self.atom()?;
        while self.peek_punct("*") {
            self.expect("*")?;
            let rhs = self.atom()?;
            acc = self.arena.mul(acc, rhs);
        }
        Ok(acc)
    }

    fn atom(&mut self) -> Result<ExprId, AsmError> {
        match self.next()? {
            Tok::Int(n) => Ok(self.arena.int(n)),
            Tok::Punct("(") => {
                let e = self.expr()?;
                self.expect(")")?;
                Ok(e)
            }
            Tok::Punct("@") => {
                let l = self.ident()?;
                let addr = self
                    .labels
                    .get(&l)
                    .copied()
                    .ok_or_else(|| self.err(format!("unknown label @{l}")))?;
                Ok(self.arena.int(addr))
            }
            Tok::Ident(w) => match w.as_str() {
                "emp" => Ok(self.arena.emp()),
                "sel" => {
                    self.expect("(")?;
                    let m = self.expr()?;
                    self.expect(",")?;
                    let a = self.expr()?;
                    self.expect(")")?;
                    Ok(self.arena.sel(m, a))
                }
                "upd" => {
                    self.expect("(")?;
                    let m = self.expr()?;
                    self.expect(",")?;
                    let a = self.expr()?;
                    self.expect(",")?;
                    let v = self.expr()?;
                    self.expect(")")?;
                    Ok(self.arena.upd(m, a, v))
                }
                f if BinOp::from_mnemonic(f).is_some() && self.peek_punct("(") => {
                    let op = BinOp::from_mnemonic(f).expect("checked");
                    self.expect("(")?;
                    let a = self.expr()?;
                    self.expect(",")?;
                    let b = self.expr()?;
                    self.expect(")")?;
                    Ok(self.arena.bin(op, a, b))
                }
                name => Ok(self.arena.var(name)),
            },
            t => Err(self.err(format!("unexpected token {t:?} in expression"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STORE5: &str = r#"
// store 5 to the output cell, redundantly
.data
region out at 4096 len 1 : int output

.code
main:
  .pre { mem: m; forall m:mem; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  mov r3, B 5
  mov r4, B 4096
  stB r4, r3
  halt
"#;

    #[test]
    fn assembles_paper_store_example() {
        let asm = assemble(STORE5).expect("assembles");
        let p = &asm.program;
        assert_eq!(p.code_len(), 7);
        assert_eq!(p.entry, 1);
        assert_eq!(
            p.instr(1),
            Some(&Instr::Mov {
                rd: Gpr(1),
                v: CVal::green(5)
            })
        );
        assert_eq!(
            p.instr(3),
            Some(&Instr::St {
                color: Color::Green,
                rd: Gpr(2),
                rs: Gpr(1)
            })
        );
        assert_eq!(
            p.instr(6),
            Some(&Instr::St {
                color: Color::Blue,
                rd: Gpr(4),
                rs: Gpr(3)
            })
        );
        assert_eq!(p.instr(7), Some(&Instr::Halt));
        assert!(p.region("out").is_some_and(|r| r.output));
    }

    #[test]
    fn pre_defaults_fill_d_pc_and_mem() {
        let asm = assemble(STORE5).expect("assembles");
        let pre = asm.program.precond(1).expect("annotated");
        // d defaults to (G, int, 0)
        match pre.regs.get(Reg::Dst) {
            RegTy::Val(v) => {
                assert_eq!(v.color, Color::Green);
                assert_eq!(asm.arena.display(v.expr), "0");
            }
            other => panic!("unexpected d type {other:?}"),
        }
        // pcs default to the label's address
        match pre.regs.get(Reg::Pc(Color::Green)) {
            RegTy::Val(v) => assert_eq!(asm.arena.display(v.expr), "1"),
            other => panic!("unexpected pcG type {other:?}"),
        }
        assert!(pre.queue.is_empty());
    }

    #[test]
    fn label_immediates_resolve_forward() {
        let src = r#"
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G @loop
  mov r2, B @loop
  jmpG r1
  jmpB r2
loop:
  .pre { forall m:mem; mem: m; }
  halt
"#;
        let asm = assemble(src).expect("assembles");
        assert_eq!(asm.program.label_addr("loop"), Some(5));
        assert_eq!(
            asm.program.instr(1),
            Some(&Instr::Mov {
                rd: Gpr(1),
                v: CVal::green(5)
            })
        );
    }

    #[test]
    fn precondition_full_syntax_parses() {
        let src = r#"
.code
main:
  .pre {
    forall x:int, n:int, m:mem;
    fact x >= 0;
    fact x < n;
    r1: (G, int, x + 1);
    r2: (B, int ref, 4096);
    r3: (G, code @main, @main);
    r7: top;
    d: slt(x, n) == 0 => (G, code @main, @main);
    queue: [(x, x * 2)];
    mem: upd(m, 4096, x);
  }
  halt
"#;
        let asm = assemble(src).expect("assembles");
        let pre = asm.program.precond(1).expect("annotated");
        assert_eq!(pre.delta.len(), 3);
        assert_eq!(pre.facts.len(), 2);
        assert_eq!(pre.queue.len(), 1);
        match pre.regs.get(Reg::r(2)) {
            RegTy::Val(v) => {
                assert_eq!(v.color, Color::Blue);
                assert_eq!(v.basic, BasicTy::Int.reference());
            }
            other => panic!("unexpected type {other:?}"),
        }
        match pre.regs.get(Reg::r(3)) {
            RegTy::Val(v) => assert_eq!(v.basic, BasicTy::Code(1)),
            other => panic!("unexpected type {other:?}"),
        }
        assert!(matches!(pre.regs.get(Reg::Dst), RegTy::Cond { .. }));
        assert_eq!(pre.regs.get(Reg::r(7)), &RegTy::Top);
    }

    #[test]
    fn alu_and_branch_instructions_parse() {
        let src = r#"
.code
main:
  .pre { forall m:mem; mem: m; }
  add r1, r2, r3
  sub r1, r2, G 7
  mul r4, r4, B -2
  slt r5, r1, r2
  bzG r5, r6
  bzB r7, r8
  halt
"#;
        let asm = assemble(src).expect("assembles");
        let p = &asm.program;
        assert_eq!(
            p.instr(2),
            Some(&Instr::Op {
                op: BinOp::Sub,
                rd: Gpr(1),
                rs: Gpr(2),
                src2: OpSrc::Imm(CVal::green(7)),
            })
        );
        assert_eq!(
            p.instr(3),
            Some(&Instr::Op {
                op: BinOp::Mul,
                rd: Gpr(4),
                rs: Gpr(4),
                src2: OpSrc::Imm(CVal::blue(-2)),
            })
        );
        assert_eq!(
            p.instr(5),
            Some(&Instr::Bz {
                color: Color::Green,
                rz: Gpr(5),
                rd: Gpr(6)
            })
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src = ".code\nmain:\n  .pre { mem: m; forall m:mem; }\n  bogus r1, r2\n";
        let err = assemble(src).expect_err("bad mnemonic");
        assert_eq!(err.line, 4);
        assert!(err.msg.contains("bogus"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let src = ".code\nmain:\n  .pre { forall m:mem; mem: m; }\n  halt\nmain:\n  halt\n";
        let err = assemble(src).expect_err("duplicate");
        assert!(err.msg.contains("duplicate label"));
    }

    #[test]
    fn unknown_label_rejected() {
        let src = ".code\nmain:\n  .pre { forall m:mem; mem: m; }\n  mov r1, G @nowhere\n  halt\n";
        let err = assemble(src).expect_err("unknown label");
        assert!(err.msg.contains("nowhere"));
    }

    #[test]
    fn entry_directive_overrides_main() {
        let src = r#"
.entry start
.code
other:
  .pre { forall m:mem; mem: m; }
  halt
start:
  .pre { forall m:mem; mem: m; }
  halt
"#;
        let asm = assemble(src).expect("assembles");
        assert_eq!(asm.program.entry, 2);
    }

    #[test]
    fn negative_literals_vs_subtraction() {
        let src = r#"
.code
main:
  .pre { forall x:int, m:mem; r1: (G, int, x - 1); r2: (G, int, -1); mem: m; }
  halt
"#;
        let asm = assemble(src).expect("assembles");
        let pre = asm.program.precond(1).expect("annotated");
        let r1 = pre.regs.get(Reg::r(1)).as_val().expect("val").expr;
        assert_eq!(asm.arena.display(r1), "(sub x 1)");
        let r2 = pre.regs.get(Reg::r(2)).as_val().expect("val").expr;
        assert_eq!(asm.arena.display(r2), "-1");
    }
}
