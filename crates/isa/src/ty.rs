//! TAL_FT type syntax (paper Figure 5).
//!
//! ```text
//! zap tags      Z  ::= · | c
//! basic types   b  ::= int | T → void | b ref
//! reg types     t  ::= (c, b, E) | E' = 0 ⇒ (c, b, E)
//! regfile types Γ  ::= · | Γ, a ↦ t
//! result types  RT ::= T | void
//! heap typing   Ψ  ::= · | Ψ, n : b
//! static ctx    T  ::= Δ; Γ; (Ed,Es)*; Em
//! ```
//!
//! Two engineering choices (both documented in DESIGN.md):
//!
//! 1. **Code types are label references.** `T → void` is represented as
//!    [`BasicTy::Code`]`(addr)` pointing at the labeled block whose
//!    precondition is `T`. This makes the (self-)recursive code types of
//!    loops representable without cyclic data, and makes code-type equality
//!    (needed by the `jmpB`/`bzB` rules) a constant-time address comparison.
//! 2. **`Δ` carries facts.** Besides kind bindings, a precondition may state
//!    path facts (equalities/disequalities/linear inequalities), which is how
//!    `bzB` fall-throughs refine the conditional type of `d` and how array
//!    bounds flow to the region-coercion rule.

use std::collections::BTreeMap;
use std::fmt;

use talft_logic::{ExprArena, ExprId, Kind, KindCtx, VarId};

use crate::color::Color;
use crate::reg::Reg;

/// Zap tag `Z ::= · | c` — which color (if any) may have been corrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ZapTag {
    /// No fault has occurred (`·`).
    #[default]
    None,
    /// A single fault may have corrupted values of this color.
    Zapped(Color),
}

impl ZapTag {
    /// Whether values of color `c` are suspect under this tag.
    #[must_use]
    pub fn zaps(self, c: Color) -> bool {
        matches!(self, ZapTag::Zapped(z) if z == c)
    }
}

impl fmt::Display for ZapTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZapTag::None => write!(f, "·"),
            ZapTag::Zapped(c) => write!(f, "{c}"),
        }
    }
}

/// Basic types `b ::= int | T → void | b ref`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BasicTy {
    /// Any machine word.
    Int,
    /// A code pointer to the block labeled at the given address; the block's
    /// precondition (stored in the program) is the `T` of `T → void`.
    Code(i64),
    /// A pointer to a value of the inner type.
    Ref(Box<BasicTy>),
}

impl BasicTy {
    /// `b ref`.
    #[must_use]
    pub fn reference(self) -> BasicTy {
        BasicTy::Ref(Box::new(self))
    }

    /// If this is `b ref`, the pointee type.
    #[must_use]
    pub fn deref(&self) -> Option<&BasicTy> {
        match self {
            BasicTy::Ref(b) => Some(b),
            _ => None,
        }
    }
}

impl fmt::Display for BasicTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BasicTy::Int => write!(f, "int"),
            BasicTy::Code(n) => write!(f, "code@{n}"),
            BasicTy::Ref(b) => match **b {
                BasicTy::Ref(_) => write!(f, "({b}) ref"),
                _ => write!(f, "{b} ref"),
            },
        }
    }
}

/// The value half of a register type: `(c, b, E)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ValTy {
    /// Color of values of this type.
    pub color: Color,
    /// Basic (shape) type.
    pub basic: BasicTy,
    /// Singleton static expression: absent faults, the value equals `[[E]]`.
    pub expr: ExprId,
}

impl ValTy {
    /// Construct `(c, b, E)`.
    #[must_use]
    pub fn new(color: Color, basic: BasicTy, expr: ExprId) -> Self {
        Self { color, basic, expr }
    }
}

/// Register types `t ::= (c,b,E) | E'=0 ⇒ (c,b,E) | ⊤`.
///
/// `Top` is the standard TAL "unconstrained register" weakening: registers
/// not mentioned by a precondition can hold anything (of any color) and can
/// never be read. The paper's Γ is total; `Top` is how we write the rows a
/// compiler would fill with fresh universally-quantified variables, without
/// forcing a color on dead registers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RegTy {
    /// `(c, b, E)` — a value type.
    Val(ValTy),
    /// `E' = 0 ⇒ (c, b, E)` — a conditional type (rule `cond-t`): if the
    /// guard is zero the register has the inner type, otherwise it holds 0.
    Cond {
        /// The guard expression `E'`.
        guard: ExprId,
        /// The type held when the guard is zero.
        inner: ValTy,
    },
    /// Unconstrained (junk) register.
    Top,
}

impl RegTy {
    /// Shorthand for `(c, int, E)`.
    #[must_use]
    pub fn int(color: Color, expr: ExprId) -> RegTy {
        RegTy::Val(ValTy::new(color, BasicTy::Int, expr))
    }

    /// The value type, if this is an unconditional value type.
    #[must_use]
    pub fn as_val(&self) -> Option<&ValTy> {
        match self {
            RegTy::Val(v) => Some(v),
            _ => None,
        }
    }
}

/// A fact carried by a precondition (our `Δ`-extension; DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FactAnn {
    /// `E = 0`.
    EqZero(ExprId),
    /// `E ≠ 0`.
    NeqZero(ExprId),
    /// `E ≥ 0`.
    Ge0(ExprId),
}

/// Register-file typing `Γ`: a finite map from registers to types; GPRs not
/// present are implicitly [`RegTy::Top`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegFileTy {
    regs: BTreeMap<Reg, RegTy>,
}

impl RegFileTy {
    /// Empty Γ (everything `Top`).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Set a register's type.
    pub fn set(&mut self, r: Reg, t: RegTy) {
        self.regs.insert(r, t);
    }

    /// Remove a register's entry (back to `Top`).
    pub fn clear(&mut self, r: Reg) {
        self.regs.remove(&r);
    }

    /// Get a register's type (`Top` if absent).
    #[must_use]
    pub fn get(&self, r: Reg) -> &RegTy {
        self.regs.get(&r).unwrap_or(&RegTy::Top)
    }

    /// Iterate over explicitly typed registers.
    pub fn iter(&self) -> impl Iterator<Item = (Reg, &RegTy)> + '_ {
        self.regs.iter().map(|(&r, t)| (r, t))
    }

    /// Number of explicitly typed registers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Whether no register is explicitly typed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }
}

/// A static context / code-type body `T = Δ; Γ; (Ed,Es)*; Em`
/// (precondition of a labeled block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeTy {
    /// `Δ` kind bindings: the universally quantified expression variables.
    pub delta: Vec<(VarId, Kind)>,
    /// Path facts assumed by this block (extension; see module docs).
    pub facts: Vec<FactAnn>,
    /// `Γ` — register-file typing.
    pub regs: RegFileTy,
    /// `(Ed, Es)*` — static description of the store queue, front (newest)
    /// first, matching the machine's queue orientation.
    pub queue: Vec<(ExprId, ExprId)>,
    /// `Em` — static description of value memory.
    pub mem: ExprId,
}

impl CodeTy {
    /// Build the kind context `Δ` for this code type.
    #[must_use]
    pub fn kind_ctx(&self) -> KindCtx {
        let mut ctx = KindCtx::new();
        for &(v, k) in &self.delta {
            ctx.bind(v, k);
        }
        ctx
    }

    /// Pretty-print with an arena for expressions.
    #[must_use]
    pub fn display(&self, arena: &ExprArena) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        if !self.delta.is_empty() {
            write!(s, "forall ").unwrap();
            for (i, (v, k)) in self.delta.iter().enumerate() {
                if i > 0 {
                    write!(s, ", ").unwrap();
                }
                write!(s, "{}:{k}", arena.var_name(*v)).unwrap();
            }
            write!(s, ". ").unwrap();
        }
        for f in &self.facts {
            match f {
                FactAnn::EqZero(e) => write!(s, "fact {} == 0; ", arena.display(*e)).unwrap(),
                FactAnn::NeqZero(e) => write!(s, "fact {} != 0; ", arena.display(*e)).unwrap(),
                FactAnn::Ge0(e) => write!(s, "fact {} >= 0; ", arena.display(*e)).unwrap(),
            }
        }
        write!(s, "{{").unwrap();
        for (i, (r, t)) in self.regs.iter().enumerate() {
            if i > 0 {
                write!(s, ", ").unwrap();
            }
            match t {
                RegTy::Val(v) => write!(
                    s,
                    "{r}: ({}, {}, {})",
                    v.color,
                    v.basic,
                    arena.display(v.expr)
                )
                .unwrap(),
                RegTy::Cond { guard, inner } => write!(
                    s,
                    "{r}: {} = 0 => ({}, {}, {})",
                    arena.display(*guard),
                    inner.color,
                    inner.basic,
                    arena.display(inner.expr)
                )
                .unwrap(),
                RegTy::Top => write!(s, "{r}: top").unwrap(),
            }
        }
        write!(s, "}} queue [").unwrap();
        for (i, (d, v)) in self.queue.iter().enumerate() {
            if i > 0 {
                write!(s, ", ").unwrap();
            }
            write!(s, "({}, {})", arena.display(*d), arena.display(*v)).unwrap();
        }
        write!(s, "] mem {}", arena.display(self.mem)).unwrap();
        s
    }
}

/// Result types `RT ::= T | void` — what instruction typing yields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResultTy {
    /// Control falls through with this postcondition.
    Post(CodeTy),
    /// Control does not proceed past the instruction.
    Void,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ty_display_and_deref() {
        let t = BasicTy::Int.reference();
        assert_eq!(t.to_string(), "int ref");
        assert_eq!(t.deref(), Some(&BasicTy::Int));
        let tt = t.clone().reference();
        assert_eq!(tt.to_string(), "(int ref) ref");
        assert_eq!(BasicTy::Code(42).to_string(), "code@42");
        assert_eq!(BasicTy::Int.deref(), None);
    }

    #[test]
    fn regfile_defaults_to_top() {
        let mut g = RegFileTy::new();
        assert_eq!(g.get(Reg::r(3)), &RegTy::Top);
        let mut arena = ExprArena::new();
        let e = arena.int(0);
        g.set(Reg::Dst, RegTy::int(Color::Green, e));
        assert!(g.get(Reg::Dst).as_val().is_some());
        g.clear(Reg::Dst);
        assert_eq!(g.get(Reg::Dst), &RegTy::Top);
    }

    #[test]
    fn zap_tag_matching() {
        assert!(!ZapTag::None.zaps(Color::Green));
        assert!(ZapTag::Zapped(Color::Green).zaps(Color::Green));
        assert!(!ZapTag::Zapped(Color::Green).zaps(Color::Blue));
    }

    #[test]
    fn code_ty_displays() {
        let mut arena = ExprArena::new();
        let x = arena.var_id("x");
        let xe = arena.var_expr(x);
        let m = arena.var_id("m");
        let me = arena.var_expr(m);
        let mut regs = RegFileTy::new();
        regs.set(Reg::r(1), RegTy::int(Color::Green, xe));
        let t = CodeTy {
            delta: vec![(x, Kind::Int), (m, Kind::Mem)],
            facts: vec![FactAnn::Ge0(xe)],
            regs,
            queue: vec![],
            mem: me,
        };
        let s = t.display(&arena);
        assert!(s.contains("forall x:int, m:mem"));
        assert!(s.contains("fact x >= 0"));
        assert!(s.contains("r1: (G, int, x)"));
        assert!(s.contains("mem m"));
    }
}
