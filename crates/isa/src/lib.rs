//! Instruction set, machine-state syntax, type syntax, and assembler for
//! TAL_FT — *Fault-tolerant Typed Assembly Language* (Perry et al.,
//! PLDI 2007), Figures 1 and 5.
//!
//! The ISA is a small RISC core extended with the paper's fault-tolerance
//! features: color-tagged values, split green/blue stores guarded by a
//! hardware store queue, and split green/blue control transfers guarded by
//! the destination register `d`.
//!
//! * [`Color`], [`CVal`] — the green/blue computation colors ([`color`]);
//! * [`Reg`], [`Gpr`] — register names ([`reg`]);
//! * [`Instr`] — instructions ([`instr`]);
//! * [`BasicTy`], [`RegTy`], [`CodeTy`] — the type syntax of Figure 5 ([`ty`]);
//! * [`Program`], [`Region`] — code + typed data regions ([`program`]);
//! * [`assemble`] — the `.talft` textual assembler ([`asm`]).

#![warn(missing_docs)]

pub mod asm;
pub mod color;
pub mod instr;
pub mod print;
pub mod program;
pub mod reg;
pub mod span;
pub mod ty;

pub use asm::{assemble, AsmError, Assembled};
pub use color::{CVal, Color};
pub use instr::{Instr, OpSrc};
pub use print::{disassemble, print_program};
pub use program::{Program, ProgramError, Region, DATA_BASE};
pub use reg::{Gpr, Reg};
pub use span::Span;
pub use ty::{BasicTy, CodeTy, FactAnn, RegFileTy, RegTy, ResultTy, ValTy, ZapTag};
