//! Source spans for diagnostics.
//!
//! A [`Span`] names a code location three ways at once: the absolute code
//! address (what the machine and checker use), the enclosing block label
//! plus instruction offset (what a human reads — `main+3`), and, when the
//! program came from a `.talft` source file, the 1-based source line. The
//! assembler records a per-instruction line table in
//! [`crate::asm::Assembled::lines`]; compiled programs have no source text,
//! so their spans carry label + offset only.

use std::fmt;

use crate::program::Program;

/// A resolved source location for one code address.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Span {
    /// Absolute code address (1-based; 0 = whole program).
    pub addr: i64,
    /// Nearest label at or before `addr`, when one exists.
    pub label: Option<String>,
    /// Instruction offset from that label (0 = the labeled instruction).
    pub offset: usize,
    /// 1-based source line in the `.talft` file, when known.
    pub line: Option<u32>,
}

impl Span {
    /// Resolve the span for a code address against a program's label table.
    ///
    /// The label is the nearest one at or before `addr` (blocks are runs of
    /// instructions following a label), so the rendering is `label+offset`.
    /// Addresses before the first label, or outside code memory, get an
    /// address-only span.
    #[must_use]
    pub fn locate(program: &Program, addr: i64) -> Self {
        let mut best: Option<(&str, i64)> = None;
        if program.is_code_addr(addr) {
            for (name, &a) in &program.labels {
                if a <= addr && best.is_none_or(|(_, b)| a > b) {
                    best = Some((name.as_str(), a));
                }
            }
        }
        Span {
            addr,
            label: best.map(|(n, _)| n.to_owned()),
            offset: best.map_or(0, |(_, a)| usize::try_from(addr - a).unwrap_or(0)),
            line: None,
        }
    }

    /// Attach a source line from an assembler line table (`lines[addr-1]`).
    #[must_use]
    pub fn with_line_table(mut self, lines: &[u32]) -> Self {
        if self.addr >= 1 {
            if let Some(&l) = lines.get(usize::try_from(self.addr - 1).unwrap_or(usize::MAX)) {
                self.line = Some(l);
            }
        }
        self
    }

    /// The `label+offset` rendering when a label is known (`main+3`).
    #[must_use]
    pub fn block_pos(&self) -> Option<String> {
        self.label.as_ref().map(|l| {
            if self.offset == 0 {
                l.clone()
            } else {
                format!("{l}+{}", self.offset)
            }
        })
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.block_pos() {
            Some(pos) => write!(f, "{pos} (addr {})", self.addr)?,
            None => write!(f, "addr {}", self.addr)?,
        }
        if let Some(line) = self.line {
            write!(f, ", line {line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    const TWO_BLOCKS: &str = r#"
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 1
  mov r2, B 1
next:
  .pre { forall m:mem; mem: m; }
  halt
"#;

    #[test]
    fn locates_label_and_offset() {
        let asm = assemble(TWO_BLOCKS).expect("assembles");
        let s = Span::locate(&asm.program, 2);
        assert_eq!(s.label.as_deref(), Some("main"));
        assert_eq!(s.offset, 1);
        assert_eq!(s.block_pos().as_deref(), Some("main+1"));
        let s = Span::locate(&asm.program, 3);
        assert_eq!(s.block_pos().as_deref(), Some("next"));
        assert_eq!(s.offset, 0);
    }

    #[test]
    fn line_table_maps_addresses_to_source_lines() {
        let asm = assemble(TWO_BLOCKS).expect("assembles");
        assert_eq!(asm.lines.len(), asm.program.code_len());
        let s = Span::locate(&asm.program, 1).with_line_table(&asm.lines);
        // `mov r1, G 1` is on line 5 of the source (1-based, leading newline).
        assert_eq!(s.line, Some(5));
        assert!(s.to_string().contains("main (addr 1)"));
        assert!(s.to_string().contains("line 5"));
    }

    #[test]
    fn out_of_range_address_is_address_only() {
        let asm = assemble(TWO_BLOCKS).expect("assembles");
        let s = Span::locate(&asm.program, 99);
        assert_eq!(s.label, None);
        assert_eq!(s.to_string(), "addr 99");
    }
}
