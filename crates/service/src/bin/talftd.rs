//! `talftd` — resumable, sharded campaign service (DESIGN.md §11).
//!
//! ```text
//! talftd daemon --spool DIR [--shards N] [--every M] [--k K] [--timeout-secs S]
//!               [--max-jobs J] [--poll-ms P]
//!     Process .wile/.talft jobs dropped into DIR/incoming, streaming
//!     talft.talftd.v1 event lines to stdout. Reports land in DIR/done
//!     (completed/degraded) or DIR/failed.
//!
//! talftd worker --source F --kind wile|talft --shard I --of N --dir D ...
//!     Internal: run one shard with durable checkpoints (spawned by the
//!     daemon; resumes automatically from D/checkpoint-I.json).
//!
//! talftd check FILE [--expect-zero-sdc]
//!     Offline validator: re-prove FILE's merged report bit-for-bit from
//!     its embedded shard parts.
//!
//! talftd smoke --out FILE [--shards N]
//!     CI gate: 4-shard campaign over a suite kernel, SIGKILL one worker
//!     mid-grid, resume, and hard-fail unless the merged report is
//!     bit-identical to a whole-grid in-process run.
//! ```
//!
//! Exit codes: 0 ok / 1 failure / 2 usage.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use talft_obs::Json;
use talft_service::{check_report, serve, smoke, ServiceConfig, Spool};

fn usage() -> ExitCode {
    eprintln!(
        "usage: talftd daemon --spool DIR [--shards N] [--every M] [--k K] \
         [--timeout-secs S] [--max-jobs J] [--poll-ms P]\n\
         \x20      talftd worker --source F --kind wile|talft --shard I --of N --dir D ...\n\
         \x20      talftd check FILE [--expect-zero-sdc]\n\
         \x20      talftd smoke --out FILE [--shards N]"
    );
    ExitCode::from(2)
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == name {
            return it.next().cloned();
        }
        if let Some(v) = a.strip_prefix(&format!("{name}=")) {
            return Some(v.to_owned());
        }
    }
    None
}

fn parsed<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag_value(args, name) {
        None => Ok(default),
        Some(v) => v
            .trim()
            .parse::<T>()
            .map_err(|_| format!("bad value for {name}: {v:?}")),
    }
}

fn stdout_sink() -> impl FnMut(&Json) {
    |j: &Json| println!("{j}")
}

fn daemon(args: &[String]) -> Result<(), String> {
    let spool_dir = flag_value(args, "--spool").ok_or("daemon requires --spool DIR")?;
    let mut cfg = ServiceConfig::default();
    cfg.shards = parsed(args, "--shards", cfg.shards)?;
    cfg.checkpoint_every = parsed(args, "--every", cfg.checkpoint_every)?;
    cfg.fault_order = parsed(args, "--k", cfg.fault_order)?;
    cfg.worker_timeout = Duration::from_secs(parsed(args, "--timeout-secs", 600u64)?);
    cfg.campaign.threads = parsed(args, "--threads", cfg.campaign.threads)?;
    cfg.campaign.stride = parsed(args, "--stride", cfg.campaign.stride)?;
    let max_jobs = flag_value(args, "--max-jobs")
        .map(|v| v.trim().parse::<usize>().map_err(|_| "bad --max-jobs"))
        .transpose()?;
    let poll = Duration::from_millis(parsed(args, "--poll-ms", 500u64)?);
    let spool = Spool::open(&PathBuf::from(spool_dir)).map_err(|e| format!("open spool: {e}"))?;
    let mut sink = stdout_sink();
    let served = serve(&spool, &cfg, &mut sink, poll, max_jobs)?;
    eprintln!("talftd: {served} job(s) processed");
    Ok(())
}

fn check(args: &[String]) -> Result<(), String> {
    let file = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("check requires a report FILE")?;
    let expect_zero = args.iter().any(|a| a == "--expect-zero-sdc");
    let text = std::fs::read_to_string(file).map_err(|e| format!("read {file}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("{file}: {e}"))?;
    let rep = check_report(&json, expect_zero)?;
    eprintln!(
        "talftd check: {} ({}, {} shards, {}/{} plans) OK",
        rep.name,
        rep.status.name(),
        rep.shards,
        rep.covered_plans,
        rep.total_plans
    );
    Ok(())
}

fn run_smoke(args: &[String]) -> Result<(), String> {
    let out = flag_value(args, "--out").ok_or("smoke requires --out FILE")?;
    let shards = parsed(args, "--shards", 4u32)?;
    let mut sink = stdout_sink();
    let rep = smoke(&PathBuf::from(out), shards, &mut sink)?;
    eprintln!(
        "talftd smoke: {} completed, {} plans over {} shards in {} attempt(s); \
         merged report bit-identical to whole-grid run",
        rep.name, rep.total_plans, rep.shards, rep.attempts
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        return usage();
    };
    let rest = &args[1..];
    let result = match cmd {
        "daemon" => daemon(rest),
        "worker" => talft_service::run_worker(rest),
        "check" => check(rest),
        "smoke" => run_smoke(rest),
        "--help" | "-h" | "help" => return usage(),
        other => {
            eprintln!("talftd: unknown subcommand {other:?}");
            return usage();
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("talftd {cmd}: {e}");
            ExitCode::FAILURE
        }
    }
}
