//! `talftd` — the resumable, sharded campaign service (DESIGN.md §11).
//!
//! A campaign grid is the repo's ground truth for Theorem 4, but an
//! in-process batch dies with its process. This crate runs grids as **jobs**
//! over a spool directory: each job's grid is split into N deterministic
//! shards ([`talft_faultsim::ShardSpec`]), every shard runs in a **child
//! worker process** that checkpoints durably every M plans, and the parent
//! supervises the fleet — per-shard timeouts, capped-exponential-backoff
//! retries of transient failures (a retried worker *resumes* from its own
//! checkpoint rather than restarting), and isolation of poisoned shards
//! (a shard that exhausts its retries degrades the job to `Degraded` with
//! the surviving shards' coverage instead of losing the run).
//!
//! The defining invariant is inherited from `talft_faultsim::shard` and
//! enforced end to end: the merged job report is **bit-identical** to a
//! whole-grid in-process run — worker kills, retries, resumes, and shard
//! counts are all invisible in the final report. [`check_report`] re-proves
//! the merge from the embedded shard parts, and [`smoke`] is the CI gate
//! that actually SIGKILLs a worker mid-grid and diffs the resumed result
//! against the whole-grid run.
//!
//! The fault-tolerance ladder, mirroring the paper's own hierarchy (detect,
//! never corrupt):
//!
//! 1. in-process harness panic → retried, then `EngineError` verdict;
//! 2. worker crash/timeout → respawned with backoff, resumes from its
//!    checkpoint, report provably unchanged;
//! 3. retries exhausted → shard poisoned, job `Degraded`, surviving
//!    coverage reported honestly (`covered/total`), never silently;
//! 4. every shard poisoned (or the grid unbuildable) → job `Failed`.
//!
//! Everything on the wire is schema-tagged JSON (`talft.talftd.v1` for job
//! reports and event lines) built on the dep-free `talft_obs::Json`.

#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use talft_faultsim::shard::atomic_write;
use talft_faultsim::{
    golden_run_retrying, grid_fingerprint, merge_shard_reports, merge_surviving_shards,
    multi_fault_plans, run_plan_campaign, single_fault_plans, wire, CampaignCheckpoint,
    CampaignConfig, CampaignReport, FaultPlan, Golden, RetryPolicy, ShardControl, ShardOutcome,
    ShardPart, ShardSpec,
};
use talft_machine::OobLoadPolicy;
use talft_obs::{Json, LazyCounter};

static JOBS_COMPLETED: LazyCounter = LazyCounter::new("talftd.jobs.completed");
static JOBS_DEGRADED: LazyCounter = LazyCounter::new("talftd.jobs.degraded");
static JOBS_FAILED: LazyCounter = LazyCounter::new("talftd.jobs.failed");
static WORKER_SPAWNS: LazyCounter = LazyCounter::new("talftd.worker.spawns");
static WORKER_RETRIES: LazyCounter = LazyCounter::new("talftd.worker.retries");
static WORKER_TIMEOUTS: LazyCounter = LazyCounter::new("talftd.worker.timeouts");
static SHARDS_POISONED: LazyCounter = LazyCounter::new("talftd.shards.poisoned");

/// Schema tag on job reports and event lines.
pub const JOB_SCHEMA: &str = "talft.talftd.v1";

/// Crash-injection environment variable (tests / smoke): a worker whose
/// shard matches [`ENV_CRASH_SHARD`] aborts after writing this many
/// checkpoints. Unless [`ENV_CRASH_ALWAYS`] is set, the injection only
/// fires on a *fresh* start — a resumed worker runs to completion, which is
/// exactly the transient-crash shape the retry ladder exists for.
pub const ENV_CRASH_AFTER: &str = "TALFT_SHARD_CRASH_AFTER";
/// Which shard index the crash injection targets (default 0).
pub const ENV_CRASH_SHARD: &str = "TALFT_SHARD_CRASH_SHARD";
/// Make the crash injection fire on resumed runs too (a *permanent* fault:
/// the shard poisons once retries are exhausted).
pub const ENV_CRASH_ALWAYS: &str = "TALFT_SHARD_CRASH_ALWAYS";

/// What kind of source a job file holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Wile source, compiled to the *protected* TAL_FT program.
    Wile,
    /// Hand-written `.talft` assembly.
    Talft,
}

impl JobKind {
    /// Classify a job file by extension (`.wile` / `.talft`).
    #[must_use]
    pub fn from_path(path: &Path) -> Option<JobKind> {
        match path.extension().and_then(|e| e.to_str()) {
            Some("wile") => Some(JobKind::Wile),
            Some("talft") => Some(JobKind::Talft),
            _ => None,
        }
    }

    /// Wire name (`"wile"` / `"talft"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JobKind::Wile => "wile",
            JobKind::Talft => "talft",
        }
    }

    /// Inverse of [`JobKind::name`].
    ///
    /// # Errors
    ///
    /// A message naming the unknown kind.
    pub fn parse(name: &str) -> Result<JobKind, String> {
        match name {
            "wile" => Ok(JobKind::Wile),
            "talft" => Ok(JobKind::Talft),
            other => Err(format!("unknown job kind {other:?}")),
        }
    }
}

/// Build the program a job campaigns over: Wile compiles to the protected
/// artifact (the Theorem 4 subject); `.talft` assembles as written.
///
/// # Errors
///
/// The compiler/assembler error, as a message.
pub fn build_program(kind: JobKind, source: &str) -> Result<Arc<talft_isa::Program>, String> {
    match kind {
        JobKind::Wile => {
            talft_compiler::compile(source, &talft_compiler::CompileOptions::default())
                .map(|c| Arc::clone(&c.protected.program))
                .map_err(|e| format!("compile: {e}"))
        }
        JobKind::Talft => talft_isa::assemble(source)
            .map(|a| Arc::new(a.program))
            .map_err(|e| format!("assemble: {e}")),
    }
}

/// The plan grid for a job: exhaustive `k = 1` or sampled `k ≥ 2`.
#[must_use]
pub fn plans_for(
    program: &Arc<talft_isa::Program>,
    cfg: &CampaignConfig,
    golden: &Golden,
    fault_order: u32,
) -> Vec<FaultPlan> {
    if fault_order <= 1 {
        single_fault_plans(program, cfg, golden)
    } else {
        multi_fault_plans(program, cfg, golden, fault_order)
    }
}

/// Service configuration: sharding, supervision, and the campaign knobs
/// every worker must agree on (the grid fingerprint catches disagreement).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Shards per job.
    pub shards: u32,
    /// Plans between durable checkpoints in each worker.
    pub checkpoint_every: usize,
    /// Per-shard wall-clock timeout; an overdue worker is killed and the
    /// attempt counts as a transient failure (it resumes on retry).
    pub worker_timeout: Duration,
    /// Backoff policy for respawning failed workers. Reuses the faultsim
    /// [`RetryPolicy`] — jitterless and deterministic.
    pub retry: RetryPolicy,
    /// Fault multiplicity `k` of the grid.
    pub fault_order: u32,
    /// Campaign knobs, forwarded verbatim to every worker.
    pub campaign: CampaignConfig,
    /// Worker executable; `None` = `std::env::current_exe()` (the `talftd`
    /// binary re-enters itself via the `worker` subcommand). Tests point
    /// this at `CARGO_BIN_EXE_talftd`.
    pub worker_exe: Option<PathBuf>,
    /// Crash injection forwarded to workers as environment variables:
    /// `(shard, after_checkpoints, always)`. Deterministic fault injection
    /// for the supervisor itself — the service equivalent of the SEU model.
    pub crash: Option<(u32, usize, bool)>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            checkpoint_every: talft_faultsim::DEFAULT_CHECKPOINT_EVERY,
            worker_timeout: Duration::from_secs(600),
            retry: RetryPolicy {
                max_retries: 2,
                base_delay_ms: 100,
                max_delay_ms: 2_000,
            },
            fault_order: 1,
            campaign: CampaignConfig {
                threads: 2,
                ..CampaignConfig::default()
            },
            worker_exe: None,
            crash: None,
        }
    }
}

impl ServiceConfig {
    fn exe(&self) -> Result<PathBuf, String> {
        match &self.worker_exe {
            Some(p) => Ok(p.clone()),
            None => std::env::current_exe().map_err(|e| format!("current_exe: {e}")),
        }
    }
}

/// `<dir>/checkpoint-<i>.json` — a shard worker's durable checkpoint.
#[must_use]
pub fn checkpoint_path(dir: &Path, shard: u32) -> PathBuf {
    dir.join(format!("checkpoint-{shard}.json"))
}

/// `<dir>/shard-<i>.json` — a completed shard's `talft.shard-report.v1`.
#[must_use]
pub fn part_path(dir: &Path, shard: u32) -> PathBuf {
    dir.join(format!("shard-{shard}.json"))
}

fn oob_arg(policy: OobLoadPolicy) -> String {
    match policy {
        OobLoadPolicy::Fault => "fault".to_owned(),
        OobLoadPolicy::Value(v) => v.to_string(),
    }
}

fn parse_oob(s: &str) -> Result<OobLoadPolicy, String> {
    if s == "fault" {
        Ok(OobLoadPolicy::Fault)
    } else {
        s.parse::<i64>()
            .map(OobLoadPolicy::Value)
            .map_err(|_| format!("bad --oob value {s:?}"))
    }
}

/// Spawn one shard worker as a child process (the `talftd worker`
/// subcommand). The worker recomputes the grid from the same knobs and
/// refuses to resume a checkpoint whose fingerprint disagrees.
///
/// # Errors
///
/// Propagates the spawn I/O error as a message.
pub fn spawn_worker(
    cfg: &ServiceConfig,
    source: &Path,
    kind: JobKind,
    spec: ShardSpec,
    dir: &Path,
) -> Result<Child, String> {
    let c = &cfg.campaign;
    let mut cmd = Command::new(cfg.exe()?);
    cmd.arg("worker")
        .arg("--source")
        .arg(source)
        .arg(format!("--kind={}", kind.name()))
        .arg(format!("--shard={}", spec.index))
        .arg(format!("--of={}", spec.count))
        .arg("--dir")
        .arg(dir)
        .arg(format!("--every={}", cfg.checkpoint_every))
        .arg(format!("--k={}", cfg.fault_order))
        .arg(format!("--max-steps={}", c.max_steps))
        .arg(format!("--stride={}", c.stride))
        .arg(format!("--mutations={}", c.mutations_per_site))
        .arg(format!("--seed={}", c.seed))
        .arg(format!("--pair-samples={}", c.pair_samples))
        .arg(format!("--pair-window={}", c.pair_window))
        .arg(format!("--threads={}", c.threads))
        .arg(format!("--batch={}", c.batch))
        .arg(format!("--oob={}", oob_arg(c.oob)))
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    match cfg.crash {
        Some((shard, after, always)) if shard == spec.index => {
            cmd.env(ENV_CRASH_AFTER, after.to_string())
                .env(ENV_CRASH_SHARD, shard.to_string());
            if always {
                cmd.env(ENV_CRASH_ALWAYS, "1");
            }
        }
        _ => {
            cmd.env_remove(ENV_CRASH_AFTER).env_remove(ENV_CRASH_ALWAYS);
        }
    }
    WORKER_SPAWNS.inc();
    cmd.spawn().map_err(|e| format!("spawn worker: {e}"))
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

struct WorkerArgs {
    source: PathBuf,
    kind: JobKind,
    spec: ShardSpec,
    dir: PathBuf,
    every: usize,
    fault_order: u32,
    campaign: CampaignConfig,
}

fn parse_worker_args(args: &[String]) -> Result<WorkerArgs, String> {
    let mut source = None;
    let mut kind = None;
    let mut shard = None;
    let mut of = None;
    let mut dir = None;
    let mut every = talft_faultsim::DEFAULT_CHECKPOINT_EVERY;
    let mut fault_order = 1u32;
    let mut campaign = CampaignConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            a.strip_prefix(&format!("{name}="))
                .map(str::to_owned)
                .or_else(|| (a == name).then(|| it.next().cloned()).flatten())
                .ok_or_else(|| format!("missing value for {name}"))
        };
        if a == "--source" || a.starts_with("--source=") {
            source = Some(PathBuf::from(val("--source")?));
        } else if a == "--dir" || a.starts_with("--dir=") {
            dir = Some(PathBuf::from(val("--dir")?));
        } else if a.starts_with("--kind") {
            kind = Some(JobKind::parse(&val("--kind")?)?);
        } else if a.starts_with("--shard") {
            shard = Some(num::<u32>(&val("--shard")?)?);
        } else if a.starts_with("--of") {
            of = Some(num::<u32>(&val("--of")?)?);
        } else if a.starts_with("--every") {
            every = num::<usize>(&val("--every")?)?;
        } else if a.starts_with("--k") {
            fault_order = num::<u32>(&val("--k")?)?;
        } else if a.starts_with("--max-steps") {
            campaign.max_steps = num::<u64>(&val("--max-steps")?)?;
        } else if a.starts_with("--stride") {
            campaign.stride = num::<u64>(&val("--stride")?)?;
        } else if a.starts_with("--mutations") {
            campaign.mutations_per_site = num::<usize>(&val("--mutations")?)?;
        } else if a.starts_with("--seed") {
            campaign.seed = num::<u64>(&val("--seed")?)?;
        } else if a.starts_with("--pair-samples") {
            campaign.pair_samples = num::<usize>(&val("--pair-samples")?)?;
        } else if a.starts_with("--pair-window") {
            campaign.pair_window = num::<u64>(&val("--pair-window")?)?;
        } else if a.starts_with("--threads") {
            campaign.threads = num::<usize>(&val("--threads")?)?;
        } else if a.starts_with("--batch") {
            campaign.batch = match val("--batch")?.as_str() {
                "true" | "1" | "on" => true,
                "false" | "0" | "off" => false,
                other => return Err(format!("bad --batch value {other:?}")),
            };
        } else if a.starts_with("--oob") {
            campaign.oob = parse_oob(&val("--oob")?)?;
        } else {
            return Err(format!("unknown worker argument {a:?}"));
        }
    }
    let spec = ShardSpec::new(shard.ok_or("missing --shard")?, of.ok_or("missing --of")?)
        .ok_or("invalid shard spec")?;
    Ok(WorkerArgs {
        source: source.ok_or("missing --source")?,
        kind: kind.ok_or("missing --kind")?,
        spec,
        dir: dir.ok_or("missing --dir")?,
        every,
        fault_order,
        campaign,
    })
}

fn num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.trim()
        .parse::<T>()
        .map_err(|_| format!("bad numeric argument {s:?}"))
}

/// Crash injection for this worker: abort after writing N checkpoints when
/// the environment requests it (see [`ENV_CRASH_AFTER`]).
fn crash_injection(shard: u32, resuming: bool) -> Option<usize> {
    let target: u32 = std::env::var(ENV_CRASH_SHARD)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0);
    if shard != target {
        return None;
    }
    if resuming && std::env::var_os(ENV_CRASH_ALWAYS).is_none() {
        return None;
    }
    std::env::var(ENV_CRASH_AFTER)
        .ok()
        .and_then(|s| s.trim().parse().ok())
}

/// Entry point of the `talftd worker` subcommand: run one shard, checkpoint
/// durably, resume from an existing checkpoint if one is on disk, and write
/// the completed `talft.shard-report.v1` part atomically.
///
/// # Errors
///
/// A message describing the failure (bad args, unbuildable program,
/// rejected checkpoint, I/O).
pub fn run_worker(args: &[String]) -> Result<(), String> {
    let w = parse_worker_args(args)?;
    let source = std::fs::read_to_string(&w.source)
        .map_err(|e| format!("read {}: {e}", w.source.display()))?;
    let program = build_program(w.kind, &source)?;
    let golden = golden_run_retrying(&program, &w.campaign).map_err(|e| e.to_string())?;
    let plans = plans_for(&program, &w.campaign, &golden, w.fault_order);
    let cp_path = checkpoint_path(&w.dir, w.spec.index);
    let resume = if cp_path.exists() {
        Some(CampaignCheckpoint::load(&cp_path)?)
    } else {
        None
    };
    let crash_after = crash_injection(w.spec.index, resume.is_some());
    let mut save_error = None;
    let mut written = 0usize;
    let outcome = talft_faultsim::run_shard_campaign(
        &program,
        &w.campaign,
        &golden,
        &plans,
        w.spec,
        w.every,
        resume.as_ref(),
        |cp| {
            if let Err(e) = cp.save(&cp_path) {
                save_error = Some(format!("save {}: {e}", cp_path.display()));
                return ShardControl::Stop;
            }
            written += 1;
            if crash_after == Some(written) {
                // Deterministic crash injection: die *after* the durable
                // write, exactly the worst-case a real SIGKILL produces.
                std::process::abort();
            }
            ShardControl::Continue
        },
    )
    .map_err(|e| e.to_string())?;
    match outcome {
        ShardOutcome::Complete(report) => {
            let part = ShardPart {
                spec: w.spec,
                fingerprint: grid_fingerprint(&golden, &plans),
                plans: w.spec.range(plans.len()).len() as u64,
                report,
            };
            atomic_write(
                &part_path(&w.dir, w.spec.index),
                &format!("{}\n", part.to_json()),
            )
            .map_err(|e| format!("write part: {e}"))?;
            // The checkpoint is superseded by the completed part.
            let _ = std::fs::remove_file(&cp_path);
            Ok(())
        }
        ShardOutcome::Interrupted(_) => {
            Err(save_error.unwrap_or_else(|| "shard interrupted".to_owned()))
        }
    }
}

// ---------------------------------------------------------------------------
// Supervisor side
// ---------------------------------------------------------------------------

/// Terminal status of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Every shard completed; the merged report is proven bit-identical to
    /// the whole grid by construction ([`merge_shard_reports`]).
    Completed,
    /// Some shards poisoned; the report covers the surviving shards only
    /// (`covered_plans / total_plans`).
    Degraded,
    /// No usable result (grid unbuildable or every shard poisoned).
    Failed,
}

impl JobStatus {
    /// Wire name (`"completed"` / `"degraded"` / `"failed"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Completed => "completed",
            JobStatus::Degraded => "degraded",
            JobStatus::Failed => "failed",
        }
    }

    /// Inverse of [`JobStatus::name`].
    ///
    /// # Errors
    ///
    /// A message naming the unknown status.
    pub fn parse(name: &str) -> Result<JobStatus, String> {
        match name {
            "completed" => Ok(JobStatus::Completed),
            "degraded" => Ok(JobStatus::Degraded),
            "failed" => Ok(JobStatus::Failed),
            other => Err(format!("unknown job status {other:?}")),
        }
    }
}

/// The `talft.talftd.v1` job report: supervision metadata, the embedded
/// shard parts (so [`check_report`] can re-prove the merge offline), and
/// the merged campaign report.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// Job name (source file stem).
    pub name: String,
    /// Source kind.
    pub kind: JobKind,
    /// Terminal status.
    pub status: JobStatus,
    /// Shard count of the partition.
    pub shards: u32,
    /// Shards that exhausted their retries.
    pub poisoned: Vec<u32>,
    /// Worker processes spawned in total (first attempts + retries).
    pub attempts: u64,
    /// Plans in the whole grid.
    pub total_plans: u64,
    /// Plans covered by the merged report (`== total_plans` iff completed).
    pub covered_plans: u64,
    /// Grid fingerprint every part was validated against.
    pub fingerprint: u64,
    /// The shard parts that survived.
    pub parts: Vec<ShardPart>,
    /// The merged campaign report (absent for failed jobs).
    pub merged: Option<CampaignReport>,
}

impl JobReport {
    /// Encode as schema-tagged JSON ([`JOB_SCHEMA`]).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema", Json::str(JOB_SCHEMA)),
            ("job", Json::str(&self.name)),
            ("kind", Json::str(self.kind.name())),
            ("status", Json::str(self.status.name())),
            ("shards", Json::U64(u64::from(self.shards))),
            (
                "poisoned",
                Json::Array(
                    self.poisoned
                        .iter()
                        .map(|&i| Json::U64(u64::from(i)))
                        .collect(),
                ),
            ),
            ("attempts", Json::U64(self.attempts)),
            ("total_plans", Json::U64(self.total_plans)),
            ("covered_plans", Json::U64(self.covered_plans)),
            ("fingerprint", Json::U64(self.fingerprint)),
            (
                "parts",
                Json::Array(self.parts.iter().map(ShardPart::to_json).collect()),
            ),
        ];
        if let Some(m) = &self.merged {
            fields.push(("report", wire::report_to_json(m)));
        }
        Json::obj(fields)
    }

    /// Decode; inverse of [`JobReport::to_json`].
    ///
    /// # Errors
    ///
    /// A message naming the malformed key.
    pub fn from_json(j: &Json) -> Result<JobReport, String> {
        wire::expect_schema(j, JOB_SCHEMA)?;
        let arr = |key: &str| -> Result<&[Json], String> {
            match j.get(key) {
                Some(Json::Array(a)) => Ok(a),
                _ => Err(format!("missing array {key:?}")),
            }
        };
        let poisoned = arr("poisoned")?
            .iter()
            .map(|v| {
                v.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| "bad poisoned entry".to_owned())
            })
            .collect::<Result<Vec<u32>, String>>()?;
        let parts = arr("parts")?
            .iter()
            .map(ShardPart::from_json)
            .collect::<Result<Vec<ShardPart>, String>>()?;
        Ok(JobReport {
            name: wire::need_str(j, "job")?.to_owned(),
            kind: JobKind::parse(wire::need_str(j, "kind")?)?,
            status: JobStatus::parse(wire::need_str(j, "status")?)?,
            shards: u32::try_from(wire::need_u64(j, "shards")?)
                .map_err(|_| "shards overflows u32".to_owned())?,
            poisoned,
            attempts: wire::need_u64(j, "attempts")?,
            total_plans: wire::need_u64(j, "total_plans")?,
            covered_plans: wire::need_u64(j, "covered_plans")?,
            fingerprint: wire::need_u64(j, "fingerprint")?,
            parts,
            merged: match j.get("report") {
                Some(r) => Some(wire::report_from_json(r)?),
                None => None,
            },
        })
    }
}

/// Per-shard supervision state.
enum SlotState {
    Pending,
    Running(Child, Instant),
    Done,
    Poisoned,
}

struct Slot {
    spec: ShardSpec,
    state: SlotState,
    attempts: u32,
    next_start: Instant,
    expected_plans: u64,
}

/// Streamed event sink: one `talft.talftd.v1` JSON object per event.
pub type EventSink<'a> = &'a mut dyn FnMut(&Json);

fn event(sink: EventSink<'_>, job: &str, kind: &str, extra: Vec<(&str, Json)>) {
    let mut fields = vec![
        ("schema", Json::str(JOB_SCHEMA)),
        ("event", Json::str(kind)),
        ("job", Json::str(job)),
    ];
    fields.extend(extra);
    sink(&Json::obj(fields));
}

/// Run one job end to end: shard the grid, supervise the worker fleet
/// (timeouts, backoff retries, poisoning), and merge with proof.
///
/// The parent derives the grid once in-process (golden run + plan
/// enumeration — *not* the campaign itself) so it can validate every
/// returned part against the grid fingerprint and exact shard sizes before
/// trusting it in the merge.
///
/// # Errors
///
/// Only *pre-campaign* failures (unreadable source, unbuildable program,
/// gated config) error out; worker failures degrade the job instead.
pub fn run_job(
    name: &str,
    source: &Path,
    kind: JobKind,
    cfg: &ServiceConfig,
    dir: &Path,
    sink: EventSink<'_>,
) -> Result<JobReport, String> {
    if cfg.campaign.stop_on_first_violation {
        return Err("stop_on_first_violation cannot be sharded".to_owned());
    }
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let text =
        std::fs::read_to_string(source).map_err(|e| format!("read {}: {e}", source.display()))?;
    let program = build_program(kind, &text)?;
    let golden = golden_run_retrying(&program, &cfg.campaign).map_err(|e| e.to_string())?;
    let plans = plans_for(&program, &cfg.campaign, &golden, cfg.fault_order);
    let fingerprint = grid_fingerprint(&golden, &plans);
    let shards = cfg.shards.max(1);
    event(
        sink,
        name,
        "job_start",
        vec![
            ("shards", Json::U64(u64::from(shards))),
            ("total_plans", Json::U64(plans.len() as u64)),
            ("fingerprint", Json::U64(fingerprint)),
        ],
    );
    let now = Instant::now();
    let mut slots: Vec<Slot> = (0..shards)
        .map(|i| {
            let spec = ShardSpec::new(i, shards).expect("i < shards");
            Slot {
                spec,
                state: SlotState::Pending,
                attempts: 0,
                next_start: now,
                expected_plans: spec.range(plans.len()).len() as u64,
            }
        })
        .collect();
    let mut attempts_total = 0u64;
    loop {
        let mut all_settled = true;
        for slot in &mut slots {
            match &mut slot.state {
                SlotState::Done | SlotState::Poisoned => {}
                SlotState::Pending => {
                    all_settled = false;
                    if Instant::now() >= slot.next_start {
                        slot.attempts += 1;
                        attempts_total += 1;
                        event(
                            sink,
                            name,
                            "spawn",
                            vec![
                                ("shard", Json::U64(u64::from(slot.spec.index))),
                                ("attempt", Json::U64(u64::from(slot.attempts))),
                            ],
                        );
                        match spawn_worker(cfg, source, kind, slot.spec, dir) {
                            Ok(child) => {
                                slot.state = SlotState::Running(child, Instant::now());
                            }
                            Err(e) => {
                                fail_slot(slot, cfg, sink, name, &e);
                            }
                        }
                    }
                }
                SlotState::Running(child, started) => {
                    all_settled = false;
                    let elapsed = started.elapsed();
                    match child.try_wait() {
                        Ok(Some(status)) if status.success() => {
                            match read_part(dir, slot.spec, fingerprint, slot.expected_plans) {
                                Ok(part) => {
                                    event(
                                        sink,
                                        name,
                                        "shard_done",
                                        vec![
                                            ("shard", Json::U64(u64::from(slot.spec.index))),
                                            ("plans", Json::U64(part.plans)),
                                            ("sdc", Json::U64(part.report.sdc)),
                                            ("detected", Json::U64(part.report.detected)),
                                        ],
                                    );
                                    slot.state = SlotState::Done;
                                }
                                Err(e) => fail_slot(slot, cfg, sink, name, &e),
                            }
                        }
                        Ok(Some(status)) => {
                            fail_slot(slot, cfg, sink, name, &format!("worker exited {status}"));
                        }
                        Ok(None) if elapsed > cfg.worker_timeout => {
                            WORKER_TIMEOUTS.inc();
                            let _ = child.kill();
                            let _ = child.wait();
                            fail_slot(
                                slot,
                                cfg,
                                sink,
                                name,
                                &format!("timeout after {:?}", cfg.worker_timeout),
                            );
                        }
                        Ok(None) => {}
                        Err(e) => fail_slot(slot, cfg, sink, name, &format!("wait: {e}")),
                    }
                }
            }
        }
        if all_settled {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let poisoned: Vec<u32> = slots
        .iter()
        .filter(|s| matches!(s.state, SlotState::Poisoned))
        .map(|s| s.spec.index)
        .collect();
    let parts: Vec<ShardPart> = slots
        .iter()
        .filter(|s| matches!(s.state, SlotState::Done))
        .map(|s| read_part(dir, s.spec, fingerprint, s.expected_plans))
        .collect::<Result<Vec<ShardPart>, String>>()?;
    let total_plans = plans.len() as u64;
    let (status, covered, merged) = if poisoned.is_empty() {
        let merged = merge_shard_reports(&parts).map_err(|e| format!("merge: {e}"))?;
        JOBS_COMPLETED.inc();
        (JobStatus::Completed, total_plans, Some(merged))
    } else if parts.is_empty() {
        JOBS_FAILED.inc();
        (JobStatus::Failed, 0, None)
    } else {
        let (merged, covered) =
            merge_surviving_shards(&parts).map_err(|e| format!("degraded merge: {e}"))?;
        JOBS_DEGRADED.inc();
        (JobStatus::Degraded, covered, Some(merged))
    };
    event(
        sink,
        name,
        "job_done",
        vec![
            ("status", Json::str(status.name())),
            ("covered_plans", Json::U64(covered)),
            ("total_plans", Json::U64(total_plans)),
            ("attempts", Json::U64(attempts_total)),
        ],
    );
    Ok(JobReport {
        name: name.to_owned(),
        kind,
        status,
        shards,
        poisoned,
        attempts: attempts_total,
        total_plans,
        covered_plans: covered,
        fingerprint,
        parts,
        merged,
    })
}

fn fail_slot(slot: &mut Slot, cfg: &ServiceConfig, sink: EventSink<'_>, job: &str, cause: &str) {
    if slot.attempts > cfg.retry.max_retries {
        SHARDS_POISONED.inc();
        event(
            sink,
            job,
            "poisoned",
            vec![
                ("shard", Json::U64(u64::from(slot.spec.index))),
                ("cause", Json::str(cause)),
            ],
        );
        slot.state = SlotState::Poisoned;
    } else {
        WORKER_RETRIES.inc();
        let delay = cfg.retry.delay_ms(slot.attempts.saturating_sub(1));
        event(
            sink,
            job,
            "retry",
            vec![
                ("shard", Json::U64(u64::from(slot.spec.index))),
                ("attempt", Json::U64(u64::from(slot.attempts))),
                ("delay_ms", Json::U64(delay)),
                ("cause", Json::str(cause)),
            ],
        );
        slot.next_start = Instant::now() + Duration::from_millis(delay);
        slot.state = SlotState::Pending;
    }
}

/// Read and validate one shard part: parse, fingerprint match, exact shard
/// size, complete coverage. A part failing any check is treated as a worker
/// failure, never silently merged.
fn read_part(
    dir: &Path,
    spec: ShardSpec,
    fingerprint: u64,
    expected_plans: u64,
) -> Result<ShardPart, String> {
    let path = part_path(dir, spec.index);
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let part = ShardPart::from_json(&json).map_err(|e| format!("{}: {e}", path.display()))?;
    if part.spec != spec {
        return Err(format!("{}: wrong shard {}", path.display(), part.spec));
    }
    if part.fingerprint != fingerprint {
        return Err(format!(
            "{}: fingerprint {:016x} != grid {:016x}",
            path.display(),
            part.fingerprint,
            fingerprint
        ));
    }
    if part.plans != expected_plans || part.report.total != part.plans {
        return Err(format!(
            "{}: covers {} of {} plans (shard owns {})",
            path.display(),
            part.report.total,
            part.plans,
            expected_plans
        ));
    }
    Ok(part)
}

/// Re-prove a job report offline: schema, arithmetic, and — decisively —
/// that the merged report is **recomputable bit-for-bit** from the embedded
/// shard parts. With `expect_zero_sdc`, additionally enforce the Theorem 4
/// gate on the merged report.
///
/// # Errors
///
/// The first inconsistency found, as a message.
pub fn check_report(j: &Json, expect_zero_sdc: bool) -> Result<JobReport, String> {
    let rep = JobReport::from_json(j)?;
    for p in &rep.parts {
        if p.fingerprint != rep.fingerprint {
            return Err(format!(
                "part {} fingerprint disagrees with the job fingerprint",
                p.spec
            ));
        }
        if p.spec.count != rep.shards {
            return Err(format!("part {} disagrees on the shard count", p.spec));
        }
    }
    match rep.status {
        JobStatus::Completed => {
            if !rep.poisoned.is_empty() {
                return Err("completed job lists poisoned shards".to_owned());
            }
            let merged = merge_shard_reports(&rep.parts).map_err(|e| e.to_string())?;
            let claimed = rep.merged.as_ref().ok_or("completed job missing report")?;
            if &merged != claimed {
                return Err("merged report is not reproducible from its shard parts".to_owned());
            }
            if rep.covered_plans != rep.total_plans || merged.total != rep.total_plans {
                return Err("completed job does not cover its whole grid".to_owned());
            }
        }
        JobStatus::Degraded => {
            if rep.poisoned.is_empty() {
                return Err("degraded job lists no poisoned shards".to_owned());
            }
            let (merged, covered) =
                merge_surviving_shards(&rep.parts).map_err(|e| e.to_string())?;
            let claimed = rep.merged.as_ref().ok_or("degraded job missing report")?;
            if &merged != claimed {
                return Err("degraded report is not reproducible from its shard parts".to_owned());
            }
            if covered != rep.covered_plans || covered >= rep.total_plans {
                return Err("degraded coverage arithmetic is inconsistent".to_owned());
            }
        }
        JobStatus::Failed => {
            if rep.merged.is_some() {
                return Err("failed job carries a report".to_owned());
            }
        }
    }
    if expect_zero_sdc {
        if let Some(m) = &rep.merged {
            if m.sdc != 0 {
                return Err(format!("expected zero SDC, report carries {}", m.sdc));
            }
        }
    }
    Ok(rep)
}

// ---------------------------------------------------------------------------
// Spool
// ---------------------------------------------------------------------------

/// The spool directory: `incoming/` (drop `.wile`/`.talft` files here),
/// `running/` (claimed jobs + shard scratch), `done/` and `failed/`
/// (source + `<name>.json` report).
#[derive(Debug, Clone)]
pub struct Spool {
    root: PathBuf,
}

impl Spool {
    /// Open (creating) a spool rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: &Path) -> std::io::Result<Spool> {
        for sub in ["incoming", "running", "done", "failed"] {
            std::fs::create_dir_all(root.join(sub))?;
        }
        Ok(Spool {
            root: root.to_path_buf(),
        })
    }

    /// `incoming/` — drop job files here.
    #[must_use]
    pub fn incoming(&self) -> PathBuf {
        self.root.join("incoming")
    }

    /// The oldest (lexicographically first) job file waiting in `incoming/`.
    #[must_use]
    pub fn next_job(&self) -> Option<PathBuf> {
        let mut jobs: Vec<PathBuf> = std::fs::read_dir(self.incoming())
            .ok()?
            .flatten()
            .map(|e| e.path())
            .filter(|p| JobKind::from_path(p).is_some())
            .collect();
        jobs.sort();
        jobs.into_iter().next()
    }

    /// Claim a job: move it into `running/` (atomic rename — two daemons
    /// cannot both claim it).
    ///
    /// # Errors
    ///
    /// Propagates the rename failure (e.g. lost the claim race).
    pub fn claim(&self, job: &Path) -> std::io::Result<PathBuf> {
        let dest = self
            .root
            .join("running")
            .join(job.file_name().unwrap_or_default());
        std::fs::rename(job, &dest)?;
        Ok(dest)
    }

    /// Retire a finished job: write `<name>.json` and move the source into
    /// `done/` or `failed/` by status. Returns the report path.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn finish(&self, claimed: &Path, report: &JobReport) -> std::io::Result<PathBuf> {
        let bucket = if report.status == JobStatus::Failed {
            "failed"
        } else {
            "done"
        };
        let dir = self.root.join(bucket);
        let report_path = dir.join(format!("{}.json", report.name));
        atomic_write(&report_path, &format!("{}\n", report.to_json()))?;
        std::fs::rename(claimed, dir.join(claimed.file_name().unwrap_or_default()))?;
        // Shard scratch for this job is no longer needed.
        let _ = std::fs::remove_dir_all(self.scratch(&report.name));
        Ok(report_path)
    }

    /// Shard scratch directory (checkpoints + parts) for a job name.
    #[must_use]
    pub fn scratch(&self, name: &str) -> PathBuf {
        self.root.join("running").join(format!("{name}.shards"))
    }
}

/// Process at most one waiting job from the spool. Returns `None` when
/// `incoming/` is empty.
///
/// # Errors
///
/// Spool I/O and pre-campaign job failures (a failed *campaign* is a
/// `Failed` report, not an error).
pub fn serve_once(
    spool: &Spool,
    cfg: &ServiceConfig,
    sink: EventSink<'_>,
) -> Result<Option<JobReport>, String> {
    let Some(job) = spool.next_job() else {
        return Ok(None);
    };
    let kind = JobKind::from_path(&job).expect("next_job filters by kind");
    let name = job
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("job")
        .to_owned();
    let claimed = spool.claim(&job).map_err(|e| format!("claim: {e}"))?;
    let scratch = spool.scratch(&name);
    let report = match run_job(&name, &claimed, kind, cfg, &scratch, sink) {
        Ok(r) => r,
        Err(e) => {
            // Pre-campaign failure: park the source in failed/ with a stub
            // report so the submitter sees *why*.
            event(sink, &name, "job_error", vec![("cause", Json::str(&e))]);
            let stub = JobReport {
                name: name.clone(),
                kind,
                status: JobStatus::Failed,
                shards: cfg.shards.max(1),
                poisoned: Vec::new(),
                attempts: 0,
                total_plans: 0,
                covered_plans: 0,
                fingerprint: 0,
                parts: Vec::new(),
                merged: None,
            };
            let _ = spool.finish(&claimed, &stub);
            return Err(e);
        }
    };
    spool
        .finish(&claimed, &report)
        .map_err(|e| format!("finish: {e}"))?;
    Ok(Some(report))
}

/// Daemon loop: poll the spool until `max_jobs` jobs have been processed
/// (`None` = forever).
///
/// # Errors
///
/// Propagates [`serve_once`] errors.
pub fn serve(
    spool: &Spool,
    cfg: &ServiceConfig,
    sink: EventSink<'_>,
    poll: Duration,
    max_jobs: Option<usize>,
) -> Result<usize, String> {
    let mut done = 0usize;
    loop {
        match serve_once(spool, cfg, sink)? {
            Some(_) => {
                done += 1;
                if max_jobs.is_some_and(|m| done >= m) {
                    return Ok(done);
                }
            }
            None => {
                if max_jobs.is_some() && done > 0 {
                    return Ok(done);
                }
                std::thread::sleep(poll);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Smoke (the CI gate)
// ---------------------------------------------------------------------------

/// The `talftd smoke` gate: run a 4-shard campaign over a suite kernel,
/// **SIGKILL one worker mid-grid** (after its first durable checkpoint),
/// let the service resume it, and hard-fail unless the merged report is
/// bit-identical to an in-process whole-grid run. Writes the job report to
/// `out` and re-validates it with [`check_report`] (zero SDC enforced —
/// the kernel is protected).
///
/// # Errors
///
/// Any divergence from the whole-grid report, a non-`Completed` job, or a
/// validator failure.
pub fn smoke(out: &Path, shards: u32, sink: EventSink<'_>) -> Result<JobReport, String> {
    let kernel = &talft_suite::kernels(talft_suite::Scale::Tiny)[0];
    let dir = std::env::temp_dir().join(format!("talftd-smoke-{}", std::process::id()));
    let scratch = dir.join("shards");
    std::fs::create_dir_all(&scratch).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let source = dir.join(format!("{}.wile", kernel.name));
    std::fs::write(&source, &kernel.source).map_err(|e| format!("write source: {e}"))?;
    let cfg = ServiceConfig {
        shards,
        checkpoint_every: 8,
        campaign: CampaignConfig {
            stride: 11,
            mutations_per_site: 2,
            threads: 2,
            ..CampaignConfig::default()
        },
        ..ServiceConfig::default()
    };
    // Phase 1: start shard 0 alone and SIGKILL it once its first durable
    // checkpoint hits the disk — a real mid-grid worker death, not a
    // simulated one. (If the worker wins the race and completes first, the
    // resume path degenerates to a completed part; the bit-identity diff
    // below gates either way, and `killed` records which path ran.)
    let spec0 = ShardSpec::new(0, shards).ok_or("shards must be >= 1")?;
    let mut child = spawn_worker(&cfg, &source, JobKind::Wile, spec0, &scratch)?;
    let cp0 = checkpoint_path(&scratch, 0);
    let mut killed = false;
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        if cp0.exists() {
            if child.kill().is_ok() {
                killed = true;
            }
            let _ = child.wait();
            break;
        }
        if let Ok(Some(_)) = child.try_wait() {
            break; // finished before the first checkpoint could be observed
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            let _ = child.wait();
            return Err("smoke: shard 0 produced no checkpoint within 300s".to_owned());
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    event(
        sink,
        kernel.name,
        "smoke_kill",
        vec![("killed_mid_grid", Json::Bool(killed))],
    );
    // Phase 2: run the job through the normal service path. Shard 0's
    // worker finds the orphaned checkpoint and resumes from it.
    let report = run_job(kernel.name, &source, JobKind::Wile, &cfg, &scratch, sink)?;
    if report.status != JobStatus::Completed {
        return Err(format!("smoke: job {}", report.status.name()));
    }
    // Phase 3: the differential — whole grid, one process, no shards.
    let program = build_program(JobKind::Wile, &kernel.source)?;
    let golden = golden_run_retrying(&program, &cfg.campaign).map_err(|e| e.to_string())?;
    let plans = plans_for(&program, &cfg.campaign, &golden, cfg.fault_order);
    let whole = run_plan_campaign(&program, &cfg.campaign, &golden, &plans);
    if report.merged.as_ref() != Some(&whole) {
        return Err(
            "smoke: resumed+merged report is NOT bit-identical to the whole-grid run".to_owned(),
        );
    }
    atomic_write(out, &format!("{}\n", report.to_json())).map_err(|e| format!("write: {e}"))?;
    let text = std::fs::read_to_string(out).map_err(|e| e.to_string())?;
    let back = Json::parse(&text).map_err(|e| e.to_string())?;
    check_report(&back, true)?;
    event(
        sink,
        kernel.name,
        "smoke_ok",
        vec![
            ("killed_mid_grid", Json::Bool(killed)),
            ("total_plans", Json::U64(report.total_plans)),
            ("attempts", Json::U64(report.attempts)),
        ],
    );
    let _ = std::fs::remove_dir_all(&dir);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use talft_faultsim::{golden_run, Verdict};

    const PROTECTED: &str = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  mov r3, B 5
  mov r4, B 4096
  stB r4, r3
  halt
"#;

    fn sample_parts() -> (Vec<ShardPart>, u64) {
        let p = build_program(JobKind::Talft, PROTECTED).unwrap();
        let cfg = CampaignConfig {
            threads: 1,
            ..CampaignConfig::default()
        };
        let golden = golden_run(&p, &cfg).unwrap();
        let plans = single_fault_plans(&p, &cfg, &golden);
        let fingerprint = grid_fingerprint(&golden, &plans);
        let parts = (0..2u32)
            .map(|i| {
                let spec = ShardSpec::new(i, 2).unwrap();
                let ShardOutcome::Complete(report) = talft_faultsim::run_shard_campaign(
                    &p,
                    &cfg,
                    &golden,
                    &plans,
                    spec,
                    0,
                    None,
                    |_| ShardControl::Continue,
                )
                .unwrap() else {
                    panic!("complete")
                };
                ShardPart {
                    spec,
                    fingerprint,
                    plans: spec.range(plans.len()).len() as u64,
                    report,
                }
            })
            .collect();
        (parts, plans.len() as u64)
    }

    fn sample_report() -> JobReport {
        let (parts, total) = sample_parts();
        let merged = merge_shard_reports(&parts).unwrap();
        JobReport {
            name: "sample".to_owned(),
            kind: JobKind::Talft,
            status: JobStatus::Completed,
            shards: 2,
            poisoned: Vec::new(),
            attempts: 2,
            total_plans: total,
            covered_plans: total,
            fingerprint: parts[0].fingerprint,
            parts,
            merged: Some(merged),
        }
    }

    #[test]
    fn job_kind_classifies_by_extension() {
        assert_eq!(
            JobKind::from_path(Path::new("a/b.wile")),
            Some(JobKind::Wile)
        );
        assert_eq!(
            JobKind::from_path(Path::new("x.talft")),
            Some(JobKind::Talft)
        );
        assert_eq!(JobKind::from_path(Path::new("x.json")), None);
        assert_eq!(JobKind::parse("wile").unwrap(), JobKind::Wile);
        assert!(JobKind::parse("elf").is_err());
    }

    #[test]
    fn job_report_roundtrips_bit_exactly() {
        let rep = sample_report();
        let text = rep.to_json().to_string();
        let back = JobReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, rep);
    }

    #[test]
    fn check_report_accepts_honest_and_rejects_tampered() {
        let rep = sample_report();
        check_report(&rep.to_json(), true).expect("honest report validates");
        // Tamper 1: inflate a verdict count in the merged report.
        let mut forged = rep.clone();
        if let Some(m) = &mut forged.merged {
            m.masked += 1;
            m.total += 1;
        }
        forged.total_plans += 1;
        forged.covered_plans += 1;
        assert!(
            check_report(&forged.to_json(), false).is_err(),
            "forged merge must not validate"
        );
        // Tamper 2: claim completed while a shard is missing.
        let mut partial = rep.clone();
        partial.parts.pop();
        assert!(check_report(&partial.to_json(), false).is_err());
        // Tamper 3: hide an SDC count from the zero-SDC gate.
        let mut sdc = rep.clone();
        if let Some(m) = &mut sdc.merged {
            m.masked -= 1;
            m.sdc += 1;
        }
        if let Some(m) = &mut sdc.parts.last_mut().map(|p| &mut p.report) {
            m.masked -= 1;
            m.sdc += 1;
            m.violations.push(talft_faultsim::Injection {
                at_step: 0,
                site: talft_machine::FaultSite::QueueAddr(0),
                value: 1,
                followups: Vec::new(),
                verdict: Verdict::Sdc,
            });
        }
        assert!(check_report(&sdc.to_json(), true).is_err());
        // Degraded arithmetic: dropping a shard but keeping status completed
        // is caught; an honest degraded report passes.
        let (parts, total) = sample_parts();
        let survivor = vec![parts[0].clone()];
        let (merged, covered) = merge_surviving_shards(&survivor).unwrap();
        let degraded = JobReport {
            name: "deg".to_owned(),
            kind: JobKind::Talft,
            status: JobStatus::Degraded,
            shards: 2,
            poisoned: vec![1],
            attempts: 4,
            total_plans: total,
            covered_plans: covered,
            fingerprint: survivor[0].fingerprint,
            parts: survivor,
            merged: Some(merged),
        };
        check_report(&degraded.to_json(), true).expect("honest degraded validates");
    }

    #[test]
    fn worker_args_roundtrip_through_argv() {
        let args: Vec<String> = [
            "--source",
            "/tmp/x.talft",
            "--kind=talft",
            "--shard=1",
            "--of=4",
            "--dir",
            "/tmp/shards",
            "--every=16",
            "--k=2",
            "--max-steps=5000",
            "--stride=3",
            "--mutations=2",
            "--seed=99",
            "--pair-samples=64",
            "--pair-window=12",
            "--threads=1",
            "--batch=false",
            "--oob=fault",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let w = parse_worker_args(&args).unwrap();
        assert_eq!(w.spec, ShardSpec::new(1, 4).unwrap());
        assert_eq!(w.every, 16);
        assert_eq!(w.fault_order, 2);
        assert_eq!(w.campaign.max_steps, 5000);
        assert_eq!(w.campaign.stride, 3);
        assert_eq!(w.campaign.mutations_per_site, 2);
        assert_eq!(w.campaign.seed, 99);
        assert_eq!(w.campaign.pair_samples, 64);
        assert_eq!(w.campaign.pair_window, 12);
        assert_eq!(w.campaign.threads, 1);
        assert!(!w.campaign.batch, "--batch=false must reach the config");
        assert_eq!(w.campaign.oob, OobLoadPolicy::Fault);
        assert_eq!(parse_oob("-17").unwrap(), OobLoadPolicy::Value(-17));
        assert!(parse_worker_args(&["--bogus".to_owned()]).is_err());
        assert!(parse_worker_args(&["--batch=maybe".to_owned()]).is_err());
    }
}
