//! End-to-end supervision tests with **real child worker processes**
//! (`CARGO_BIN_EXE_talftd`): completed jobs merge bit-identically to an
//! in-process whole-grid run; a worker crashed after its first durable
//! checkpoint is retried, resumes, and the report is provably unchanged;
//! a permanently crashing shard poisons and degrades the job honestly; the
//! spool claims, runs, and retires jobs; and [`check_report`] validates
//! every artifact the service emits.

use std::path::{Path, PathBuf};
use std::time::Duration;

use talft_faultsim::{golden_run_retrying, run_plan_campaign, CampaignConfig, RetryPolicy};
use talft_obs::Json;
use talft_service::{
    build_program, check_report, plans_for, run_job, serve_once, JobKind, JobReport, JobStatus,
    ServiceConfig, Spool,
};

/// A protected hand-written program with a small grid (fast under the
/// unoptimized test profile, where each worker is a full child process).
const PROTECTED: &str = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  mov r3, B 5
  mov r4, B 4096
  stB r4, r3
  halt
"#;

fn worker_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_talftd"))
}

fn test_cfg(shards: u32) -> ServiceConfig {
    ServiceConfig {
        shards,
        checkpoint_every: 2,
        worker_timeout: Duration::from_secs(300),
        retry: RetryPolicy {
            max_retries: 2,
            base_delay_ms: 1,
            max_delay_ms: 10,
        },
        campaign: CampaignConfig {
            threads: 2,
            ..CampaignConfig::default()
        },
        worker_exe: Some(worker_exe()),
        crash: None,
        ..ServiceConfig::default()
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("talftd-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn write_source(dir: &Path, name: &str, text: &str) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, text).expect("write source");
    path
}

/// The in-process whole-grid report the service must reproduce bit for bit.
fn whole_grid(kind: JobKind, source: &str, cfg: &ServiceConfig) -> talft_faultsim::CampaignReport {
    let program = build_program(kind, source).expect("builds");
    let golden = golden_run_retrying(&program, &cfg.campaign).expect("golden");
    let plans = plans_for(&program, &cfg.campaign, &golden, cfg.fault_order);
    run_plan_campaign(&program, &cfg.campaign, &golden, &plans)
}

fn run(name: &str, source: &Path, kind: JobKind, cfg: &ServiceConfig, dir: &Path) -> JobReport {
    let mut events = Vec::new();
    let mut sink = |j: &Json| events.push(j.to_string());
    let rep = run_job(name, source, kind, cfg, dir, &mut sink).expect("job runs");
    assert!(
        events.iter().all(|e| e.contains("talft.talftd.v1")),
        "every event line carries the schema tag"
    );
    rep
}

#[test]
fn completed_job_is_bit_identical_to_whole_grid() {
    let dir = scratch("complete");
    let source = write_source(&dir, "job.talft", PROTECTED);
    let cfg = test_cfg(2);
    let rep = run("job", &source, JobKind::Talft, &cfg, &dir.join("shards"));
    assert_eq!(rep.status, JobStatus::Completed);
    assert_eq!(rep.attempts, 2, "one worker per shard, no retries");
    assert!(rep.poisoned.is_empty());
    let whole = whole_grid(JobKind::Talft, PROTECTED, &cfg);
    assert_eq!(
        rep.merged.as_ref(),
        Some(&whole),
        "service-merged report diverged from the in-process whole grid"
    );
    assert_eq!(
        rep.merged.as_ref().unwrap().sdc,
        0,
        "Theorem 4 through the service"
    );
    check_report(&rep.to_json(), true).expect("validator accepts the service's own artifact");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crashed_worker_resumes_and_report_is_unchanged() {
    let dir = scratch("crash-once");
    let source = write_source(&dir, "job.talft", PROTECTED);
    let mut cfg = test_cfg(2);
    // Shard 0's worker aborts right after its first durable checkpoint —
    // but only on a fresh start, so the retry resumes and completes.
    cfg.crash = Some((0, 1, false));
    let rep = run("job", &source, JobKind::Talft, &cfg, &dir.join("shards"));
    assert_eq!(
        rep.status,
        JobStatus::Completed,
        "transient crash must heal"
    );
    assert!(
        rep.attempts > u64::from(rep.shards),
        "the crashed worker must actually have been respawned"
    );
    assert!(rep.poisoned.is_empty());
    let whole = whole_grid(JobKind::Talft, PROTECTED, &cfg);
    assert_eq!(
        rep.merged.as_ref(),
        Some(&whole),
        "kill+resume changed the report — checkpoint/resume is not bit-exact"
    );
    check_report(&rep.to_json(), true).expect("validator accepts the healed job");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn permanently_crashing_shard_degrades_the_job() {
    let dir = scratch("crash-always");
    let source = write_source(&dir, "job.talft", PROTECTED);
    let mut cfg = test_cfg(2);
    cfg.crash = Some((1, 1, true)); // fires on resume too: a permanent fault
    let rep = run("job", &source, JobKind::Talft, &cfg, &dir.join("shards"));
    assert_eq!(rep.status, JobStatus::Degraded);
    assert_eq!(rep.poisoned, vec![1]);
    assert_eq!(
        rep.attempts,
        1 + u64::from(cfg.retry.max_retries) + 1,
        "poisoning happens only after the full retry budget"
    );
    assert!(rep.covered_plans > 0 && rep.covered_plans < rep.total_plans);
    let merged = rep.merged.as_ref().expect("surviving coverage reported");
    assert_eq!(merged.total, rep.covered_plans);
    assert_eq!(merged.sdc, 0);
    check_report(&rep.to_json(), true).expect("validator accepts the degraded job");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wile_job_compiles_and_completes_through_the_spool() {
    let dir = scratch("spool");
    let spool = Spool::open(&dir).expect("spool opens");
    let kernel = &talft_suite::kernels(talft_suite::Scale::Tiny)[0];
    write_source(
        &spool.incoming(),
        &format!("{}.wile", kernel.name),
        &kernel.source,
    );
    let mut cfg = test_cfg(4);
    cfg.checkpoint_every = 64;
    cfg.campaign.stride = 7; // thin the grid: four child processes per job
    let mut events = Vec::new();
    let mut sink = |j: &Json| events.push(j.to_string());
    let rep = serve_once(&spool, &cfg, &mut sink)
        .expect("serve_once")
        .expect("a job was waiting");
    assert_eq!(rep.status, JobStatus::Completed);
    assert_eq!(rep.kind, JobKind::Wile);
    assert_eq!(rep.merged.as_ref().map(|m| m.sdc), Some(0));
    let whole = whole_grid(JobKind::Wile, &kernel.source, &cfg);
    assert_eq!(rep.merged.as_ref(), Some(&whole));
    // The spool retired the job: source + report in done/, incoming empty.
    assert!(spool.next_job().is_none());
    let report_path = dir.join("done").join(format!("{}.json", kernel.name));
    let text = std::fs::read_to_string(&report_path).expect("report written to done/");
    let back = JobReport::from_json(&Json::parse(&text).expect("parses")).expect("decodes");
    assert_eq!(back, rep, "spooled report round-trips bit-exactly");
    check_report(&Json::parse(&text).unwrap(), true).expect("spooled artifact validates");
    assert!(dir
        .join("done")
        .join(format!("{}.wile", kernel.name))
        .exists());
    let _ = std::fs::remove_dir_all(&dir);
}
