//! The checker's flowing context — the static context
//! `T = Δ; Γ; (Ed,Es)*; Em` of Figure 5, in mutable form.
//!
//! A [`Ctx`] is created from a label's [`CodeTy`] precondition and updated
//! instruction-by-instruction according to the typing rules of Figure 7.
//! `Δ` is split into its kind part ([`KindCtx`]) and its fact part
//! ([`Facts`], our extension carrying branch and bounds hypotheses).

use talft_isa::{CodeTy, Color, FactAnn, Reg, RegFileTy, RegTy};
use talft_logic::{ExprArena, ExprId, Facts, KindCtx};

/// The mutable static context tracked while checking a block.
#[derive(Debug, Clone)]
pub struct Ctx {
    /// Kind bindings of `Δ`.
    pub kinds: KindCtx,
    /// Path facts of `Δ` (extension; see DESIGN.md).
    pub facts: Facts,
    /// `Γ` — register-file typing.
    pub regs: RegFileTy,
    /// `(Ed, Es)*` — static queue description, **front (newest) first**.
    pub queue: Vec<(ExprId, ExprId)>,
    /// `Em` — static memory description.
    pub mem: ExprId,
}

impl Ctx {
    /// Build the context for a block from its precondition.
    pub fn from_code_ty(arena: &mut ExprArena, t: &CodeTy) -> Self {
        let kinds = t.kind_ctx();
        let mut facts = Facts::new();
        for f in &t.facts {
            assume_fact(arena, &mut facts, *f);
        }
        Self {
            kinds,
            facts,
            regs: t.regs.clone(),
            queue: t.queue.clone(),
            mem: t.mem,
        }
    }

    /// `Γ++` — add one to the static expression of each program counter.
    pub fn bump_pcs(&mut self, arena: &mut ExprArena) {
        for c in Color::BOTH {
            let r = Reg::Pc(c);
            if let RegTy::Val(v) = self.regs.get(r).clone() {
                let one = arena.int(1);
                let e = arena.add(v.expr, one);
                let mut v2 = v;
                v2.expr = e;
                self.regs.set(r, RegTy::Val(v2));
            }
        }
    }

    /// The static expression of a program counter, if it has a value type.
    #[must_use]
    pub fn pc_expr(&self, c: Color) -> Option<ExprId> {
        self.regs.get(Reg::Pc(c)).as_val().map(|v| v.expr)
    }
}

/// Record a precondition fact into a hypothesis set.
pub fn assume_fact(arena: &mut ExprArena, facts: &mut Facts, f: FactAnn) {
    match f {
        FactAnn::EqZero(e) => facts.assume_eq_zero(arena, e),
        FactAnn::NeqZero(e) => facts.assume_neq_zero(arena, e),
        FactAnn::Ge0(e) => facts.assume_ge0(arena, e),
    }
}

/// Check that a fact holds under the current hypotheses (used when entering
/// a label whose precondition asserts facts).
pub fn prove_fact(arena: &mut ExprArena, facts: &Facts, f: FactAnn) -> bool {
    match f {
        FactAnn::EqZero(e) => facts.prove_eq_zero(arena, e),
        FactAnn::NeqZero(e) => facts.prove_neq_zero(arena, e),
        FactAnn::Ge0(e) => facts.prove_ge0(arena, e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use talft_isa::ty::ValTy;
    use talft_isa::BasicTy;
    use talft_logic::Kind;

    #[test]
    fn from_code_ty_installs_kinds_facts_and_regs() {
        let mut arena = ExprArena::new();
        let x = arena.var_id("x");
        let xe = arena.var_expr(x);
        let m = arena.var_id("m");
        let me = arena.var_expr(m);
        let mut regs = RegFileTy::new();
        regs.set(Reg::r(1), RegTy::int(Color::Green, xe));
        let t = CodeTy {
            delta: vec![(x, Kind::Int), (m, Kind::Mem)],
            facts: vec![FactAnn::Ge0(xe)],
            regs,
            queue: vec![],
            mem: me,
        };
        let ctx = Ctx::from_code_ty(&mut arena, &t);
        assert_eq!(ctx.kinds.get(x), Some(Kind::Int));
        assert_eq!(ctx.kinds.get(m), Some(Kind::Mem));
        assert!(ctx.facts.prove_ge0(&mut arena, xe));
        assert!(ctx.regs.get(Reg::r(1)).as_val().is_some());
    }

    #[test]
    fn bump_pcs_increments_expressions() {
        let mut arena = ExprArena::new();
        let mut regs = RegFileTy::new();
        let five = arena.int(5);
        regs.set(
            Reg::Pc(Color::Green),
            RegTy::Val(ValTy::new(Color::Green, BasicTy::Int, five)),
        );
        regs.set(
            Reg::Pc(Color::Blue),
            RegTy::Val(ValTy::new(Color::Blue, BasicTy::Int, five)),
        );
        let m = arena.var("m");
        let mut ctx = Ctx {
            kinds: KindCtx::new(),
            facts: Facts::new(),
            regs,
            queue: vec![],
            mem: m,
        };
        ctx.bump_pcs(&mut arena);
        let g = ctx.pc_expr(Color::Green).expect("pc typed");
        let six = arena.int(6);
        assert!(ctx.facts.prove_eq(&mut arena, g, six));
    }

    #[test]
    fn prove_fact_round_trips_assume_fact() {
        let mut arena = ExprArena::new();
        let mut facts = Facts::new();
        let x = arena.var("x");
        assume_fact(&mut arena, &mut facts, FactAnn::NeqZero(x));
        assert!(prove_fact(&mut arena, &facts, FactAnn::NeqZero(x)));
        assert!(!prove_fact(&mut arena, &facts, FactAnn::EqZero(x)));
    }
}
