//! Instruction typing — the judgment `Σ; T ⊢ ir ⇒ RT` of Figure 7.
//!
//! Each function transforms the flowing [`Ctx`] according to one rule and
//! reports rule-specific failures with the paper's terminology. The guiding
//! principles (§3.3):
//!
//! 1. standard type safety;
//! 2. green depends only on green, blue only on blue;
//! 3. both colors co-sign dangerous actions (stores, transfers);
//! 4. absent faults, green and blue compute equal values — enforced with
//!    singleton types and the Hoare-logic equality obligations.

use talft_isa::ty::ValTy;
use talft_isa::{BasicTy, CVal, Color, Gpr, Instr, OpSrc, Program, Reg, RegTy};
use talft_logic::{BinOp, ExprArena, ExprId};
use talft_obs::LazyCounter;

use crate::compat::{check_transfer, DEntry};
use crate::ctx::Ctx;
use crate::error::TypeError;
use crate::subty::{as_ref, basic_subtype, basic_ty_of_const};

static R_OP: LazyCounter = LazyCounter::new("checker.rule.op");
static R_MOV: LazyCounter = LazyCounter::new("checker.rule.mov");
static R_LDG: LazyCounter = LazyCounter::new("checker.rule.ldG");
static R_LDB: LazyCounter = LazyCounter::new("checker.rule.ldB");
static R_STG: LazyCounter = LazyCounter::new("checker.rule.stG");
static R_STB: LazyCounter = LazyCounter::new("checker.rule.stB");
static R_JMPG: LazyCounter = LazyCounter::new("checker.rule.jmpG");
static R_JMPB: LazyCounter = LazyCounter::new("checker.rule.jmpB");
static R_BZG: LazyCounter = LazyCounter::new("checker.rule.bzG");
static R_BZB: LazyCounter = LazyCounter::new("checker.rule.bzB");
static R_HALT: LazyCounter = LazyCounter::new("checker.rule.halt");

/// Count which Figure 7 rule fired (one counter per instruction form).
fn note_rule(instr: &Instr) {
    let counter = match instr {
        Instr::Op { .. } => &R_OP,
        Instr::Mov { .. } => &R_MOV,
        Instr::Ld {
            color: Color::Green,
            ..
        } => &R_LDG,
        Instr::Ld {
            color: Color::Blue, ..
        } => &R_LDB,
        Instr::St {
            color: Color::Green,
            ..
        } => &R_STG,
        Instr::St {
            color: Color::Blue, ..
        } => &R_STB,
        Instr::Jmp {
            color: Color::Green,
            ..
        } => &R_JMPG,
        Instr::Jmp {
            color: Color::Blue, ..
        } => &R_JMPB,
        Instr::Bz {
            color: Color::Green,
            ..
        } => &R_BZG,
        Instr::Bz {
            color: Color::Blue, ..
        } => &R_BZB,
        Instr::Halt => &R_HALT,
    };
    counter.inc();
}

/// Result of typing one instruction: fall through or stop (`RT = T'` vs
/// `RT = void`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Control continues to the next address with the updated context.
    Continue,
    /// Control does not fall through (`jmpB`, `halt`).
    Void,
}

/// Type-check one instruction, updating `ctx` in place.
pub fn check_instr(
    arena: &mut ExprArena,
    program: &Program,
    ctx: &mut Ctx,
    addr: i64,
    instr: &Instr,
) -> Result<Outcome, TypeError> {
    if talft_obs::enabled() {
        note_rule(instr);
    }
    let fail = |msg: String| TypeError::at(addr, msg).with_instr(instr.to_string());
    match *instr {
        Instr::Op { op, rd, rs, src2 } => {
            let vs = read_val(arena, ctx, rs).map_err(&fail)?;
            let (color2, e2) = match src2 {
                OpSrc::Reg(rt) => {
                    let vt = read_val(arena, ctx, rt).map_err(&fail)?;
                    (vt.color, vt.expr)
                }
                OpSrc::Imm(CVal { color, val }) => (color, arena.int(val)),
            };
            // Principle 2: both operands share one color (rules op2r-t/op1r-t).
            if vs.color != color2 {
                return Err(fail(format!(
                    "operand colors differ: {} vs {} (green may only depend on green)",
                    vs.color, color2
                )));
            }
            let e = arena.bin(op, vs.expr, e2);
            ctx.bump_pcs(arena);
            ctx.regs
                .set(rd.into(), RegTy::Val(ValTy::new(vs.color, BasicTy::Int, e)));
            Ok(Outcome::Continue)
        }
        Instr::Mov { rd, v } => {
            // mov-t via val-t: constants get their most specific Ψ type.
            let e = arena.int(v.val);
            let basic = basic_ty_of_const(program, v.val);
            ctx.bump_pcs(arena);
            ctx.regs
                .set(rd.into(), RegTy::Val(ValTy::new(v.color, basic, e)));
            Ok(Outcome::Continue)
        }
        Instr::Ld { color, rd, rs } => {
            let vs = read_val(arena, ctx, rs).map_err(&fail)?;
            if vs.color != color {
                return Err(fail(format!(
                    "ld{color} address register {rs} is {}-colored",
                    vs.color
                )));
            }
            let pointee = as_ref(arena, &ctx.facts, program, &vs).ok_or_else(|| {
                fail(format!(
                    "ld{color} address is not a reference (no region proves {} in bounds)",
                    arena.display(vs.expr)
                ))
            })?;
            let e = match color {
                // ldG-t: reads through the pending queue: sel (upd Em (Ed,Es)) Es'.
                Color::Green => {
                    let m = queue_applied_mem(arena, ctx);
                    arena.sel(m, vs.expr)
                }
                // ldB-t: reads memory directly: sel Em Es'.
                Color::Blue => arena.sel(ctx.mem, vs.expr),
            };
            ctx.bump_pcs(arena);
            ctx.regs
                .set(rd.into(), RegTy::Val(ValTy::new(color, pointee, e)));
            Ok(Outcome::Continue)
        }
        Instr::St {
            color: Color::Green,
            rd,
            rs,
        } => {
            // stG-t: push a green (address, value) pair onto the queue front.
            let va = read_val(arena, ctx, rd).map_err(&fail)?;
            let vv = read_val(arena, ctx, rs).map_err(&fail)?;
            if va.color != Color::Green || vv.color != Color::Green {
                return Err(fail("stG operands must both be green".into()));
            }
            let pointee = as_ref(arena, &ctx.facts, program, &va)
                .ok_or_else(|| fail("stG address is not a reference".into()))?;
            if !basic_subtype(&vv.basic, &pointee) {
                return Err(fail(format!(
                    "stG stores a {} where the region holds {}",
                    vv.basic, pointee
                )));
            }
            ctx.queue.insert(0, (va.expr, vv.expr));
            ctx.bump_pcs(arena);
            Ok(Outcome::Continue)
        }
        Instr::St {
            color: Color::Blue,
            rd,
            rs,
        } => {
            // stB-t: compare against the queue *back* and commit to memory.
            let va = read_val(arena, ctx, rd).map_err(&fail)?;
            let vv = read_val(arena, ctx, rs).map_err(&fail)?;
            if va.color != Color::Blue || vv.color != Color::Blue {
                return Err(fail("stB operands must both be blue".into()));
            }
            let pointee = as_ref(arena, &ctx.facts, program, &va)
                .ok_or_else(|| fail("stB address is not a reference".into()))?;
            if !basic_subtype(&vv.basic, &pointee) {
                return Err(fail(format!(
                    "stB stores a {} where the region holds {}",
                    vv.basic, pointee
                )));
            }
            let (ed, es) = ctx
                .queue
                .pop()
                .ok_or_else(|| fail("stB with an empty static queue".into()))?;
            // Principle 4: the blue pair must provably equal the queued green
            // pair, else the hardware comparison could fail without a fault
            // (or pass with corrupt data — the §2.2 CSE bug).
            if !ctx.facts.prove_eq(arena, va.expr, ed) {
                let w = ctx.facts.explain_eq(arena, va.expr, ed);
                return Err(fail(format!(
                    "stB address {} is not provably the queued address {}",
                    arena.display(va.expr),
                    arena.display(ed)
                ))
                .with_note(w.note()));
            }
            if !ctx.facts.prove_eq(arena, vv.expr, es) {
                let w = ctx.facts.explain_eq(arena, vv.expr, es);
                return Err(fail(format!(
                    "stB value {} is not provably the queued value {}",
                    arena.display(vv.expr),
                    arena.display(es)
                ))
                .with_note(w.note()));
            }
            ctx.mem = arena.upd(ctx.mem, ed, es);
            ctx.bump_pcs(arena);
            Ok(Outcome::Continue)
        }
        Instr::Jmp {
            color: Color::Green,
            rd,
        } => {
            // jmpG-t: a checked move of the target into d.
            check_d_zero(arena, ctx).map_err(&fail)?;
            let v = read_val(arena, ctx, rd).map_err(&fail)?;
            if v.color != Color::Green {
                return Err(fail("jmpG target register must be green".into()));
            }
            let target = code_target(&v).map_err(&fail)?;
            target_d_is_zero(arena, program, target).map_err(&fail)?;
            ctx.bump_pcs(arena);
            ctx.regs.set(Reg::Dst, RegTy::Val(v));
            Ok(Outcome::Continue)
        }
        Instr::Jmp {
            color: Color::Blue,
            rd,
        } => {
            // jmpB-t: the committing jump; result type void.
            let vb = read_val(arena, ctx, rd).map_err(&fail)?;
            if vb.color != Color::Blue {
                return Err(fail("jmpB target register must be blue".into()));
            }
            let target_b = code_target(&vb).map_err(&fail)?;
            let vd = match ctx.regs.get(Reg::Dst).clone() {
                RegTy::Val(v) => v,
                _ => {
                    return Err(fail(
                        "jmpB requires d to hold a latched green target".into(),
                    ))
                }
            };
            if vd.color != Color::Green {
                return Err(fail("destination register is not green".into()));
            }
            let target_d = code_target(&vd).map_err(&fail)?;
            if target_b != target_d {
                return Err(fail(format!(
                    "green latched code@{target_d} but blue jumps to code@{target_b}"
                )));
            }
            if !ctx.facts.prove_eq(arena, vd.expr, vb.expr) {
                let w = ctx.facts.explain_eq(arena, vd.expr, vb.expr);
                return Err(fail(format!(
                    "jump target expressions differ: {} vs {} (principle 4)",
                    arena.display(vd.expr),
                    arena.display(vb.expr)
                ))
                .with_note(w.note()));
            }
            check_transfer(
                arena,
                program,
                ctx,
                target_b,
                vd.expr,
                vb.expr,
                &DEntry::ResetToZero,
            )
            .map_err(|e| fail(e.reason).with_notes(e.notes))?;
            Ok(Outcome::Void)
        }
        Instr::Bz {
            color: Color::Green,
            rz,
            rd,
        } => {
            // bzG-t: conditional move into d.
            check_d_zero(arena, ctx).map_err(&fail)?;
            let vz = read_val(arena, ctx, rz).map_err(&fail)?;
            if vz.color != Color::Green {
                return Err(fail("bzG condition register must be green".into()));
            }
            let vt = read_val(arena, ctx, rd).map_err(&fail)?;
            if vt.color != Color::Green {
                return Err(fail("bzG target register must be green".into()));
            }
            let target = code_target(&vt).map_err(&fail)?;
            target_d_is_zero(arena, program, target).map_err(&fail)?;
            ctx.bump_pcs(arena);
            ctx.regs.set(
                Reg::Dst,
                RegTy::Cond {
                    guard: vz.expr,
                    inner: vt,
                },
            );
            Ok(Outcome::Continue)
        }
        Instr::Bz {
            color: Color::Blue,
            rz,
            rd,
        } => {
            // bzB-t: commit or fall through.
            let vz = read_val(arena, ctx, rz).map_err(&fail)?;
            if vz.color != Color::Blue {
                return Err(fail("bzB condition register must be blue".into()));
            }
            let vt = read_val(arena, ctx, rd).map_err(&fail)?;
            if vt.color != Color::Blue {
                return Err(fail("bzB target register must be blue".into()));
            }
            let target_b = code_target(&vt).map_err(&fail)?;
            let (guard, inner) = match ctx.regs.get(Reg::Dst).clone() {
                RegTy::Cond { guard, inner } => (guard, inner),
                other => {
                    return Err(fail(format!(
                        "bzB requires d to hold a conditional latched target, found {other:?}"
                    )))
                }
            };
            if inner.color != Color::Green {
                return Err(fail("latched conditional target is not green".into()));
            }
            let target_d = code_target(&inner).map_err(&fail)?;
            if target_b != target_d {
                return Err(fail(format!(
                    "green conditionally latched code@{target_d} but blue tests code@{target_b}"
                )));
            }
            // Δ ⊢ Ez = Ez'' and Δ ⊢ Er = Er' (principle 4).
            if !ctx.facts.prove_eq(arena, vz.expr, guard) {
                let w = ctx.facts.explain_eq(arena, vz.expr, guard);
                return Err(fail(format!(
                    "branch conditions differ: {} vs {}",
                    arena.display(vz.expr),
                    arena.display(guard)
                ))
                .with_note(w.note()));
            }
            if !ctx.facts.prove_eq(arena, inner.expr, vt.expr) {
                let w = ctx.facts.explain_eq(arena, inner.expr, vt.expr);
                return Err(fail(format!(
                    "branch target expressions differ: {} vs {}",
                    arena.display(inner.expr),
                    arena.display(vt.expr)
                ))
                .with_note(w.note()));
            }
            // Taken side: check the transfer under the extra fact Ez = 0.
            {
                let mut taken = ctx.clone();
                taken.facts.assume_eq_zero(arena, vz.expr);
                check_transfer(
                    arena,
                    program,
                    &taken,
                    target_b,
                    inner.expr,
                    vt.expr,
                    &DEntry::ResetToZero,
                )
                .map_err(|e| fail(e.reason).with_notes(e.notes))?;
            }
            // Fall-through postcondition: Ez ≠ 0, and d (dynamically 0 by
            // rule bz-untaken) refines to (G, int, 0) — sound by cond-t-n0.
            ctx.facts.assume_neq_zero(arena, vz.expr);
            let zero = arena.int(0);
            ctx.regs.set(Reg::Dst, RegTy::int(Color::Green, zero));
            ctx.bump_pcs(arena);
            Ok(Outcome::Continue)
        }
        Instr::Halt => Ok(Outcome::Void),
    }
}

/// Read a register as a value type, applying the cond-elim coercion.
pub fn read_val(arena: &mut ExprArena, ctx: &Ctx, r: Gpr) -> Result<ValTy, String> {
    match ctx.regs.get(r.into()).clone() {
        RegTy::Val(v) => Ok(v),
        RegTy::Cond { guard, inner } => {
            if ctx.facts.prove_eq_zero(arena, guard) {
                Ok(inner)
            } else if ctx.facts.prove_neq_zero(arena, guard) {
                let zero = arena.int(0);
                Ok(ValTy::new(inner.color, BasicTy::Int, zero))
            } else {
                Err(format!("register {r} has an unresolved conditional type"))
            }
        }
        RegTy::Top => Err(format!(
            "register {r} has no type (unconstrained registers cannot be read)"
        )),
    }
}

/// The `Γ(d) = (G, int, 0)` premise of `jmpG-t` / `bzG-t`.
fn check_d_zero(arena: &mut ExprArena, ctx: &Ctx) -> Result<(), String> {
    match ctx.regs.get(Reg::Dst).clone() {
        RegTy::Val(v) => {
            if v.color != Color::Green {
                return Err("destination register must be green".into());
            }
            if !ctx.facts.prove_eq_zero(arena, v.expr) {
                return Err(format!(
                    "destination register is not provably 0 (holds {})",
                    arena.display(v.expr)
                ));
            }
            Ok(())
        }
        RegTy::Cond { guard, .. } => {
            if ctx.facts.prove_neq_zero(arena, guard) {
                Ok(()) // cond-elim: the latched value is 0
            } else {
                Err("destination register holds an unresolved conditional target".into())
            }
        }
        RegTy::Top => Err("destination register is untyped".into()),
    }
}

/// The target's own `Γ'(d) = (G, int, 0)` premise.
fn target_d_is_zero(arena: &mut ExprArena, program: &Program, target: i64) -> Result<(), String> {
    let t = program
        .precond(target)
        .ok_or_else(|| format!("code@{target} has no precondition"))?;
    match t.regs.get(Reg::Dst) {
        RegTy::Val(v) if v.color == Color::Green => {
            let facts = talft_logic::Facts::new();
            if facts.prove_eq_zero(arena, v.expr) {
                Ok(())
            } else {
                Err(format!("target code@{target} does not require d = 0"))
            }
        }
        RegTy::Top => Ok(()),
        _ => Err(format!("target code@{target} has an unusual d type")),
    }
}

/// Extract the code-label of a value type (`T → void` basic types).
fn code_target(v: &ValTy) -> Result<i64, String> {
    match v.basic {
        BasicTy::Code(l) => Ok(l),
        ref other => Err(format!("expected a code type, found {other}")),
    }
}

/// `upd Em (Ed,Es)` — memory with the pending queue applied, newest write
/// outermost (used by `ldG-t`).
pub fn queue_applied_mem(arena: &mut ExprArena, ctx: &Ctx) -> ExprId {
    let mut m = ctx.mem;
    for &(d, v) in ctx.queue.iter().rev() {
        m = arena.upd(m, d, v);
    }
    m
}

/// Re-export used by sibling modules for op checks.
#[must_use]
pub fn is_interpreted(op: BinOp) -> bool {
    matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul)
}
