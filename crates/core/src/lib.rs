//! The TAL_FT type system — the primary contribution of *Fault-tolerant
//! Typed Assembly Language* (Perry et al., PLDI 2007), §3.
//!
//! Well-typed TAL_FT programs are **fault tolerant**: under the Single Event
//! Upset model of §2.1, no single transient fault can change the observable
//! output sequence — the hardware either masks it or signals `fault` before
//! corrupt data escapes (Theorem 4). The checker enforces the paper's four
//! principles (§3.3): standard type safety; color separation (green depends
//! only on green); dual-color sign-off on dangerous actions; and
//! green/blue value equality via Hoare-logic singleton types.
//!
//! * [`check_program`] — the code-typing judgment `Σ ⊢ C` ([`check`]);
//! * [`check_instr`] — instruction typing, Figure 7 ([`rules`]);
//! * [`Ctx`] — the flowing static context `T` ([`ctx`]);
//! * [`reg_subtype`] — subtyping and coercions ([`subty`]);
//! * [`check_transfer`] — jump/fall-through compatibility with substitution
//!   inference ([`compat`], [`matching`]);
//! * [`check_boot_state`] — machine-state typing at block boundaries,
//!   Figure 8 ([`state_check`]).
//!
//! # Example
//!
//! ```
//! use talft_isa::assemble;
//! use talft_core::check_program;
//!
//! let src = r#"
//! .data
//! region out at 4096 len 1 : int output
//! .code
//! main:
//!   .pre { forall m:mem; mem: m; }
//!   mov r1, G 5
//!   mov r2, G 4096
//!   stG r2, r1
//!   mov r3, B 5
//!   mov r4, B 4096
//!   stB r4, r3
//!   halt
//! "#;
//! let mut asm = assemble(src).unwrap();
//! check_program(&asm.program, &mut asm.arena).expect("fault tolerant");
//! ```

#![warn(missing_docs)]
// `TypeError` carries a span and witness notes, which pushes `Result<_,
// TypeError>` past clippy's size threshold. Rejection is a cold
// once-per-program path and the rich error IS the product; boxing would
// ripple through the public API for no measurable gain.
#![allow(clippy::result_large_err)]

pub mod check;
pub mod compat;
pub mod ctx;
pub mod error;
pub mod matching;
pub mod rules;
pub mod state_check;
pub mod subty;

pub use check::{check_program, CheckReport};
pub use compat::{check_transfer, prove_mem_eq, DEntry, TransferError};
pub use ctx::Ctx;
pub use error::{Diagnostic, Severity, TypeError, CHECKER_CODE};
pub use rules::{check_instr, Outcome};
pub use state_check::check_boot_state;
pub use subty::{basic_subtype, reg_subtype, val_subtype};
