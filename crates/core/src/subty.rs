//! Value and register subtyping, plus the admissible coercions the checker
//! applies when reading operands.
//!
//! The paper's subtyping: every `(c,b,E1)` is a subtype of `(c,int,E2)` when
//! `Δ ⊢ E1 = E2` (code/ref types forget to `int`), lifted pointwise to
//! register files (`Γ1 ⊆ Γ2`). Our extensions (DESIGN.md "Faithfulness
//! notes"):
//!
//! * **cond-elim**: `Δ ⊢ E' ≠ 0 ⟹ (E'=0 ⇒ (c,b,E)) ≤ (c,int,0)` — sound by
//!   rule `cond-t-n0` (inhabitants are exactly `c 0` when the guard is
//!   provably non-zero);
//! * **cond-intro**: `(c,b,E) ≤ (E'=0 ⇒ (c,b',E''))` when `Δ ⊢ E' = 0` and
//!   the value types are related, or when `Δ ⊢ E' ≠ 0` and `Δ ⊢ E = 0`;
//! * **region coercion**: `(c,int,E) ≤ (c, b ref, E)` when a declared data
//!   region `[lo,hi) : b` satisfies `Δ ⊢ lo ≤ E < hi` — the array-typed
//!   generalization of the paper's `base-t` (which types only constant
//!   addresses via `Ψ`).

use talft_isa::ty::ValTy;
use talft_isa::{BasicTy, Program, RegTy};
use talft_logic::{ExprArena, Facts};

/// `Δ ⊢ b ≤ b'` on basic types: reflexive, and everything forgets to `int`.
#[must_use]
pub fn basic_subtype(sub: &BasicTy, sup: &BasicTy) -> bool {
    sub == sup || *sup == BasicTy::Int
}

/// `Δ ⊢ t ≤ t'` on register types.
pub fn reg_subtype(arena: &mut ExprArena, facts: &Facts, sub: &RegTy, sup: &RegTy) -> bool {
    match (sub, sup) {
        (_, RegTy::Top) => true,
        (RegTy::Val(a), RegTy::Val(b)) => val_subtype(arena, facts, a, b),
        (
            RegTy::Cond {
                guard: g1,
                inner: i1,
            },
            RegTy::Cond {
                guard: g2,
                inner: i2,
            },
        ) => facts.prove_eq(arena, *g1, *g2) && val_subtype(arena, facts, i1, i2),
        // cond-elim: guard provably non-zero ⇒ the value is (c, int, 0).
        (RegTy::Cond { guard, inner }, RegTy::Val(b)) => {
            if !facts.prove_neq_zero(arena, *guard) {
                return false;
            }
            let zero = arena.int(0);
            let coerced = ValTy::new(inner.color, BasicTy::Int, zero);
            val_subtype(arena, facts, &coerced, b)
        }
        // cond-intro.
        (RegTy::Val(a), RegTy::Cond { guard, inner }) => {
            if facts.prove_eq_zero(arena, *guard) {
                val_subtype(arena, facts, a, inner)
            } else if facts.prove_neq_zero(arena, *guard) {
                // value must be the literal 0 of the right color
                a.color == inner.color && facts.prove_eq_zero(arena, a.expr)
            } else {
                false
            }
        }
        (RegTy::Top, _) => false,
    }
}

/// `Δ ⊢ (c,b,E) ≤ (c',b',E')`.
pub fn val_subtype(arena: &mut ExprArena, facts: &Facts, sub: &ValTy, sup: &ValTy) -> bool {
    sub.color == sup.color
        && basic_subtype(&sub.basic, &sup.basic)
        && facts.prove_eq(arena, sub.expr, sup.expr)
}

/// Try to view a value type as a **reference** `(c, b ref, E)`, applying the
/// region coercion if its basic type is `int`-like. Returns the pointee type.
pub fn as_ref(
    arena: &mut ExprArena,
    facts: &Facts,
    program: &Program,
    v: &ValTy,
) -> Option<BasicTy> {
    if let BasicTy::Ref(b) = &v.basic {
        return Some((**b).clone());
    }
    // Region coercion: find a region whose bounds provably contain E.
    for r in &program.regions {
        if facts.prove_in_range(arena, v.expr, r.base, r.base + r.len) {
            return Some(r.elem.clone());
        }
    }
    None
}

/// The most specific basic type of a constant address `n` (`Σ ⊢ n : b` of
/// rule `base-t`): a code type if `n` is an annotated code address, a
/// reference type if it lies in a data region, else `int`.
#[must_use]
pub fn basic_ty_of_const(program: &Program, n: i64) -> BasicTy {
    if program.precond(n).is_some() {
        return BasicTy::Code(n);
    }
    if let Some(t) = program.data_ptr_ty(n) {
        return t;
    }
    BasicTy::Int
}

#[cfg(test)]
mod tests {
    use super::*;
    use talft_isa::{assemble, Color};

    fn setup() -> (ExprArena, Facts) {
        (ExprArena::new(), Facts::new())
    }

    #[test]
    fn basic_subtyping_forgets_to_int() {
        assert!(basic_subtype(&BasicTy::Int, &BasicTy::Int));
        assert!(basic_subtype(&BasicTy::Code(3), &BasicTy::Int));
        assert!(basic_subtype(&BasicTy::Int.reference(), &BasicTy::Int));
        assert!(!basic_subtype(&BasicTy::Int, &BasicTy::Code(3)));
        assert!(!basic_subtype(&BasicTy::Code(3), &BasicTy::Code(4)));
    }

    #[test]
    fn val_subtype_requires_color_and_expr_equality() {
        let (mut a, f) = setup();
        let x = a.var("x");
        let y = a.var("y");
        let g1 = ValTy::new(Color::Green, BasicTy::Int, x);
        let g2 = ValTy::new(Color::Green, BasicTy::Int, y);
        assert!(!val_subtype(&mut a, &f, &g1, &g2));
        let b1 = ValTy::new(Color::Blue, BasicTy::Int, x);
        assert!(!val_subtype(&mut a, &f, &g1, &b1));
        let sum1 = {
            let one = a.int(1);
            a.add(x, one)
        };
        let sum2 = {
            let one = a.int(1);
            a.add(one, x)
        };
        let s1 = ValTy::new(Color::Green, BasicTy::Int, sum1);
        let s2 = ValTy::new(Color::Green, BasicTy::Int, sum2);
        assert!(val_subtype(&mut a, &f, &s1, &s2));
    }

    #[test]
    fn cond_elim_requires_nonzero_guard() {
        let (mut a, mut f) = setup();
        let g = a.var("g");
        let x = a.var("x");
        let cond = RegTy::Cond {
            guard: g,
            inner: ValTy::new(Color::Green, BasicTy::Code(1), x),
        };
        let zero = a.int(0);
        let target = RegTy::Val(ValTy::new(Color::Green, BasicTy::Int, zero));
        assert!(!reg_subtype(&mut a, &f, &cond, &target));
        f.assume_neq_zero(&mut a, g);
        assert!(reg_subtype(&mut a, &f, &cond, &target));
    }

    #[test]
    fn cond_intro_under_zero_guard() {
        let (mut a, mut f) = setup();
        let g = a.var("g");
        let x = a.var("x");
        f.assume_eq_zero(&mut a, g);
        let v = RegTy::Val(ValTy::new(Color::Green, BasicTy::Int, x));
        let cond = RegTy::Cond {
            guard: g,
            inner: ValTy::new(Color::Green, BasicTy::Int, x),
        };
        assert!(reg_subtype(&mut a, &f, &v, &cond));
    }

    #[test]
    fn everything_below_top_nothing_above() {
        let (mut a, f) = setup();
        let x = a.var("x");
        let v = RegTy::Val(ValTy::new(Color::Green, BasicTy::Int, x));
        assert!(reg_subtype(&mut a, &f, &v, &RegTy::Top));
        assert!(!reg_subtype(&mut a, &f, &RegTy::Top, &v));
        assert!(reg_subtype(&mut a, &f, &RegTy::Top, &RegTy::Top));
    }

    #[test]
    fn region_coercion_typed_by_bounds() {
        let src = "\n.data\nregion tab at 4096 len 8 : int\n.code\nmain:\n  \
                   .pre { forall m:mem; mem: m; }\n  halt\n";
        let asm = assemble(src).expect("ok");
        let (mut a, mut f) = setup();
        let i = a.var("i");
        // addr = 4096 + i with 0 ≤ i < 8
        let base = a.int(4096);
        let addr = a.add(base, i);
        let v = ValTy::new(Color::Green, BasicTy::Int, addr);
        assert_eq!(as_ref(&mut a, &f, &asm.program, &v), None);
        f.assume_in_range(&mut a, i, 0, 8);
        assert_eq!(as_ref(&mut a, &f, &asm.program, &v), Some(BasicTy::Int));
        // a real ref type needs no coercion
        let rv = ValTy::new(Color::Green, BasicTy::Int.reference(), addr);
        assert_eq!(as_ref(&mut a, &f, &asm.program, &rv), Some(BasicTy::Int));
    }

    #[test]
    fn const_basic_types_from_psi() {
        let src = "\n.data\nregion tab at 4096 len 8 : int\n.code\nmain:\n  \
                   .pre { forall m:mem; mem: m; }\n  halt\n";
        let asm = assemble(src).expect("ok");
        assert_eq!(basic_ty_of_const(&asm.program, 1), BasicTy::Code(1));
        assert_eq!(
            basic_ty_of_const(&asm.program, 4100),
            BasicTy::Int.reference()
        );
        assert_eq!(basic_ty_of_const(&asm.program, 9999), BasicTy::Int);
    }
}
