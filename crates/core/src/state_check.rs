//! Machine-state typing — a decidable instance of the `⊢Z S` judgment of
//! Figure 8, checked at block boundaries.
//!
//! The paper's `S-t` rule existentially quantifies a closing substitution
//! `∃S. · ⊢ S : Δ`. When both program counters sit at an *annotated* address
//! with no pending `ir`, the singleton discipline makes `S` recoverable from
//! the concrete register bank: a register typed `(c, b, x)` pins `S(x)` to
//! its runtime value, and the precondition's memory variable is pinned to
//! the runtime memory. The remaining premises (`R-t`, `Q-t`, `M-t`, colors,
//! pc agreement, facts) are then *evaluated*.
//!
//! This is the dynamic Preservation/Progress audit used by the
//! fault-injection campaigns: every boundary state of a fault-free run of a
//! well-typed program must pass.

use talft_isa::{BasicTy, Color, Program, Reg, RegTy};
use talft_logic::{eval_int, Env, ExprArena, ExprId, ExprNode, MemVal, Value};
use talft_machine::Machine;

/// Check the boot state of `m` against the program's entry precondition.
pub fn check_boot_state(
    machine: &Machine,
    program: &Program,
    arena: &mut ExprArena,
) -> Result<(), String> {
    check_state_at(machine, program, arena, program.entry)
}

/// Check a boundary state (pcs at `addr`, no pending instruction) against
/// the precondition at `addr`.
pub fn check_state_at(
    machine: &Machine,
    program: &Program,
    arena: &mut ExprArena,
    addr: i64,
) -> Result<(), String> {
    let pre = program
        .precond(addr)
        .ok_or_else(|| format!("address {addr} has no precondition"))?;

    // R-t pc premises: right colors, equal values, at this address.
    let pcg = machine.reg(Reg::Pc(Color::Green));
    let pcb = machine.reg(Reg::Pc(Color::Blue));
    if pcg.color != Color::Green || pcb.color != Color::Blue {
        return Err("program counters have wrong colors".into());
    }
    if pcg.val != pcb.val {
        return Err(format!(
            "program counters disagree: {} vs {}",
            pcg.val, pcb.val
        ));
    }
    if pcg.val != addr {
        return Err(format!(
            "program counters at {} but checking {addr}",
            pcg.val
        ));
    }
    if machine.ir().is_some() {
        return Err("state has a pending instruction (not a boundary state)".into());
    }

    // Recover S: bind bare-variable singleton expressions from concrete
    // values; bind every memory-kinded variable to the runtime memory.
    let mut env = Env::new();
    let mem_val = {
        let mut mv = MemVal::new();
        for (&a, &v) in machine.memory() {
            mv.set(a, v);
        }
        mv
    };
    for (v, k) in pre.delta.iter() {
        if *k == talft_logic::Kind::Mem {
            env.bind_mem(*v, mem_val.clone());
        }
    }
    // Registers first (singletons), then queue entries.
    for (r, t) in pre.regs.iter() {
        if let (RegTy::Val(vt), Reg::Gpr(_)) = (t, r) {
            bind_bare(arena, &mut env, vt.expr, machine.rval(r));
        }
    }
    for (i, (de, ve)) in pre.queue.iter().enumerate() {
        if let Some(&(a, v)) = machine.queue().get(i) {
            bind_bare(arena, &mut env, *de, a);
            bind_bare(arena, &mut env, *ve, v);
        }
    }
    for (v, k) in pre.delta.iter() {
        if *k == talft_logic::Kind::Int && env.get(*v).is_none() {
            return Err(format!(
                "cannot recover a witness for variable {} from the state",
                arena.var_name(*v)
            ));
        }
    }

    // Γ premises: every typed register's value satisfies its type.
    for (r, t) in pre.regs.iter() {
        match t {
            RegTy::Top => {}
            RegTy::Val(vt) => {
                let cv = machine.reg(r);
                if matches!(r, Reg::Gpr(_) | Reg::Dst) && cv.color != vt.color {
                    return Err(format!(
                        "register {r} has color {}, type wants {}",
                        cv.color, vt.color
                    ));
                }
                let want = eval_int(arena, &env, vt.expr)
                    .map_err(|e| format!("cannot evaluate type of {r}: {e}"))?;
                if want != cv.val {
                    return Err(format!(
                        "register {r} holds {}, type demands {want}",
                        cv.val
                    ));
                }
                check_basic(program, &vt.basic, cv.val)
                    .map_err(|e| format!("register {r}: {e}"))?;
            }
            RegTy::Cond { guard, inner } => {
                let g = eval_int(arena, &env, *guard)
                    .map_err(|e| format!("cannot evaluate guard of {r}: {e}"))?;
                let cv = machine.reg(r);
                if g == 0 {
                    let want = eval_int(arena, &env, inner.expr)
                        .map_err(|e| format!("cannot evaluate type of {r}: {e}"))?;
                    if want != cv.val {
                        return Err(format!(
                            "conditional register {r} holds {}, type demands {want}",
                            cv.val
                        ));
                    }
                } else if cv.val != 0 {
                    return Err(format!(
                        "conditional register {r} must be 0 when its guard is non-zero"
                    ));
                }
            }
        }
    }

    // Q-t: queue length and contents.
    if machine.queue().len() != pre.queue.len() {
        return Err(format!(
            "queue has {} entries, type describes {}",
            machine.queue().len(),
            pre.queue.len()
        ));
    }
    for (i, ((de, ve), &(a, v))) in pre.queue.iter().zip(machine.queue().iter()).enumerate() {
        let da = eval_int(arena, &env, *de).map_err(|e| format!("queue[{i}]: {e}"))?;
        let dv = eval_int(arena, &env, *ve).map_err(|e| format!("queue[{i}]: {e}"))?;
        if da != a || dv != v {
            return Err(format!("queue[{i}] is ({a},{v}), type demands ({da},{dv})"));
        }
    }

    // M-t: the memory description denotes the runtime memory.
    match talft_logic::eval(arena, &env, pre.mem) {
        Ok(Value::Mem(mv)) => {
            for (&a, &v) in machine.memory() {
                if mv.get(a) != v {
                    return Err(format!(
                        "memory description disagrees at {a}: {} vs {v}",
                        mv.get(a)
                    ));
                }
            }
            for (a, _) in mv.iter() {
                if !machine.in_mem_dom(a) {
                    return Err(format!("memory description writes outside Dom(M) at {a}"));
                }
            }
        }
        Ok(Value::Int(_)) => return Err("memory description has kind int".into()),
        Err(e) => return Err(format!("cannot evaluate memory description: {e}")),
    }

    // Facts must hold under the recovered witnesses.
    for f in &pre.facts {
        let (e, ok): (ExprId, fn(i64) -> bool) = match *f {
            talft_isa::FactAnn::EqZero(e) => (e, |n| n == 0),
            talft_isa::FactAnn::NeqZero(e) => (e, |n| n != 0),
            talft_isa::FactAnn::Ge0(e) => (e, |n| n >= 0),
        };
        let n = eval_int(arena, &env, e).map_err(|e| format!("fact: {e}"))?;
        if !ok(n) {
            return Err(format!(
                "precondition fact over {} fails (value {n})",
                arena.display(e)
            ));
        }
    }

    Ok(())
}

/// Bind `expr ↦ value` when `expr` is a bare variable not yet bound.
fn bind_bare(arena: &ExprArena, env: &mut Env, expr: ExprId, value: i64) {
    if let ExprNode::Var(v) = arena.node(expr) {
        if env.get(v).is_none() {
            env.bind_int(v, value);
        }
    }
}

/// `Σ ⊢ n : b` against the concrete heap: any `n` is an `int`; code values
/// must be the labeled address; references must point into a region of the
/// pointee type.
fn check_basic(program: &Program, b: &BasicTy, n: i64) -> Result<(), String> {
    match b {
        BasicTy::Int => Ok(()),
        BasicTy::Code(l) => {
            if n == *l {
                Ok(())
            } else {
                Err(format!("value {n} does not point at code@{l}"))
            }
        }
        BasicTy::Ref(inner) => match program.region_of(n) {
            Some(r) if r.elem == **inner => Ok(()),
            Some(r) => Err(format!(
                "value {n} points into region {} of type {}, not {}",
                r.name, r.elem, inner
            )),
            None => Err(format!("value {n} points outside every data region")),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use talft_isa::assemble;
    use talft_machine::{run, Machine};

    #[test]
    fn boot_state_of_trivial_program_checks() {
        let src = "\n.code\nmain:\n  .pre { forall m:mem; mem: m; }\n  halt\n";
        let mut asm = assemble(src).expect("ok");
        let m = Machine::boot(Arc::new(asm.program.clone()));
        check_boot_state(&m, &asm.program, &mut asm.arena).expect("boot well-typed");
    }

    #[test]
    fn boundary_state_at_jump_target_checks() {
        let src = r#"
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 3
  mov r2, B 3
  mov r3, G @body
  mov r4, B @body
  jmpG r3
  jmpB r4
body:
  .pre { forall x:int, m:mem; r1: (G, int, x); r2: (B, int, x); mem: m; }
  halt
"#;
        let mut asm = assemble(src).expect("ok");
        let prog = Arc::new(asm.program.clone());
        let mut m = Machine::boot(Arc::clone(&prog));
        let body = prog.label_addr("body").expect("label");
        loop {
            talft_machine::step(&mut m);
            if m.ir().is_none() && m.rval(Reg::Pc(Color::Green)) == body {
                break;
            }
            assert!(m.status().is_running(), "unexpected stop: {:?}", m.status());
        }
        check_state_at(&m, &prog, &mut asm.arena, body).expect("boundary well-typed");
    }

    #[test]
    fn diverged_pcs_fail_state_check() {
        let src = "\n.code\nmain:\n  .pre { forall m:mem; mem: m; }\n  halt\n";
        let mut asm = assemble(src).expect("ok");
        let prog = Arc::new(asm.program.clone());
        let mut m = Machine::boot(Arc::clone(&prog));
        m.set_reg(Reg::Pc(Color::Blue), talft_isa::CVal::blue(5));
        let err = check_boot_state(&m, &prog, &mut asm.arena).expect_err("ill-typed");
        assert!(err.contains("disagree"));
    }

    #[test]
    fn queue_contents_are_checked() {
        let src = "\n.data\nregion out at 4096 len 1 : int output\n.code\nmain:\n  \
                   .pre { forall m:mem; mem: m; }\n  halt\n";
        let mut asm = assemble(src).expect("ok");
        let prog = Arc::new(asm.program.clone());
        let mut m = Machine::boot(Arc::clone(&prog));
        m.queue_mut().push_front((4096, 5));
        let err = check_boot_state(&m, &prog, &mut asm.arena).expect_err("queue mismatch");
        assert!(err.contains("queue"));
    }

    #[test]
    fn final_state_no_longer_matches_entry() {
        let src = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  mov r3, B 5
  mov r4, B 4096
  stB r4, r3
  halt
"#;
        let mut asm = assemble(src).expect("ok");
        let prog = Arc::new(asm.program.clone());
        let mut m = Machine::boot(Arc::clone(&prog));
        run(&mut m, 1000);
        assert!(check_boot_state(&m, &prog, &mut asm.arena).is_err());
    }
}
