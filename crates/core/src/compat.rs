//! Control-transfer compatibility: the final seven premises of the
//! `jmpB-t` / `bzB-t` rules (Figure 7), shared with fall-through into an
//! annotated address (code typing, Figure 8's `C-t`).
//!
//! Given a target precondition `T' = (Δ'; Γ'; (Ed',Es'); Em')`, we must find
//! `S` with `Δ ⊢ S : Δ'` such that:
//!
//! * `S(Γ')(d)` is compatible with what `d` will hold on entry
//!   (hardware-reset `(G,int,0)` after a committed jump; the current `d`
//!   type on fall-through);
//! * `S(Γ')(pcG) = (G,int,Er')` and `S(Γ')(pcB) = (B,int,Er)`;
//! * `Δ ⊢ Γ ⊆ S(Γ')` (general-purpose registers, pointwise subtyping);
//! * `Δ ⊢ (Ed,Es) = S((Ed',Es'))` (queue descriptions agree);
//! * `Δ ⊢ Em = S(Em')` (memory descriptions agree);
//! * every fact asserted by `T'` holds under `S` (our `Δ`-facts extension).

use talft_isa::ty::ValTy;
use talft_isa::{BasicTy, Color, Program, Reg, RegTy};
use talft_logic::{norm_mem, ExprArena, ExprId, Facts};
use talft_obs::LazyHistogram;

use crate::ctx::{prove_fact, Ctx};
use crate::matching::{goals_for_target, subst_reg_ty, GoalSet};
use crate::subty::reg_subtype;

static TRANSFER_NS: LazyHistogram = LazyHistogram::new("checker.pass.transfer.ns");

/// What `d` holds when control arrives at the target.
#[derive(Debug, Clone)]
pub enum DEntry {
    /// A committed `jmpB`/`bzB` reset `d` to `G 0`.
    ResetToZero,
    /// Fall-through: `d` keeps its current type.
    Current(RegTy),
}

/// A transfer-compatibility failure: the primary reason plus secondary
/// notes (solver failure witnesses naming the unbounded atom or the
/// insufficient fact range — see `talft_logic::EntailWitness`).
#[derive(Debug, Clone)]
pub struct TransferError {
    /// What went wrong, in the paper's premise terminology.
    pub reason: String,
    /// Witness notes to attach to the diagnostic.
    pub notes: Vec<String>,
}

impl TransferError {
    fn new(reason: String) -> Self {
        Self {
            reason,
            notes: Vec::new(),
        }
    }

    fn with_witness(mut self, w: &talft_logic::EntailWitness) -> Self {
        self.notes.push(w.note());
        self
    }
}

impl From<String> for TransferError {
    fn from(reason: String) -> Self {
        Self::new(reason)
    }
}

impl std::fmt::Display for TransferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.reason)
    }
}

/// Check transfer compatibility against the precondition at `target_addr`.
///
/// `er_green` / `er_blue` are the static expressions the two program
/// counters will hold on entry (for jumps, the green latched target and the
/// blue argument; for fall-through, the current pc expressions).
pub fn check_transfer(
    arena: &mut ExprArena,
    program: &Program,
    ctx: &Ctx,
    target_addr: i64,
    er_green: ExprId,
    er_blue: ExprId,
    d_entry: &DEntry,
) -> Result<(), TransferError> {
    let _span = TRANSFER_NS.span();
    let target = program.precond(target_addr).ok_or_else(|| {
        TransferError::new(format!("transfer to unannotated address {target_addr}"))
    })?;

    // Infer S by matching target patterns against the current context.
    let mut goals = GoalSet::new();
    goals_for_target(
        &mut goals, arena, target, &ctx.regs, &ctx.queue, ctx.mem, er_green, er_blue,
    )?;
    let delta_target = target.kind_ctx();
    let (s, residual) = goals
        .solve(arena, &ctx.facts, &delta_target)
        .map_err(|e| format!("substitution inference failed: {e}"))?;

    // Δ ⊢ S : Δ' (kind check every binding).
    s.well_formed(arena, &ctx.kinds, &delta_target)
        .map_err(|e| format!("inferred substitution ill-formed: {e}"))?;

    // Residual structural-matching obligations.
    for g in residual {
        if !ctx.facts.prove_eq(arena, g.pattern, g.subject) {
            let w = ctx.facts.explain_eq(arena, g.pattern, g.subject);
            return Err(TransferError::new(format!(
                "cannot prove {} = {} for the transfer to {target_addr}",
                arena.display(g.pattern),
                arena.display(g.subject)
            ))
            .with_witness(&w));
        }
    }

    // d premise.
    let target_d = subst_reg_ty(arena, &s, target.regs.get(Reg::Dst));
    let entry_d: RegTy = match d_entry {
        DEntry::ResetToZero => {
            let zero = arena.int(0);
            RegTy::Val(ValTy::new(Color::Green, BasicTy::Int, zero))
        }
        DEntry::Current(t) => t.clone(),
    };
    if !reg_subtype(arena, &ctx.facts, &entry_d, &target_d) {
        return Err(TransferError::new(format!(
            "destination register type mismatch entering {target_addr}"
        )));
    }

    // pc premises: S(Γ')(pcc) = (c, int, Er_c).
    for (c, er) in [(Color::Green, er_green), (Color::Blue, er_blue)] {
        match subst_reg_ty(arena, &s, target.regs.get(Reg::Pc(c))) {
            RegTy::Val(v) => {
                if v.color != c {
                    return Err(TransferError::new(format!("target pc{c} has wrong color")));
                }
                if !ctx.facts.prove_eq(arena, v.expr, er) {
                    let w = ctx.facts.explain_eq(arena, v.expr, er);
                    return Err(TransferError::new(format!(
                        "target pc{c} expression {} does not match transfer target {}",
                        arena.display(v.expr),
                        arena.display(er)
                    ))
                    .with_witness(&w));
                }
            }
            RegTy::Top => { /* target does not constrain this pc */ }
            RegTy::Cond { .. } => {
                return Err(TransferError::new(format!(
                    "target pc{c} has a conditional type"
                )))
            }
        }
    }

    // Γ ⊆ S(Γ') on general-purpose registers.
    for (r, t) in target.regs.iter() {
        if !matches!(r, Reg::Gpr(_)) {
            continue;
        }
        let want = subst_reg_ty(arena, &s, t);
        let have = ctx.regs.get(r).clone();
        if !reg_subtype(arena, &ctx.facts, &have, &want) {
            return Err(TransferError::new(format!(
                "register {r} is not a subtype of the target's requirement at {target_addr}"
            )));
        }
    }

    // Queue premise (lengths were matched during goal collection).
    for (i, ((td, tv), (cd, cv))) in target.queue.iter().zip(ctx.queue.iter()).enumerate() {
        let tds = s.apply(arena, *td);
        let tvs = s.apply(arena, *tv);
        for (want, have) in [(tds, *cd), (tvs, *cv)] {
            if !ctx.facts.prove_eq(arena, want, have) {
                let w = ctx.facts.explain_eq(arena, want, have);
                return Err(TransferError::new(format!(
                    "queue entry {i} mismatch entering {target_addr}"
                ))
                .with_witness(&w));
            }
        }
    }

    // Memory premise: Δ ⊢ Em = S(Em').
    let tm = s.apply(arena, target.mem);
    if !prove_mem_eq(arena, &ctx.facts, ctx.mem, tm) {
        return Err(TransferError::new(format!(
            "memory description mismatch entering {target_addr}: have {}, target wants {}",
            arena.display(ctx.mem),
            arena.display(tm)
        )));
    }

    // Target facts must hold under S.
    for f in &target.facts {
        let fs = match *f {
            talft_isa::FactAnn::EqZero(e) => talft_isa::FactAnn::EqZero(s.apply(arena, e)),
            talft_isa::FactAnn::NeqZero(e) => talft_isa::FactAnn::NeqZero(s.apply(arena, e)),
            talft_isa::FactAnn::Ge0(e) => talft_isa::FactAnn::Ge0(s.apply(arena, e)),
        };
        if !prove_fact(arena, &ctx.facts, fs) {
            let w = match fs {
                talft_isa::FactAnn::EqZero(e) => ctx.facts.explain_eq_zero(arena, e),
                talft_isa::FactAnn::NeqZero(e) => ctx.facts.explain_neq_zero(arena, e),
                talft_isa::FactAnn::Ge0(e) => ctx.facts.explain_ge0(arena, e),
            };
            return Err(TransferError::new(format!(
                "cannot establish a fact required by the target at {target_addr}"
            ))
            .with_witness(&w));
        }
    }

    Ok(())
}

/// `Δ ⊢ Em1 = Em2` via memory normal forms: identical base, same number of
/// writes, pointwise provably-equal addresses and values.
pub fn prove_mem_eq(arena: &mut ExprArena, facts: &Facts, e1: ExprId, e2: ExprId) -> bool {
    if e1 == e2 {
        return true;
    }
    let n1 = norm_mem(arena, facts, e1);
    let n2 = norm_mem(arena, facts, e2);
    if n1.base != n2.base || n1.writes.len() != n2.writes.len() {
        return false;
    }
    n1.writes
        .iter()
        .zip(n2.writes.iter())
        .all(|((a1, v1), (a2, v2))| {
            facts.poly_provably_zero(&a1.sub(a2)) && facts.poly_provably_zero(&v1.sub(v2))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_eq_modulo_write_order_and_overwrite() {
        let mut arena = ExprArena::new();
        let facts = Facts::new();
        let m = arena.var("m");
        let a1 = arena.int(100);
        let a2 = arena.int(200);
        let v1 = arena.int(1);
        let v2 = arena.int(2);
        let lhs = {
            let t = arena.upd(m, a1, v1);
            arena.upd(t, a2, v2)
        };
        let rhs = {
            let t = arena.upd(m, a2, v2);
            arena.upd(t, a1, v1)
        };
        assert!(prove_mem_eq(&mut arena, &facts, lhs, rhs));
        // overwrite collapses
        let lhs2 = {
            let t = arena.upd(m, a1, v2);
            arena.upd(t, a1, v1)
        };
        let rhs2 = arena.upd(m, a1, v1);
        assert!(prove_mem_eq(&mut arena, &facts, lhs2, rhs2));
        // different values differ
        let bad = arena.upd(m, a1, v2);
        assert!(!prove_mem_eq(&mut arena, &facts, rhs2, bad));
    }

    #[test]
    fn mem_eq_uses_facts_for_symbolic_addresses() {
        let mut arena = ExprArena::new();
        let mut facts = Facts::new();
        let m = arena.var("m");
        let i = arena.var("i");
        let j = arena.var("j");
        let v = arena.int(9);
        let lhs = arena.upd(m, i, v);
        let rhs = arena.upd(m, j, v);
        assert!(!prove_mem_eq(&mut arena, &facts, lhs, rhs));
        facts.assume_eq(&mut arena, i, j);
        assert!(prove_mem_eq(&mut arena, &facts, lhs, rhs));
    }
}
