//! Whole-program checking — the code-typing judgment `Σ ⊢ C` of Figure 8.
//!
//! Every annotated address opens a block; the checker walks the block
//! forward under the rules of Figure 7 until the result type is `void`
//! (`jmpB`, `halt`) or control falls through into the next annotated
//! address, where transfer compatibility is checked (the `Ψ(n+1) = T' →
//! void` premise of `C-t`, generalized to compatibility-under-substitution,
//! i.e. the weakening a jump would be allowed). Finally, every instruction
//! must have been covered by some block — the paper types *every* address.

use talft_isa::{Color, Program};
use talft_logic::ExprArena;
use talft_obs::{LazyCounter, LazyHistogram, LazyMaxGauge};

use crate::compat::{check_transfer, DEntry};
use crate::ctx::Ctx;
use crate::error::TypeError;
use crate::rules::{check_instr, Outcome};

static CHECK_NS: LazyHistogram = LazyHistogram::new("checker.check_program.ns");
static VALIDATE_NS: LazyHistogram = LazyHistogram::new("checker.pass.validate.ns");
static BLOCK_NS: LazyHistogram = LazyHistogram::new("checker.pass.block.ns");
static BLOCKS: LazyCounter = LazyCounter::new("checker.blocks");
static INSTRS: LazyCounter = LazyCounter::new("checker.instrs");
static ACCEPTS: LazyCounter = LazyCounter::new("checker.accepts");
static REJECTS: LazyCounter = LazyCounter::new("checker.rejections");
static EXPR_DEPTH: LazyMaxGauge = LazyMaxGauge::new("logic.expr.depth.max");
static ARENA_NODES: LazyMaxGauge = LazyMaxGauge::new("logic.expr.arena.nodes");

/// Statistics from a successful check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckReport {
    /// Number of annotated blocks checked.
    pub blocks: usize,
    /// Number of instructions checked.
    pub instrs: usize,
}

/// Type-check a whole program (`Σ ⊢ C` plus structural validation).
pub fn check_program(program: &Program, arena: &mut ExprArena) -> Result<CheckReport, TypeError> {
    let _span = CHECK_NS.span();
    let result = check_program_inner(program, arena).map_err(|e| e.located(program));
    if talft_obs::enabled() {
        match &result {
            Ok(_) => ACCEPTS.inc(),
            Err(_) => REJECTS.inc(),
        }
        // O(arena) but only while profiling: record how deep the static
        // expressions grew and how large the hash-consing arena got.
        EXPR_DEPTH.record(u64::from(arena.max_depth()));
        ARENA_NODES.record(arena.len() as u64);
    }
    result
}

fn check_program_inner(program: &Program, arena: &mut ExprArena) -> Result<CheckReport, TypeError> {
    {
        let _vspan = VALIDATE_NS.span();
        program
            .validate(arena)
            .map_err(|e| TypeError::at(0, format!("structural error: {e}")))?;
    }

    let mut covered = vec![false; program.code_len()];
    let mut blocks = 0usize;
    let mut instrs = 0usize;

    for (&start, pre) in &program.preconds {
        blocks += 1;
        let _bspan = BLOCK_NS.span();
        let mut ctx = Ctx::from_code_ty(arena, pre);
        let mut addr = start;
        loop {
            if addr != start && program.precond(addr).is_some() {
                // Fall-through into the next annotated block: check
                // compatibility with its precondition, pcs at their current
                // expressions, d carried over.
                let er_g = ctx.pc_expr(Color::Green).ok_or_else(|| {
                    TypeError::at(addr, "green pc lost its type before fall-through")
                })?;
                let er_b = ctx.pc_expr(Color::Blue).ok_or_else(|| {
                    TypeError::at(addr, "blue pc lost its type before fall-through")
                })?;
                let d = ctx.regs.get(talft_isa::Reg::Dst).clone();
                check_transfer(arena, program, &ctx, addr, er_g, er_b, &DEntry::Current(d))
                    .map_err(|e| {
                        TypeError::at(addr, format!("fall-through: {}", e.reason))
                            .with_notes(e.notes)
                    })?;
                break;
            }
            let instr = match program.instr(addr) {
                Some(i) => *i,
                None => {
                    return Err(TypeError::at(
                        addr,
                        "control falls off the end of code memory",
                    ))
                }
            };
            let idx = usize::try_from(addr - 1).expect("valid code address");
            covered[idx] = true;
            instrs += 1;
            match check_instr(arena, program, &mut ctx, addr, &instr)? {
                Outcome::Continue => addr += 1,
                Outcome::Void => break,
            }
        }
    }

    if let Some(idx) = covered.iter().position(|&c| !c) {
        return Err(TypeError::at(
            idx as i64 + 1,
            "instruction not covered by any annotated block (unreachable from any label)",
        ));
    }

    BLOCKS.add(blocks as u64);
    INSTRS.add(instrs as u64);
    Ok(CheckReport { blocks, instrs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use talft_isa::assemble;

    fn check_src(src: &str) -> Result<CheckReport, TypeError> {
        let mut asm = assemble(src).expect("assembles");
        check_program(&asm.program, &mut asm.arena)
    }

    /// The paper's §2.2 six-instruction store sequence type-checks.
    #[test]
    fn paper_store_sequence_checks() {
        let src = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  mov r3, B 5
  mov r4, B 4096
  stB r4, r3
  halt
"#;
        let rep = check_src(src).expect("well-typed");
        assert_eq!(rep.blocks, 1);
        assert_eq!(rep.instrs, 7);
    }

    /// The paper's §2.2 CSE miscompilation: `stG r2, r1; stB r2, r1` reuses
    /// the *green* registers for the blue store — rejected (a fault in r1/r2
    /// after the moves would store corrupt data undetectably).
    #[test]
    fn paper_cse_example_rejected() {
        let src = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  stB r2, r1
  halt
"#;
        let err = check_src(src).expect_err("ill-typed");
        assert_eq!(err.addr, 4);
        assert!(err.reason.contains("blue"), "reason: {}", err.reason);
    }

    #[test]
    fn store_with_mismatched_values_rejected() {
        // green enqueues 5, blue tries to commit 6: principle 4 violation.
        let src = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  mov r3, B 6
  mov r4, B 4096
  stB r4, r3
  halt
"#;
        let err = check_src(src).expect_err("ill-typed");
        assert!(
            err.reason.contains("queued value"),
            "reason: {}",
            err.reason
        );
    }

    #[test]
    fn mixed_color_arithmetic_rejected() {
        let src = r#"
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 1
  mov r2, B 2
  add r3, r1, r2
  halt
"#;
        let err = check_src(src).expect_err("ill-typed");
        assert!(
            err.reason.contains("colors differ"),
            "reason: {}",
            err.reason
        );
    }

    #[test]
    fn jump_protocol_checks_end_to_end() {
        let src = r#"
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G @target
  mov r2, B @target
  jmpG r1
  jmpB r2
target:
  .pre { forall m:mem; mem: m; }
  halt
"#;
        let rep = check_src(src).expect("well-typed");
        assert_eq!(rep.blocks, 2);
    }

    #[test]
    fn jump_to_different_labels_rejected() {
        let src = r#"
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G @t1
  mov r2, B @t2
  jmpG r1
  jmpB r2
t1:
  .pre { forall m:mem; mem: m; }
  halt
t2:
  .pre { forall m:mem; mem: m; }
  halt
"#;
        let err = check_src(src).expect_err("ill-typed");
        assert!(
            err.reason.contains("blue jumps to"),
            "reason: {}",
            err.reason
        );
    }

    #[test]
    fn uncovered_code_rejected() {
        let src = r#"
.code
main:
  .pre { forall m:mem; mem: m; }
  halt
  mov r1, G 1
  halt
"#;
        let err = check_src(src).expect_err("ill-typed");
        assert!(err.reason.contains("not covered"), "reason: {}", err.reason);
    }

    #[test]
    fn conditional_branch_taken_and_fallthrough_check() {
        let src = r#"
.code
main:
  .pre { forall x:int, m:mem; r1: (G, int, x); r2: (B, int, x); mem: m; }
  mov r3, G @done
  mov r4, B @done
  bzG r1, r3
  bzB r2, r4
  halt
done:
  .pre { forall m:mem; mem: m; }
  halt
"#;
        let rep = check_src(src).expect("well-typed");
        assert_eq!(rep.blocks, 2);
        assert_eq!(rep.instrs, 6);
    }

    #[test]
    fn branch_conditions_must_agree() {
        // green tests x, blue tests y — nothing relates them.
        let src = r#"
.code
main:
  .pre { forall x:int, y:int, m:mem; r1: (G, int, x); r2: (B, int, y); mem: m; }
  mov r3, G @done
  mov r4, B @done
  bzG r1, r3
  bzB r2, r4
  halt
done:
  .pre { forall m:mem; mem: m; }
  halt
"#;
        let err = check_src(src).expect_err("ill-typed");
        assert!(
            err.reason.contains("conditions differ"),
            "reason: {}",
            err.reason
        );
    }

    #[test]
    fn fallthrough_into_label_checks_compat() {
        let src = r#"
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 7
next:
  .pre { forall v:int, m:mem; r1: (G, int, v); mem: m; }
  halt
"#;
        let rep = check_src(src).expect("well-typed");
        assert_eq!(rep.blocks, 2);
    }

    #[test]
    fn fallthrough_with_wrong_register_contract_rejected() {
        // `next` demands a blue r1; main leaves a green one.
        let src = r#"
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 7
next:
  .pre { forall v:int, m:mem; r1: (B, int, v); mem: m; }
  halt
"#;
        let err = check_src(src).expect_err("ill-typed");
        assert!(
            err.reason.contains("fall-through"),
            "reason: {}",
            err.reason
        );
    }

    #[test]
    fn loop_with_counter_checks() {
        // count r1/r2 down from 3 to 0 with the split-branch protocol
        let src = r#"
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 3
  mov r2, B 3
loop:
  .pre { forall x:int, m:mem; r1: (G, int, x); r2: (B, int, x); mem: m; }
  sub r1, r1, G 1
  sub r2, r2, B 1
  mov r3, G @loop
  mov r4, B @loop
  bzG r1, r3
  bzB r2, r4
  jmpG r3
  jmpB r4
"#;
        // This loop is deliberately odd (branches back when the counter hits
        // 0 and also jumps back unconditionally) — but it is *well-typed*:
        // typing is about fault tolerance, not termination.
        let err = check_src(src);
        assert!(err.is_ok(), "expected well-typed, got {err:?}");
    }

    #[test]
    fn dangling_fallthrough_off_code_end_rejected() {
        let src = r#"
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 7
"#;
        let err = check_src(src).expect_err("ill-typed");
        assert!(err.reason.contains("falls off"), "reason: {}", err.reason);
    }

    #[test]
    fn reading_untyped_register_rejected() {
        let src = r#"
.code
main:
  .pre { forall m:mem; mem: m; }
  add r1, r2, r3
  halt
"#;
        let err = check_src(src).expect_err("ill-typed");
        assert!(err.reason.contains("no type"), "reason: {}", err.reason);
    }

    #[test]
    fn load_requires_provable_bounds() {
        let src = r#"
.data
region tab at 4096 len 8 : int
.code
main:
  .pre { forall i:int, m:mem; r1: (G, int, 4096 + i); mem: m; }
  ldG r2, r1
  halt
"#;
        let err = check_src(src).expect_err("ill-typed");
        assert!(err.reason.contains("bounds"), "reason: {}", err.reason);

        // With the bounds fact it checks.
        let ok_src = src.replace(
            "forall i:int, m:mem;",
            "forall i:int, m:mem; fact i >= 0; fact i < 8;",
        );
        check_src(&ok_src).expect("well-typed with bounds facts");
    }

    #[test]
    fn green_load_sees_queue_blue_load_sees_memory() {
        // After stG, a green load from the same address yields the pending
        // value; the blue store then commits; a blue load sees memory.
        let src = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  ldG r5, r2
  mov r3, B 5
  mov r4, B 4096
  stB r4, r3
  ldB r6, r4
  halt
"#;
        check_src(src).expect("well-typed");
    }
}
