//! Type-checking errors.

use std::fmt;

/// A type error, located at a code address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// Code address of the offending instruction (0 = whole program).
    pub addr: i64,
    /// The instruction text, when available.
    pub instr: Option<String>,
    /// What went wrong (references paper rule names where applicable).
    pub reason: String,
}

impl TypeError {
    /// Construct an error at an address.
    #[must_use]
    pub fn at(addr: i64, reason: impl Into<String>) -> Self {
        Self {
            addr,
            instr: None,
            reason: reason.into(),
        }
    }

    /// Attach the instruction display text.
    #[must_use]
    pub fn with_instr(mut self, instr: impl Into<String>) -> Self {
        self.instr = Some(instr.into());
        self
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.instr {
            Some(i) => write!(f, "at {}: `{}`: {}", self.addr, i, self.reason),
            None => write!(f, "at {}: {}", self.addr, self.reason),
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location_and_instr() {
        let e = TypeError::at(7, "colors differ").with_instr("add r1, r2, r3");
        let s = e.to_string();
        assert!(s.contains("at 7"));
        assert!(s.contains("add r1, r2, r3"));
        assert!(s.contains("colors differ"));
    }
}
