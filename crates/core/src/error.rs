//! Type-checking errors and the shared diagnostic form.
//!
//! Checker rejections ([`TypeError`]) and the static-analysis lints
//! (`talft-analysis`) render through one [`Diagnostic`] struct: a stable
//! `TF0xx` code, a severity, a [`Span`] (block label + instruction offset,
//! plus the `.talft` source line when known), and free-form notes. The
//! checker's code is `TF000`; lint codes start at `TF001` (the table lives
//! in DESIGN.md §10).

use std::fmt;

use talft_isa::{Program, Span};
use talft_obs::Json;

/// Diagnostic code of every checker rejection.
pub const CHECKER_CODE: &str = "TF000";

/// A type error, located at a code address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// Code address of the offending instruction (0 = whole program).
    pub addr: i64,
    /// The instruction text, when available.
    pub instr: Option<String>,
    /// What went wrong (references paper rule names where applicable).
    pub reason: String,
    /// Resolved source span (label + offset + line), when available.
    pub span: Option<Span>,
    /// Solver failure witnesses and other secondary notes (rendered as
    /// `= note:` lines on the diagnostic).
    pub notes: Vec<String>,
}

impl TypeError {
    /// Construct an error at an address.
    #[must_use]
    pub fn at(addr: i64, reason: impl Into<String>) -> Self {
        Self {
            addr,
            instr: None,
            reason: reason.into(),
            span: None,
            notes: Vec::new(),
        }
    }

    /// Attach the instruction display text.
    #[must_use]
    pub fn with_instr(mut self, instr: impl Into<String>) -> Self {
        self.instr = Some(instr.into());
        self
    }

    /// Attach one secondary note (e.g. an entailment failure witness).
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Attach several secondary notes.
    #[must_use]
    pub fn with_notes(mut self, notes: impl IntoIterator<Item = String>) -> Self {
        self.notes.extend(notes);
        self
    }

    /// Resolve and attach the span (`label+offset`) from the program's
    /// label table. Leaves whole-program errors (`addr == 0`) untouched.
    #[must_use]
    pub fn located(mut self, program: &Program) -> Self {
        if self.addr != 0 && self.span.is_none() {
            self.span = Some(Span::locate(program, self.addr));
        }
        self
    }

    /// The shared diagnostic form (code [`CHECKER_CODE`], severity error).
    #[must_use]
    pub fn to_diagnostic(&self) -> Diagnostic {
        let mut d = Diagnostic::error(CHECKER_CODE, self.reason.clone());
        d.span = self.span.clone().or_else(|| {
            (self.addr != 0).then_some(Span {
                addr: self.addr,
                label: None,
                offset: 0,
                line: None,
            })
        });
        if let Some(i) = &self.instr {
            d = d.note(format!("in `{i}`"));
        }
        for n in &self.notes {
            d = d.note(n.clone());
        }
        d
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.span.as_ref().and_then(Span::block_pos), &self.instr) {
            (Some(pos), Some(i)) => {
                write!(f, "at {} ({pos}): `{}`: {}", self.addr, i, self.reason)
            }
            (Some(pos), None) => write!(f, "at {} ({pos}): {}", self.addr, self.reason),
            (None, Some(i)) => write!(f, "at {}: `{}`: {}", self.addr, i, self.reason),
            (None, None) => write!(f, "at {}: {}", self.addr, self.reason),
        }
    }
}

impl std::error::Error for TypeError {}

/// Diagnostic severity. Only [`Severity::Error`] diagnostics reject a
/// program (lint "kills" in the mutation oracle, nonzero `talftc --lint`
/// exits); warnings are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// The program violates a fault-tolerance obligation.
    Error,
    /// Suspicious but not provably unsafe.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// One rustc-style diagnostic: stable code, severity, message, span, notes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`TF000` = checker, `TF001`.. = lints).
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Primary message.
    pub message: String,
    /// Location, when one exists.
    pub span: Option<Span>,
    /// Secondary notes (rendered as `= note: ...` lines).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    #[must_use]
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Self {
            code,
            severity: Severity::Error,
            message: message.into(),
            span: None,
            notes: Vec::new(),
        }
    }

    /// A warning-severity diagnostic.
    #[must_use]
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Self {
            severity: Severity::Warning,
            ..Self::error(code, message)
        }
    }

    /// Attach a span resolved against `program` at `addr`.
    #[must_use]
    pub fn at(mut self, program: &Program, addr: i64) -> Self {
        self.span = Some(Span::locate(program, addr));
        self
    }

    /// Add a note line.
    #[must_use]
    pub fn note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Fill source lines from an assembler line table (no-op without span).
    #[must_use]
    pub fn with_line_table(mut self, lines: &[u32]) -> Self {
        if let Some(s) = self.span.take() {
            self.span = Some(s.with_line_table(lines));
        }
        self
    }

    /// The multi-line rustc-style rendering:
    ///
    /// ```text
    /// error[TF001]: blue instruction consumes a green operand
    ///   --> main+3 (addr 4, line 12)
    ///   = note: r1 was defined green at main+1
    /// ```
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("{}[{}]: {}\n", self.severity, self.code, self.message);
        if let Some(s) = &self.span {
            out.push_str(&format!("  --> {s}\n"));
        }
        for n in &self.notes {
            out.push_str(&format!("  = note: {n}\n"));
        }
        out
    }

    /// Machine-readable form (stable keys: `code`, `severity`, `message`,
    /// `addr`, `label`, `offset`, `line`, `notes`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("code".to_owned(), Json::str(self.code)),
            ("severity".to_owned(), Json::str(self.severity.to_string())),
            ("message".to_owned(), Json::str(self.message.clone())),
        ];
        if let Some(s) = &self.span {
            fields.push(("addr".to_owned(), Json::I64(s.addr)));
            if let Some(l) = &s.label {
                fields.push(("label".to_owned(), Json::str(l.clone())));
                fields.push(("offset".to_owned(), Json::U64(s.offset as u64)));
            }
            if let Some(line) = s.line {
                fields.push(("line".to_owned(), Json::U64(u64::from(line))));
            }
        }
        fields.push((
            "notes".to_owned(),
            Json::Array(self.notes.iter().map(|n| Json::str(n.clone())).collect()),
        ));
        Json::Object(fields)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(s) = &self.span {
            write!(f, " at {s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location_and_instr() {
        let e = TypeError::at(7, "colors differ").with_instr("add r1, r2, r3");
        let s = e.to_string();
        assert!(s.contains("at 7"));
        assert!(s.contains("add r1, r2, r3"));
        assert!(s.contains("colors differ"));
    }

    #[test]
    fn diagnostic_renders_rustc_style() {
        let d = Diagnostic::error("TF001", "blue instruction consumes a green operand")
            .note("r1 was defined green");
        let r = d.render();
        assert!(r.starts_with("error[TF001]: blue instruction"));
        assert!(r.contains("= note: r1 was defined green"));
    }

    #[test]
    fn diagnostic_json_has_stable_keys() {
        let d = Diagnostic::warning("TF004", "dead duplication");
        let j = d.to_json();
        assert_eq!(j.get("code").and_then(|v| v.as_str()), Some("TF004"));
        assert_eq!(j.get("severity").and_then(|v| v.as_str()), Some("warning"));
        assert!(j.get("notes").is_some());
    }

    #[test]
    fn type_error_converts_to_diagnostic() {
        let e = TypeError::at(3, "queue mismatch").with_instr("stB r1, r2");
        let d = e.to_diagnostic();
        assert_eq!(d.code, CHECKER_CODE);
        assert_eq!(d.severity, Severity::Error);
        assert!(d.notes.iter().any(|n| n.contains("stB r1, r2")));
    }
}
