//! Substitution inference for control transfers.
//!
//! The `jmpB`/`bzB` typing rules (Figure 7) require *some* substitution `S`
//! with `Δ ⊢ S : Δ'` relating the jump target's precondition `T' =
//! (Δ'; Γ'; (Ed',Es'); Em')` to the current context. As the paper notes
//! (§3), a compiler could emit `S` as a typing hint; like most TAL checkers
//! we instead *reconstruct* it by first-order matching of the target's
//! static expressions (patterns, whose free `Δ'` variables are holes)
//! against the current context's expressions (subjects).
//!
//! Matching is syntactic with two pragmatic extensions: bare-variable
//! patterns bind in a first pass (so composite patterns see bindings), and
//! `x ⊕ closed` patterns are solved by inverting `⊕ ∈ {add, sub}`. Anything
//! not structurally matchable is deferred as an equality obligation and
//! discharged by the decision procedure after all holes are bound.

use talft_isa::ty::ValTy;
use talft_isa::{CodeTy, RegTy};
use talft_logic::{BinOp, ExprArena, ExprId, ExprNode, Facts, KindCtx, Subst, VarId};

/// A pattern/subject pair to match.
#[derive(Debug, Clone, Copy)]
pub struct Goal {
    /// Target-side expression (may contain `Δ'` holes).
    pub pattern: ExprId,
    /// Current-side expression (subject; no holes).
    pub subject: ExprId,
}

/// Collect matching goals from a target precondition against current-side
/// expressions supplied by the caller (register file, queue, memory, pcs).
#[derive(Debug, Default)]
pub struct GoalSet {
    goals: Vec<Goal>,
}

impl GoalSet {
    /// Empty goal set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one pattern/subject pair.
    pub fn add(&mut self, pattern: ExprId, subject: ExprId) {
        self.goals.push(Goal { pattern, subject });
    }

    /// Add goals for a target register type against a current register type
    /// (only where both sides carry expressions).
    pub fn add_reg(&mut self, target: &RegTy, current: &RegTy) {
        match (target, current) {
            (RegTy::Val(t), RegTy::Val(c)) => self.add(t.expr, c.expr),
            (
                RegTy::Cond {
                    guard: tg,
                    inner: ti,
                },
                RegTy::Cond {
                    guard: cg,
                    inner: ci,
                },
            ) => {
                self.add(*tg, *cg);
                self.add(ti.expr, ci.expr);
            }
            (RegTy::Val(t), RegTy::Cond { inner: ci, .. }) => self.add(t.expr, ci.expr),
            _ => {}
        }
    }

    /// Run inference: bind every `Δ'` hole, then return the substitution and
    /// the residual equality obligations `(S(pattern), subject)`.
    pub fn solve(
        self,
        arena: &mut ExprArena,
        facts: &Facts,
        delta_target: &KindCtx,
    ) -> Result<(Subst, Vec<Goal>), MatchError> {
        let mut s = Subst::new();
        let mut deferred: Vec<Goal> = Vec::new();
        // Pass 1: bare-variable patterns bind directly.
        let mut rest = Vec::new();
        for g in self.goals {
            if let ExprNode::Var(v) = arena.node(g.pattern) {
                if delta_target.contains(v) && s.get(v).is_none() {
                    s.bind(v, g.subject);
                    continue;
                }
            }
            rest.push(g);
        }
        // Pass 2: structural matching with solving.
        for g in rest {
            match_one(arena, facts, delta_target, &mut s, g, &mut deferred)?;
        }
        // Every hole must be bound.
        for (v, _) in delta_target.iter() {
            if s.get(v).is_none() {
                return Err(MatchError::Unbound(v));
            }
        }
        // Residual obligations with S applied.
        let out = deferred
            .into_iter()
            .map(|g| Goal {
                pattern: s.apply(arena, g.pattern),
                subject: g.subject,
            })
            .collect();
        Ok((s, out))
    }
}

/// Why inference failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchError {
    /// A `Δ'` variable could not be bound from any goal.
    Unbound(VarId),
    /// A pattern with holes could not be structurally matched.
    Structural(ExprId, ExprId),
}

impl std::fmt::Display for MatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatchError::Unbound(v) => {
                write!(f, "cannot infer a binding for target variable #{}", v.0)
            }
            MatchError::Structural(p, s) => {
                write!(f, "cannot match pattern #{} against #{}", p.0, s.0)
            }
        }
    }
}

impl std::error::Error for MatchError {}

fn has_unbound_hole(arena: &ExprArena, delta: &KindCtx, s: &Subst, e: ExprId) -> bool {
    match arena.node(e) {
        ExprNode::Var(v) => delta.contains(v) && s.get(v).is_none(),
        ExprNode::Int(_) | ExprNode::Emp => false,
        ExprNode::Bin(_, a, b) | ExprNode::Sel(a, b) => {
            has_unbound_hole(arena, delta, s, a) || has_unbound_hole(arena, delta, s, b)
        }
        ExprNode::Upd(m, a, v) => {
            has_unbound_hole(arena, delta, s, m)
                || has_unbound_hole(arena, delta, s, a)
                || has_unbound_hole(arena, delta, s, v)
        }
    }
}

#[allow(clippy::only_used_in_recursion)] // facts reserved for fact-guided solving
fn match_one(
    arena: &mut ExprArena,
    facts: &Facts,
    delta: &KindCtx,
    s: &mut Subst,
    g: Goal,
    deferred: &mut Vec<Goal>,
) -> Result<(), MatchError> {
    if !has_unbound_hole(arena, delta, s, g.pattern) {
        deferred.push(g);
        return Ok(());
    }
    match arena.node(g.pattern) {
        ExprNode::Var(v) => {
            // unbound hole (bound holes have no unbound-hole flag)
            s.bind(v, g.subject);
            Ok(())
        }
        ExprNode::Bin(op, a, b) => {
            // Structural decomposition when the subject has the same head.
            if let ExprNode::Bin(op2, sa, sb) = arena.node(g.subject) {
                if op == op2 {
                    match_one(
                        arena,
                        facts,
                        delta,
                        s,
                        Goal {
                            pattern: a,
                            subject: sa,
                        },
                        deferred,
                    )?;
                    return match_one(
                        arena,
                        facts,
                        delta,
                        s,
                        Goal {
                            pattern: b,
                            subject: sb,
                        },
                        deferred,
                    );
                }
            }
            // Solving: x ⊕ closed  ≙  subject  ⇒  x ≔ subject ⊖ closed.
            let a_holed = has_unbound_hole(arena, delta, s, a);
            let b_holed = has_unbound_hole(arena, delta, s, b);
            match (op, a_holed, b_holed) {
                (BinOp::Add, true, false) => {
                    let rb = s.apply(arena, b);
                    let solved = arena.sub(g.subject, rb);
                    match_one(
                        arena,
                        facts,
                        delta,
                        s,
                        Goal {
                            pattern: a,
                            subject: solved,
                        },
                        deferred,
                    )
                }
                (BinOp::Add, false, true) => {
                    let ra = s.apply(arena, a);
                    let solved = arena.sub(g.subject, ra);
                    match_one(
                        arena,
                        facts,
                        delta,
                        s,
                        Goal {
                            pattern: b,
                            subject: solved,
                        },
                        deferred,
                    )
                }
                (BinOp::Sub, true, false) => {
                    let rb = s.apply(arena, b);
                    let solved = arena.add(g.subject, rb);
                    match_one(
                        arena,
                        facts,
                        delta,
                        s,
                        Goal {
                            pattern: a,
                            subject: solved,
                        },
                        deferred,
                    )
                }
                (BinOp::Sub, false, true) => {
                    let ra = s.apply(arena, a);
                    let solved = arena.sub(ra, g.subject);
                    match_one(
                        arena,
                        facts,
                        delta,
                        s,
                        Goal {
                            pattern: b,
                            subject: solved,
                        },
                        deferred,
                    )
                }
                _ => Err(MatchError::Structural(g.pattern, g.subject)),
            }
        }
        ExprNode::Sel(m, a) => {
            if let ExprNode::Sel(sm, sa) = arena.node(g.subject) {
                match_one(
                    arena,
                    facts,
                    delta,
                    s,
                    Goal {
                        pattern: m,
                        subject: sm,
                    },
                    deferred,
                )?;
                match_one(
                    arena,
                    facts,
                    delta,
                    s,
                    Goal {
                        pattern: a,
                        subject: sa,
                    },
                    deferred,
                )
            } else {
                Err(MatchError::Structural(g.pattern, g.subject))
            }
        }
        ExprNode::Upd(m, a, v) => {
            if let ExprNode::Upd(sm, sa, sv) = arena.node(g.subject) {
                match_one(
                    arena,
                    facts,
                    delta,
                    s,
                    Goal {
                        pattern: m,
                        subject: sm,
                    },
                    deferred,
                )?;
                match_one(
                    arena,
                    facts,
                    delta,
                    s,
                    Goal {
                        pattern: a,
                        subject: sa,
                    },
                    deferred,
                )?;
                match_one(
                    arena,
                    facts,
                    delta,
                    s,
                    Goal {
                        pattern: v,
                        subject: sv,
                    },
                    deferred,
                )
            } else {
                Err(MatchError::Structural(g.pattern, g.subject))
            }
        }
        ExprNode::Int(_) | ExprNode::Emp => {
            deferred.push(g);
            Ok(())
        }
    }
}

/// Apply a substitution to a register type.
pub fn subst_reg_ty(arena: &mut ExprArena, s: &Subst, t: &RegTy) -> RegTy {
    match t {
        RegTy::Top => RegTy::Top,
        RegTy::Val(v) => RegTy::Val(subst_val_ty(arena, s, v)),
        RegTy::Cond { guard, inner } => RegTy::Cond {
            guard: s.apply(arena, *guard),
            inner: subst_val_ty(arena, s, inner),
        },
    }
}

/// Apply a substitution to a value type (the basic type has no expressions).
pub fn subst_val_ty(arena: &mut ExprArena, s: &Subst, v: &ValTy) -> ValTy {
    ValTy {
        color: v.color,
        basic: v.basic.clone(),
        expr: s.apply(arena, v.expr),
    }
}

/// Collect goals from a whole target precondition against current context
/// pieces. `pc_goals` supplies the subjects for `pcG`/`pcB` (the jump-rule
/// premises equate them with the transfer's argument expressions).
#[allow(clippy::too_many_arguments)]
pub fn goals_for_target(
    goalset: &mut GoalSet,
    arena: &ExprArena,
    target: &CodeTy,
    current_regs: &talft_isa::RegFileTy,
    current_queue: &[(ExprId, ExprId)],
    current_mem: ExprId,
    pc_green_subject: ExprId,
    pc_blue_subject: ExprId,
) -> Result<(), String> {
    use talft_isa::{Color, Reg};
    let _ = arena;
    for (r, t) in target.regs.iter() {
        match r {
            Reg::Pc(Color::Green) => {
                if let RegTy::Val(v) = t {
                    goalset.add(v.expr, pc_green_subject);
                }
            }
            Reg::Pc(Color::Blue) => {
                if let RegTy::Val(v) = t {
                    goalset.add(v.expr, pc_blue_subject);
                }
            }
            Reg::Dst => { /* handled by the caller's d-premise */ }
            Reg::Gpr(_) => goalset.add_reg(t, current_regs.get(r)),
        }
    }
    if target.queue.len() != current_queue.len() {
        return Err(format!(
            "queue shape mismatch: target expects {} pending stores, have {}",
            target.queue.len(),
            current_queue.len()
        ));
    }
    for ((td, tv), (cd, cv)) in target.queue.iter().zip(current_queue.iter()) {
        goalset.add(*td, *cd);
        goalset.add(*tv, *cv);
    }
    goalset.add(target.mem, current_mem);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use talft_logic::Kind;

    #[test]
    fn bare_variables_bind_directly() {
        let mut arena = ExprArena::new();
        let x = arena.var_id("x");
        let xe = arena.var_expr(x);
        let mut delta = KindCtx::new();
        delta.bind(x, Kind::Int);
        let seven = arena.int(7);
        let mut gs = GoalSet::new();
        gs.add(xe, seven);
        let (s, residual) = gs.solve(&mut arena, &Facts::new(), &delta).expect("solves");
        assert_eq!(s.get(x), Some(seven));
        assert!(residual.is_empty());
    }

    #[test]
    fn composite_patterns_solve_linear_offsets() {
        let mut arena = ExprArena::new();
        let x = arena.var_id("x");
        let xe = arena.var_expr(x);
        let one = arena.int(1);
        let pat = arena.add(xe, one); // pattern x + 1
        let y = arena.var("y");
        let mut delta = KindCtx::new();
        delta.bind(x, Kind::Int);
        let mut gs = GoalSet::new();
        gs.add(pat, y); // x + 1 ≙ y  ⇒  x ≔ y - 1
        let (s, _) = gs.solve(&mut arena, &Facts::new(), &delta).expect("solves");
        let bound = s.get(x).expect("bound");
        let facts = Facts::new();
        let expect = arena.sub(y, one);
        assert!(facts.prove_eq(&mut arena, bound, expect));
    }

    #[test]
    fn bound_variable_patterns_become_residual_obligations() {
        let mut arena = ExprArena::new();
        let x = arena.var_id("x");
        let xe = arena.var_expr(x);
        let mut delta = KindCtx::new();
        delta.bind(x, Kind::Int);
        let a = arena.int(3);
        let b = arena.int(4);
        let mut gs = GoalSet::new();
        gs.add(xe, a); // binds x = 3
        gs.add(xe, b); // residual: 3 ≟ 4 (to be refuted by the caller)
        let (_, residual) = gs.solve(&mut arena, &Facts::new(), &delta).expect("solves");
        assert_eq!(residual.len(), 1);
        let facts = Facts::new();
        assert!(!facts.prove_eq(&mut arena, residual[0].pattern, residual[0].subject));
    }

    #[test]
    fn unbound_hole_is_an_error() {
        let mut arena = ExprArena::new();
        let x = arena.var_id("x");
        let mut delta = KindCtx::new();
        delta.bind(x, Kind::Int);
        let gs = GoalSet::new();
        assert!(matches!(
            gs.solve(&mut arena, &Facts::new(), &delta),
            Err(MatchError::Unbound(_))
        ));
    }

    #[test]
    fn memory_patterns_match_structurally() {
        let mut arena = ExprArena::new();
        let m = arena.var_id("m");
        let me = arena.var_expr(m);
        let x = arena.var_id("x");
        let xe = arena.var_expr(x);
        let mut delta = KindCtx::new();
        delta.bind(m, Kind::Mem);
        delta.bind(x, Kind::Int);
        let a = arena.int(4096);
        let pat = arena.upd(me, a, xe); // upd m 4096 x
        let mcur = arena.var("mcur");
        let five = arena.int(5);
        let subj = arena.upd(mcur, a, five);
        let mut gs = GoalSet::new();
        gs.add(pat, subj);
        let (s, _) = gs.solve(&mut arena, &Facts::new(), &delta).expect("solves");
        assert_eq!(s.get(m), Some(mcur));
        assert_eq!(s.get(x), Some(five));
    }
}
