//! Rule-by-rule rejection matrix: every typing rule of Figure 7 has
//! programs that must fail it, with the failure at the right address and
//! for the right reason. This is the checker's adversarial test suite —
//! the paper's pitch is that the checker catches *compiler* bugs, so each
//! case below is a plausible miscompilation.

use talft_core::check_program;
use talft_isa::assemble;

fn reject(src: &str) -> talft_core::TypeError {
    let mut asm = assemble(src).expect("assembles");
    check_program(&asm.program, &mut asm.arena).expect_err("must be ill-typed")
}

fn accept(src: &str) {
    let mut asm = assemble(src).expect("assembles");
    check_program(&asm.program, &mut asm.arena)
        .unwrap_or_else(|e| panic!("must be well-typed, got: {e}"));
}

const PRE: &str = ".pre { forall m:mem; mem: m; }";

// ---- op2r-t / op1r-t -------------------------------------------------------

#[test]
fn op1r_immediate_color_must_match_source() {
    let e = reject(&format!(
        "\n.code\nmain:\n  {PRE}\n  mov r1, G 1\n  add r2, r1, B 1\n  halt\n"
    ));
    assert_eq!(e.addr, 2);
    assert!(e.reason.contains("colors differ"));
}

#[test]
fn op_on_conditional_register_needs_resolution() {
    // After bzG, d has a conditional type; moving it through arithmetic
    // before bzB resolves nothing — reading d is not even expressible, but
    // reading an untyped register is the analogous case.
    let e = reject(&format!(
        "\n.code\nmain:\n  {PRE}\n  add r1, r9, r9\n  halt\n"
    ));
    assert!(e.reason.contains("no type"));
}

// ---- ld*-t ----------------------------------------------------------------

#[test]
fn ldg_with_blue_address_rejected() {
    let e = reject(
        "\n.data\nregion tab at 4096 len 4 : int\n.code\nmain:\n  \
         .pre { forall m:mem; mem: m; }\n  mov r1, B 4096\n  ldG r2, r1\n  halt\n",
    );
    assert!(
        e.reason.contains("ldG") && e.reason.contains("B"),
        "{}",
        e.reason
    );
}

#[test]
fn ldb_with_green_address_rejected() {
    let e = reject(
        "\n.data\nregion tab at 4096 len 4 : int\n.code\nmain:\n  \
         .pre { forall m:mem; mem: m; }\n  mov r1, G 4096\n  ldB r2, r1\n  halt\n",
    );
    assert!(e.reason.contains("ldB"), "{}", e.reason);
}

#[test]
fn load_outside_every_region_rejected() {
    let e = reject(&format!(
        "\n.code\nmain:\n  {PRE}\n  mov r1, G 99999\n  ldG r2, r1\n  halt\n"
    ));
    assert!(
        e.reason.contains("reference") || e.reason.contains("bounds"),
        "{}",
        e.reason
    );
}

// ---- stG-t / stB-t ---------------------------------------------------------

#[test]
fn stg_with_blue_value_rejected() {
    let e = reject(
        "\n.data\nregion out at 4096 len 1 : int output\n.code\nmain:\n  \
         .pre { forall m:mem; mem: m; }\n  mov r1, B 5\n  mov r2, G 4096\n  stG r2, r1\n  halt\n",
    );
    assert!(e.reason.contains("green"), "{}", e.reason);
}

#[test]
fn stb_without_pending_green_store_rejected() {
    let e = reject(
        "\n.data\nregion out at 4096 len 1 : int output\n.code\nmain:\n  \
         .pre { forall m:mem; mem: m; }\n  mov r1, B 5\n  mov r2, B 4096\n  stB r2, r1\n  halt\n",
    );
    assert!(e.reason.contains("empty static queue"), "{}", e.reason);
}

#[test]
fn stb_with_mismatched_address_rejected() {
    // green stores to 4096, blue claims 4097 — "correct value at an
    // incorrect location" (§2.2).
    let e = reject(
        "\n.data\nregion out at 4096 len 2 : int output\n.code\nmain:\n  \
         .pre { forall m:mem; mem: m; }\n  mov r1, G 5\n  mov r2, G 4096\n  stG r2, r1\n  \
         mov r3, B 5\n  mov r4, B 4097\n  stB r4, r3\n  halt\n",
    );
    assert!(e.reason.contains("queued address"), "{}", e.reason);
}

#[test]
fn store_value_type_must_match_region() {
    // tab is a region of code pointers; storing a plain int into it would
    // let a later indirect jump escape the type system.
    let e = reject(
        "\n.data\nregion tab at 4096 len 1 : code @main = 1\n.code\nmain:\n  \
         .pre { forall m:mem; mem: m; }\n  mov r1, G 12345\n  mov r2, G 4096\n  stG r2, r1\n  \
         mov r3, B 12345\n  mov r4, B 4096\n  stB r4, r3\n  halt\n",
    );
    assert!(e.reason.contains("region holds"), "{}", e.reason);
}

// ---- jmpG-t / jmpB-t -------------------------------------------------------

#[test]
fn jmpg_with_blue_register_rejected() {
    let e = reject(
        "\n.code\nmain:\n  .pre { forall m:mem; mem: m; }\n  mov r1, B @main\n  jmpG r1\n  halt\n",
    );
    assert!(e.reason.contains("green"), "{}", e.reason);
}

#[test]
fn jmpg_with_non_code_target_rejected() {
    let e = reject(&format!(
        "\n.code\nmain:\n  {PRE}\n  mov r1, G 3\n  jmpG r1\n  halt\n"
    ));
    assert!(e.reason.contains("code type"), "{}", e.reason);
}

#[test]
fn two_jmpg_in_a_row_rejected() {
    // The second jmpG would find d ≠ 0 and fault at runtime (jmpG-fail).
    let e = reject(
        "\n.code\nmain:\n  .pre { forall m:mem; mem: m; }\n  mov r1, G @main\n  \
         jmpG r1\n  jmpG r1\n  halt\n",
    );
    assert!(e.reason.contains("destination register"), "{}", e.reason);
}

#[test]
fn jmpb_without_latched_intent_rejected() {
    let e = reject(
        "\n.code\nmain:\n  .pre { forall m:mem; mem: m; }\n  mov r1, B @main\n  jmpB r1\n  halt\n",
    );
    assert!(
        e.reason.contains("code type") || e.reason.contains("latched"),
        "{}",
        e.reason
    );
}

#[test]
fn jump_target_register_contract_violations_rejected() {
    // target demands r5 : (G, int, 7); the jump provides r5 = 8.
    let e = reject(
        "\n.code\nmain:\n  .pre { forall m:mem; mem: m; }\n  mov r5, G 8\n  \
         mov r1, G @t\n  mov r2, B @t\n  jmpG r1\n  jmpB r2\nt:\n  \
         .pre { forall m:mem; r5: (G, int, 7); mem: m; }\n  halt\n",
    );
    assert!(
        e.reason.contains("subtype") || e.reason.contains("cannot prove"),
        "{}",
        e.reason
    );

    // ...and with the matching value it is accepted.
    accept(
        "\n.code\nmain:\n  .pre { forall m:mem; mem: m; }\n  mov r5, G 7\n  \
         mov r1, G @t\n  mov r2, B @t\n  jmpG r1\n  jmpB r2\nt:\n  \
         .pre { forall m:mem; r5: (G, int, 7); mem: m; }\n  halt\n",
    );
}

#[test]
fn jump_with_pending_queue_needs_matching_description() {
    // Jumping with a pending green store: the target must describe the
    // queue. Without the description — rejected.
    let e = reject(
        "\n.data\nregion out at 4096 len 1 : int output\n.code\nmain:\n  \
         .pre { forall m:mem; mem: m; }\n  mov r5, G 9\n  mov r6, G 4096\n  stG r6, r5\n  \
         mov r1, G @t\n  mov r2, B @t\n  jmpG r1\n  jmpB r2\nt:\n  \
         .pre { forall m:mem; mem: m; }\n  mov r7, B 9\n  mov r8, B 4096\n  stB r8, r7\n  halt\n",
    );
    assert!(e.reason.contains("queue"), "{}", e.reason);

    // With the queue description at the target, the split store spanning a
    // jump type-checks (the paper's "fair amount of flexibility in how the
    // instructions may be interleaved").
    accept(
        "\n.data\nregion out at 4096 len 1 : int output\n.code\nmain:\n  \
         .pre { forall m:mem; mem: m; }\n  mov r5, G 9\n  mov r6, G 4096\n  stG r6, r5\n  \
         mov r1, G @t\n  mov r2, B @t\n  jmpG r1\n  jmpB r2\nt:\n  \
         .pre { forall m:mem; queue: [(4096, 9)]; mem: m; }\n  \
         mov r7, B 9\n  mov r8, B 4096\n  stB r8, r7\n  halt\n",
    );
}

// ---- bzG-t / bzB-t ---------------------------------------------------------

#[test]
fn bzg_with_blue_condition_rejected() {
    let e = reject(
        "\n.code\nmain:\n  .pre { forall m:mem; mem: m; }\n  mov r1, B 0\n  \
         mov r2, G @main\n  bzG r1, r2\n  halt\n",
    );
    assert!(e.reason.contains("green"), "{}", e.reason);
}

#[test]
fn bzb_without_prior_bzg_rejected() {
    let e = reject(
        "\n.code\nmain:\n  .pre { forall m:mem; mem: m; }\n  mov r1, B 0\n  \
         mov r2, B @main\n  bzB r1, r2\n  halt\n",
    );
    assert!(e.reason.contains("conditional latched"), "{}", e.reason);
}

#[test]
fn bz_pair_with_different_targets_rejected() {
    let e = reject(
        "\n.code\nmain:\n  .pre { forall x:int, m:mem; r1: (G, int, x); r2: (B, int, x); mem: m; }\n  \
         mov r3, G @t1\n  mov r4, B @t2\n  bzG r1, r3\n  bzB r2, r4\n  halt\nt1:\n  \
         .pre { forall m:mem; mem: m; }\n  halt\nt2:\n  .pre { forall m:mem; mem: m; }\n  halt\n",
    );
    assert!(e.reason.contains("blue tests"), "{}", e.reason);
}

#[test]
fn bzg_with_pending_latch_rejected() {
    // bzG twice without an intervening blue commit: second sees d ≠ 0.
    let e = reject(
        "\n.code\nmain:\n  .pre { forall x:int, m:mem; r1: (G, int, x); mem: m; }\n  \
         mov r3, G @main\n  bzG r1, r3\n  bzG r1, r3\n  halt\n",
    );
    assert!(e.reason.contains("destination register"), "{}", e.reason);
}

// ---- code typing (C-t) ----------------------------------------------------

#[test]
fn conditional_type_survives_between_the_halves() {
    // A label *between* bzG and bzB carries the conditional d type — the
    // full Figure 5 syntax is checkable.
    accept(
        "\n.code\nmain:\n  .pre { forall x:int, m:mem; r1: (G, int, x); r2: (B, int, x); mem: m; }\n  \
         mov r3, G @t\n  mov r4, B @t\n  bzG r1, r3\nmid:\n  \
         .pre { forall x:int, m:mem; r2: (B, int, x); r4: (B, code @t, @t);\n    \
                d: x == 0 => (G, code @t, @t); mem: m; }\n  \
         bzB r2, r4\n  halt\nt:\n  .pre { forall m:mem; mem: m; }\n  halt\n",
    );
}

#[test]
fn wrong_conditional_annotation_rejected() {
    // Same program, but the label's guard names a different expression.
    let e = reject(
        "\n.code\nmain:\n  .pre { forall x:int, y:int, m:mem; r1: (G, int, x); r2: (B, int, x);\n    \
                r5: (G, int, y); mem: m; }\n  \
         mov r3, G @t\n  mov r4, B @t\n  bzG r1, r3\nmid:\n  \
         .pre { forall x:int, y:int, m:mem; r2: (B, int, x); r4: (B, code @t, @t);\n    \
                d: y == 0 => (G, code @t, @t); mem: m; }\n  \
         bzB r2, r4\n  halt\nt:\n  .pre { forall m:mem; mem: m; }\n  halt\n",
    );
    assert!(
        e.reason.contains("fall-through") || e.reason.contains("destination"),
        "{}",
        e.reason
    );
}

// ---- diagnostics -----------------------------------------------------------

#[test]
fn stb_constant_mismatch_witness_names_the_residue() {
    // The §2.2 "correct value at an incorrect location" case: the witness
    // pins down *why* the entailment failed, not just that it did.
    let e = reject(
        "\n.data\nregion out at 4096 len 2 : int output\n.code\nmain:\n  \
         .pre { forall m:mem; mem: m; }\n  mov r1, G 5\n  mov r2, G 4096\n  stG r2, r1\n  \
         mov r3, B 5\n  mov r4, B 4097\n  stB r4, r3\n  halt\n",
    );
    assert!(e.reason.contains("queued address"), "{}", e.reason);
    assert_eq!(
        e.notes,
        vec!["cannot prove `4097` = `4096`: the sides differ by the constant 1".to_string()]
    );
}

#[test]
fn stb_value_mismatch_carries_solver_witness() {
    // Symbolic mismatch: no hypothesis relates x and y, and the witness
    // names the unbounded atom and lands on the rendered diagnostic.
    let e = reject(
        "\n.data\nregion out at 4096 len 1 : int output\n.code\nmain:\n  \
         .pre { forall x:int, y:int, m:mem; r1: (G, int, x); r3: (B, int, y); mem: m; }\n  \
         mov r2, G 4096\n  stG r2, r1\n  mov r4, B 4096\n  stB r4, r3\n  halt\n",
    );
    assert!(e.reason.contains("queued value"), "{}", e.reason);
    assert_eq!(
        e.notes,
        vec!["cannot prove `y` = `x`: no fact bounds `x`".to_string()]
    );
    let rendered = e.to_diagnostic().render();
    assert!(
        rendered.contains("= note: cannot prove `y` = `x`: no fact bounds `x`"),
        "{rendered}"
    );
}

#[test]
fn rejections_carry_block_spans() {
    // Errors inside a labeled block resolve to `label+offset`, so the CLI
    // can print `main+1` instead of a bare address.
    let e = reject(&format!(
        "\n.code\nmain:\n  {PRE}\n  mov r1, G 1\n  add r2, r1, B 1\n  halt\n"
    ));
    let span = e.span.clone().expect("checker errors are located");
    assert_eq!(span.addr, 2);
    assert_eq!(span.block_pos().as_deref(), Some("main+1"));
    assert!(e.to_string().contains("(main+1)"), "{e}");
    let d = e.to_diagnostic();
    assert_eq!(d.code, talft_core::CHECKER_CODE);
    assert!(d.render().contains("--> main+1"), "{}", d.render());
}
