//! Regression: the Fourier–Motzkin size caps (`FM_MAX_CONSTRAINTS`,
//! `FM_MAX_VARS`) must never fire on real checker workloads. A give-up is
//! sound (the solver just fails to prove) but it silently degrades the
//! checker to "reject", so a cap sized too small would surface as spurious
//! type errors on previously fine programs. This pins `logic.fm.giveups`
//! to zero across every suite kernel — the caps' first test witness.
//!
//! The interval pre-solver is forced OFF for the measured run: with it on,
//! the Tiny suite's FM-bound queries are all answered upstream (see the
//! `checkperf` matrix in BENCH_perf.json) and the regression would vacuously
//! pass with zero FM runs. The knob and the obs registry are process-global,
//! hence the dedicated integration-test binary.

use talft::compiler::{compile, CompileOptions};
use talft::core::check_program;
use talft::logic::set_entail_interval;
use talft::suite::{kernels, Scale};

#[test]
fn fm_never_gives_up_on_suite_kernels() {
    let ambient = talft::logic::entail_interval_enabled();
    set_entail_interval(false);
    talft::obs::set_enabled(true);
    talft::obs::reset_all();

    for k in kernels(Scale::Tiny) {
        let mut c = compile(&k.source, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", k.name));
        check_program(&c.protected.program, &mut c.protected.arena)
            .unwrap_or_else(|e| panic!("{} failed the checker: {e}", k.name));
    }

    let snap = talft::obs::snapshot();
    let n = |key: &str| snap.counters.get(key).copied().unwrap_or(0);
    let (runs, giveups) = (n("logic.fm.runs"), n("logic.fm.giveups"));
    talft::obs::set_enabled(false);
    set_entail_interval(ambient);

    assert!(
        runs > 0,
        "suite kernels must exercise FM with the interval layer off — \
         a zero count means this regression lost its teeth"
    );
    assert_eq!(
        giveups, 0,
        "FM gave up {giveups} time(s) over {runs} runs: a size cap is too \
         small for the suite's query distribution"
    );
}
