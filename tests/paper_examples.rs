//! The concrete programs discussed in the paper's prose, reproduced as
//! integration tests against the facade crate.

use std::sync::Arc;

use talft::core::check_program;
use talft::faultsim::{run_campaign, CampaignConfig};
use talft::isa::assemble;
use talft::machine::{run_program, Status};

// `CampaignConfig::default()` sizes its thread pool from
// `available_parallelism`; pin to 1 so these tiny campaigns behave
// identically on any machine (DESIGN.md §Observability).
fn cfg() -> CampaignConfig {
    CampaignConfig {
        threads: 1,
        ..CampaignConfig::default()
    }
}

/// §2.2: "consider the following straight-line sequence […] These six
/// instructions have the effect of storing 5 into memory address 256."
/// (We place the output window at 4096 — address 256 would collide with
/// code space under our layout; the behaviour is the paper's.)
#[test]
fn section_2_2_store_sequence() {
    let src = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  mov r3, B 5
  mov r4, B 4096
  stB r4, r3
  halt
"#;
    let mut asm = assemble(src).expect("assembles");
    check_program(&asm.program, &mut asm.arena).expect("well-typed");
    let p = Arc::new(asm.program);
    let r = run_program(&p, 10_000);
    assert_eq!(r.status, Status::Halted);
    assert_eq!(r.trace, vec![(4096, 5)]);
    // "a fault at any point in execution, to either blue or green values or
    // addresses, will be caught by the hardware"
    let rep = run_campaign(&p, &cfg()).expect("golden run halts");
    assert!(rep.fault_tolerant(), "{:?}", rep.violations);
}

/// §2.2: "the compiler freedom to allocate registers however it chooses
/// (e.g., reusing registers 1 and 2 in instructions 4-6)".
#[test]
fn section_2_2_register_reuse_is_fine() {
    let src = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  mov r1, B 5
  mov r2, B 4096
  stB r2, r1
  halt
"#;
    let mut asm = assemble(src).expect("assembles");
    check_program(&asm.program, &mut asm.arena).expect("register reuse is well-typed");
    let rep = run_campaign(&Arc::new(asm.program), &cfg()).expect("golden run halts");
    assert!(rep.fault_tolerant(), "{:?}", rep.violations);
}

/// §2.2: "common subexpression elimination might result in the following
/// code […] The result would be to store an incorrect value at the correct
/// location or a correct value at an incorrect location. Fortunately, the
/// TALFT type system catches reliability errors like this one."
#[test]
fn section_2_2_cse_rejected_and_unsafe() {
    let src = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  stB r2, r1
  halt
"#;
    let mut asm = assemble(src).expect("assembles");
    let err = check_program(&asm.program, &mut asm.arena).expect_err("rejected");
    assert_eq!(err.addr, 4, "the blue store is the offender");
    // And dynamically: exactly the failure the paper describes.
    let rep = run_campaign(&Arc::new(asm.program), &cfg()).expect("golden run halts");
    assert!(
        rep.sdc > 0,
        "CSE'd code must exhibit silent data corruption"
    );
}

/// §2.2 control flow: "The following code illustrates a typical control-flow
/// transfer" — loads a code pointer from memory twice and jumps through the
/// split protocol.
#[test]
fn section_2_2_control_flow_transfer() {
    let src = r#"
.data
region fptr at 4096 len 1 : code @target = 0
.code
main:
  .pre { forall m:mem; fact sel(m, 4096) == @target; mem: m; }
  mov r2, G 4096
  mov r4, B 4096
  ldG r1, r2
  ldB r3, r4
  jmpG r1
  jmpB r3
target:
  .pre { forall m:mem; mem: m; }
  halt
"#;
    let mut asm = assemble(src).expect("assembles");
    // patch the function-pointer cell to hold the real target address
    let t = asm.program.label_addr("target").expect("label");
    for r in &mut asm.program.regions {
        r.init = vec![t];
    }
    check_program(&asm.program, &mut asm.arena).expect("well-typed indirect jump");
    let p = Arc::new(asm.program);
    let r = run_program(&p, 10_000);
    assert_eq!(r.status, Status::Halted);
    let rep = run_campaign(&p, &cfg()).expect("golden run halts");
    assert!(rep.fault_tolerant(), "{:?}", rep.violations);
}

/// §2.1: faults in the program counters are "many forms of control-flow
/// faults" — fetch detects pc divergence.
#[test]
fn pc_fault_detected_at_fetch() {
    use talft::isa::{Color, Reg};
    use talft::machine::{inject, run, FaultSite, Machine};
    let src = ".code\nmain:\n  .pre { forall m:mem; mem: m; }\n  mov r1, G 1\n  halt\n";
    let asm = assemble(src).expect("assembles");
    let p = Arc::new(asm.program);
    let mut m = Machine::boot(p);
    inject(&mut m, FaultSite::Reg(Reg::Pc(Color::Green)), 99);
    let r = run(&mut m, 100);
    assert_eq!(r.status, Status::Fault);
    assert!(r.trace.is_empty());
}
