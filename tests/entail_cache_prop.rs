//! Entailment-cache transparency over whole compiled programs (E16
//! satellite): the memoizing cache in `talft_logic::entail` must be
//! *semantically invisible* — for any well-typed program the checker reaches
//! the same verdict with the cache forced on and forced off.
//!
//! The in-crate unit tests (`talft_logic` `cache_tests`) cover the cache's
//! mechanics — hit/miss accounting, generation invalidation, sentinel keys —
//! on hand-built queries. This test drives the *real* query distribution:
//! fixed kernels plus generatively fuzzed Wile sources from
//! `talft_testutil::wile`, compiled through the full reliability
//! transformation, then checked twice. Any divergence (accept vs reject, or
//! a different error) is a cache unsoundness, not a conservativity issue.
//!
//! The runs are serialized within this test (cached first, then uncached)
//! and the process-global switch is flipped with `set_entail_cache`, which
//! overrides `TALFT_ENTAIL_CACHE`; each check gets a fresh compile so the
//! two runs never share an arena.

use talft::compiler::{compile, CompileOptions};
use talft::core::check_program;
use talft::logic::set_entail_cache;
use talft_testutil::wile::{random_stmts, render_program};
use talft_testutil::SplitMix64;

const GEN_SEED: u64 = 0xCAC4_E5EE;

/// Check a source once with the cache forced to `on`, returning the verdict
/// as `Ok(())`/`Err(message)` so verdicts compare structurally, plus the
/// arena's (hits, misses). Straight-line programs may legitimately record
/// zero queries (syntactic fast paths answer before the cache is consulted),
/// so wiring is asserted over the whole corpus, not per source.
fn check_with_cache(src: &str, on: bool) -> (Result<(), String>, (u64, u64)) {
    set_entail_cache(on);
    let mut c = compile(src, &CompileOptions::default()).expect("fuzzed source compiles");
    let result = check_program(&c.protected.program, &mut c.protected.arena)
        .map(|_| ())
        .map_err(|e| e.to_string());
    let stats = c.protected.arena.entail_cache_stats();
    if !on {
        assert_eq!(stats, (0, 0), "cache-off check must not touch the cache");
    }
    (result, stats)
}

#[test]
fn checker_verdicts_are_cache_invariant() {
    let fixed = [
        "output out[2]; func main() { var a = 6; var b = 7; out[0] = a * b; out[1] = a + b; }"
            .to_string(),
        "array t[4] = [9, 2, 7, 4]; output out[4]; func main() { var i = 0; \
         while (i < 4) { out[i] = t[i] + i; i = i + 1; } }"
            .to_string(),
        "output out[1]; func main() { var i = 0; var s = 0; \
         while (i < 6) { if (i & 1 == 1) { s = s + i; } i = i + 1; } out[0] = s; }"
            .to_string(),
    ];
    let generated: Vec<String> = (0..8)
        .map(|k| {
            let mut r = SplitMix64::new(GEN_SEED + k);
            render_program(&random_stmts(&mut r, 2, 2, 6))
        })
        .collect();

    let prev = talft::logic::entail_cache_enabled();
    let (mut total_hits, mut total_misses) = (0u64, 0u64);
    for (i, src) in fixed.iter().chain(&generated).enumerate() {
        let (cached, (hits, misses)) = check_with_cache(src, true);
        let (uncached, _) = check_with_cache(src, false);
        total_hits += hits;
        total_misses += misses;
        assert_eq!(
            cached, uncached,
            "source {i}: cache changed the checker verdict\n--- source ---\n{src}"
        );
        // Compiler output is always well typed (the repo's core invariant) —
        // so this doubles as a compile-soundness spot check under both modes.
        assert_eq!(cached, Ok(()), "source {i}: compiled program must check");
    }
    assert!(
        total_hits + total_misses > 0,
        "no source exercised the cache — the cache is not wired into the checker"
    );
    assert!(total_hits > 0, "the corpus must produce at least one hit");
    set_entail_cache(prev);
}
