//! Dynamic validation of the paper's §4 metatheory on compiled programs:
//!
//! * **Theorem 1 (Progress)** — fault-free runs of well-typed programs never
//!   get stuck, and single-fault runs end only in `Halted` or `Fault`.
//! * **Theorem 2 (Preservation)** — boundary states of fault-free runs keep
//!   satisfying machine-state typing (checked with the Figure 8 judgment).
//! * **Corollary 3 (No False Positives)** — fault-free runs never reach the
//!   `fault` state.
//! * **Theorem 4 (Fault Tolerance)** — the campaign classification allows
//!   only masked/detected outcomes.

use std::sync::Arc;

use talft::compiler::{compile, CompileOptions};
use talft::core::state_check::check_state_at;
use talft::faultsim::{golden_run, run_campaign, CampaignConfig};
use talft::isa::{Color, Reg};
use talft::machine::{step, Machine, Status};
use talft::suite::{kernels, Scale};

fn cfg() -> CampaignConfig {
    CampaignConfig {
        stride: 41,
        mutations_per_site: 2,
        ..CampaignConfig::default()
    }
}

/// Corollary 3 over the whole suite: the golden run of every well-typed
/// kernel halts without a hardware fault signal.
#[test]
fn no_false_positives_across_suite() {
    for k in kernels(Scale::Tiny) {
        let c = compile(&k.source, &CompileOptions::default()).expect("compiles");
        let g = golden_run(&c.protected.program, &cfg()).expect("golden run in budget");
        assert_eq!(
            g.status,
            Status::Halted,
            "{}: golden run did not halt",
            k.name
        );
    }
}

/// Theorem 4 (and the Progress half of Theorem 1) over sampled fault spaces
/// of every kernel: zero SDC, zero stuck states, zero overruns.
#[test]
fn fault_tolerance_across_suite_sampled() {
    for k in kernels(Scale::Tiny) {
        let c = compile(&k.source, &CompileOptions::default()).expect("compiles");
        let rep = run_campaign(&c.protected.program, &cfg()).expect("golden run halts");
        assert!(rep.total > 0, "{}: empty campaign", k.name);
        assert!(
            rep.fault_tolerant(),
            "{}: Theorem 4 violated: {:?}",
            k.name,
            rep.violations
        );
    }
}

/// Theorem 2, dynamically: every block-boundary state of a fault-free run
/// satisfies the machine-state typing judgment (Figure 8) at its label.
#[test]
fn preservation_at_block_boundaries() {
    for k in kernels(Scale::Tiny).into_iter().take(4) {
        let mut c = compile(&k.source, &CompileOptions::default()).expect("compiles");
        let prog = Arc::clone(&c.protected.program);
        let mut m = Machine::boot(Arc::clone(&prog));
        let mut checked = 0u32;
        while m.status().is_running() && m.steps() < 500_000 {
            // a boundary: nothing pending and the pcs sit at an annotated address
            if m.ir().is_none() {
                let pc = m.rval(Reg::Pc(Color::Green));
                if prog.precond(pc).is_some() {
                    check_state_at(&m, &prog, &mut c.protected.arena, pc)
                        .unwrap_or_else(|e| panic!("{}: state typing fails at {pc}: {e}", k.name));
                    checked += 1;
                }
            }
            step(&mut m);
        }
        assert_eq!(m.status(), Status::Halted, "{}", k.name);
        assert!(checked > 2, "{}: too few boundary states checked", k.name);
    }
}

/// The baseline contrast that motivates the whole system: the identical
/// campaign on unprotected code finds silent data corruption.
#[test]
fn baseline_contrast_shows_sdc() {
    let mut total_sdc = 0u64;
    for k in kernels(Scale::Tiny).into_iter().take(5) {
        let c = compile(&k.source, &CompileOptions::default()).expect("compiles");
        let rep = run_campaign(&c.baseline.program, &cfg()).expect("golden run halts");
        total_sdc += rep.sdc;
    }
    assert!(
        total_sdc > 0,
        "unprotected kernels must exhibit SDC somewhere"
    );
}
