//! The hand-written `.talft` artifacts under `examples/asm/` must assemble,
//! type-check, execute, and survive an exhaustive fault campaign.

use std::sync::Arc;

use talft::core::check_program;
use talft::faultsim::{run_campaign, CampaignConfig};
use talft::isa::assemble;
use talft::machine::{run_program, Status};

fn load(name: &str) -> String {
    let path = format!("{}/examples/asm/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

// `CampaignConfig::default()` sizes its thread pool from
// `available_parallelism`; pin to 1 so these tiny campaigns behave
// identically on any machine (DESIGN.md §Observability).
fn cfg() -> CampaignConfig {
    CampaignConfig {
        threads: 1,
        ..CampaignConfig::default()
    }
}

fn check_and_run(name: &str, patch_fptr: bool) -> Vec<(i64, i64)> {
    let mut asm = assemble(&load(name)).unwrap_or_else(|e| panic!("{name}: {e}"));
    if patch_fptr {
        let h = asm.program.label_addr("handler").expect("handler label");
        for r in &mut asm.program.regions {
            if r.name == "table" {
                r.init = vec![h];
            }
        }
    }
    check_program(&asm.program, &mut asm.arena).unwrap_or_else(|e| panic!("{name} rejected: {e}"));
    let p = Arc::new(asm.program);
    let r = run_program(&p, 1_000_000);
    assert_eq!(r.status, Status::Halted, "{name}");
    let rep = run_campaign(&p, &cfg()).expect("golden run halts");
    assert!(rep.fault_tolerant(), "{name}: {:?}", rep.violations);
    r.trace
}

#[test]
fn store5_artifact() {
    assert_eq!(check_and_run("store5.talft", false), vec![(4096, 5)]);
}

#[test]
fn countdown_artifact() {
    let trace = check_and_run("countdown.talft", false);
    let values: Vec<i64> = trace.iter().map(|&(_, v)| v).collect();
    assert_eq!(values, vec![5, 4, 3, 2, 1]);
}

#[test]
fn dispatch_artifact() {
    assert_eq!(check_and_run("dispatch.talft", true), vec![(8192, 77)]);
}
