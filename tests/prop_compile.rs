//! Randomized (seeded, dependency-free) property test: for *random* Wile
//! programs, the compiler's protected output (a) always type-checks — the
//! reliability transformation is correct by construction, exactly the
//! paper's "debug compilers that intend to generate reliable code" use case
//! — and (b) executes on the faulty machine with a trace identical to the
//! VIR reference interpreter (and to the unprotected baseline).

use talft::compiler::{compile, vir::interpret, CompileOptions};
use talft::core::check_program;
use talft::machine::{run_program, Status};
use talft_testutil::SplitMix64;

/// A recipe for a random statement over a fixed variable pool v0..v4 and
/// arrays a (size 8) and out (size 16).
#[derive(Debug, Clone)]
enum StmtR {
    Assign(u8, ExprR),
    StoreA(ExprR, ExprR),
    StoreOut(ExprR, ExprR),
    If(ExprR, Vec<StmtR>, Vec<StmtR>),
    /// Bounded loop: `while (lN < trip) { body; lN = lN + 1; }`.
    Loop(u8, Vec<StmtR>),
}

#[derive(Debug, Clone)]
enum ExprR {
    Lit(i8),
    Var(u8),
    ReadA(Box<ExprR>),
    Bin(u8, Box<ExprR>, Box<ExprR>),
    Cmp(u8, Box<ExprR>, Box<ExprR>),
}

fn expr_r(r: &mut SplitMix64, depth: u32) -> ExprR {
    if depth == 0 || r.chance(2, 5) {
        return if r.chance(1, 2) {
            ExprR::Lit(r.range_i64(-128, 128) as i8)
        } else {
            ExprR::Var(r.below(5) as u8)
        };
    }
    match r.below(3) {
        0 => ExprR::ReadA(Box::new(expr_r(r, depth - 1))),
        1 => ExprR::Bin(
            r.below(8) as u8,
            Box::new(expr_r(r, depth - 1)),
            Box::new(expr_r(r, depth - 1)),
        ),
        _ => ExprR::Cmp(
            r.below(6) as u8,
            Box::new(expr_r(r, depth - 1)),
            Box::new(expr_r(r, depth - 1)),
        ),
    }
}

fn stmt_vec(r: &mut SplitMix64, depth: u32, lo: usize, hi: usize) -> Vec<StmtR> {
    let n = lo + r.index(hi - lo);
    (0..n).map(|_| stmt_r(r, depth)).collect()
}

fn stmt_r(r: &mut SplitMix64, depth: u32) -> StmtR {
    let leaf = |r: &mut SplitMix64| match r.below(3) {
        0 => StmtR::Assign(r.below(5) as u8, expr_r(r, 3)),
        1 => StmtR::StoreA(expr_r(r, 3), expr_r(r, 3)),
        _ => StmtR::StoreOut(expr_r(r, 3), expr_r(r, 3)),
    };
    if depth == 0 || r.chance(4, 6) {
        leaf(r)
    } else if r.chance(1, 2) {
        StmtR::If(
            expr_r(r, 3),
            stmt_vec(r, depth - 1, 0, 3),
            stmt_vec(r, depth - 1, 0, 3),
        )
    } else {
        StmtR::Loop(2 + r.below(4) as u8, stmt_vec(r, depth - 1, 1, 3))
    }
}

fn render_expr(e: &ExprR) -> String {
    match e {
        ExprR::Lit(n) => format!("({n})"),
        ExprR::Var(v) => format!("v{}", v % 5),
        ExprR::ReadA(i) => format!("a[{}]", render_expr(i)),
        ExprR::Bin(op, a, b) => {
            let ops = ["+", "-", "*", "&", "|", "^", "<<", ">>"];
            format!(
                "({} {} {})",
                render_expr(a),
                ops[*op as usize % 8],
                render_expr(b)
            )
        }
        ExprR::Cmp(op, a, b) => {
            let ops = ["<", "<=", ">", ">=", "==", "!="];
            format!(
                "({} {} {})",
                render_expr(a),
                ops[*op as usize % 6],
                render_expr(b)
            )
        }
    }
}

fn render_stmts(stmts: &[StmtR], loop_counter: &mut u32, out: &mut String, indent: usize) {
    let pad = "  ".repeat(indent);
    for s in stmts {
        match s {
            StmtR::Assign(v, e) => {
                out.push_str(&format!("{pad}v{} = {};\n", v % 5, render_expr(e)));
            }
            StmtR::StoreA(i, v) => {
                out.push_str(&format!(
                    "{pad}a[{}] = {};\n",
                    render_expr(i),
                    render_expr(v)
                ));
            }
            StmtR::StoreOut(i, v) => {
                out.push_str(&format!(
                    "{pad}out[{}] = {};\n",
                    render_expr(i),
                    render_expr(v)
                ));
            }
            StmtR::If(c, t, e) => {
                out.push_str(&format!("{pad}if ({}) {{\n", render_expr(c)));
                render_stmts(t, loop_counter, out, indent + 1);
                out.push_str(&format!("{pad}}} else {{\n"));
                render_stmts(e, loop_counter, out, indent + 1);
                out.push_str(&format!("{pad}}}\n"));
            }
            StmtR::Loop(trip, body) => {
                let l = *loop_counter;
                *loop_counter += 1;
                out.push_str(&format!("{pad}var l{l} = 0;\n"));
                out.push_str(&format!("{pad}while (l{l} < {trip}) {{\n"));
                render_stmts(body, loop_counter, out, indent + 1);
                out.push_str(&format!("{}l{l} = l{l} + 1;\n", "  ".repeat(indent + 1)));
                out.push_str(&format!("{pad}}}\n"));
            }
        }
    }
}

fn render_program(stmts: &[StmtR]) -> String {
    let mut body = String::new();
    let mut lc = 0;
    render_stmts(stmts, &mut lc, &mut body, 1);
    format!(
        "array a[8] = [3, 1, 4, 1, 5, 9, 2, 6];\noutput out[16];\nfunc main() {{\n  \
         var v0 = 1; var v1 = 2; var v2 = 3; var v3 = 4; var v4 = 5;\n{body}  \
         out[15] = v0 + v1 + v2 + v3 + v4;\n}}\n"
    )
}

#[test]
fn random_programs_check_and_agree() {
    let mut rng = SplitMix64::new(0xC0DE_2026);
    for case in 0..48 {
        let stmts = stmt_vec(&mut rng, 2, 1, 8);
        let src = render_program(&stmts);
        let mut c = match compile(&src, &CompileOptions::default()) {
            Ok(c) => c,
            Err(e) => panic!("case {case}: generated program failed to compile: {e}\n{src}"),
        };
        // (a) the reliability transformation always yields well-typed code
        check_program(&c.protected.program, &mut c.protected.arena).unwrap_or_else(|e| {
            panic!("case {case}: checker rejected compiled output: {e}\n{src}")
        });
        // (b) differential execution
        let reference = interpret(&c.vir, 2_000_000);
        if !reference.halted {
            continue; // budget exhaustion: skip (cannot happen with bounded loops)
        }
        let prot = run_program(&c.protected.program, 20_000_000);
        assert_eq!(
            prot.status,
            Status::Halted,
            "case {case}: protected did not halt\n{src}"
        );
        assert_eq!(
            prot.trace, reference.trace,
            "case {case}: protected trace diverged\n{src}"
        );
        let base = run_program(&c.baseline.program, 20_000_000);
        assert_eq!(
            base.trace, reference.trace,
            "case {case}: baseline trace diverged\n{src}"
        );
    }
}
