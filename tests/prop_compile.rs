//! Property test: for *random* Wile programs, the compiler's protected
//! output (a) always type-checks — the reliability transformation is
//! correct by construction, exactly the paper's "debug compilers that
//! intend to generate reliable code" use case — and (b) executes on the
//! faulty machine with a trace identical to the VIR reference interpreter
//! (and to the unprotected baseline).

use proptest::prelude::*;

use talft::compiler::{compile, vir::interpret, CompileOptions};
use talft::core::check_program;
use talft::machine::{run_program, Status};

/// A recipe for a random statement over a fixed variable pool v0..v4 and
/// arrays a (size 8) and out (size 16).
#[derive(Debug, Clone)]
enum StmtR {
    Assign(u8, ExprR),
    StoreA(ExprR, ExprR),
    StoreOut(ExprR, ExprR),
    If(ExprR, Vec<StmtR>, Vec<StmtR>),
    /// Bounded loop: `while (lN < trip) { body; lN = lN + 1; }`.
    Loop(u8, Vec<StmtR>),
}

#[derive(Debug, Clone)]
enum ExprR {
    Lit(i8),
    Var(u8),
    ReadA(Box<ExprR>),
    Bin(u8, Box<ExprR>, Box<ExprR>),
    Cmp(u8, Box<ExprR>, Box<ExprR>),
}

fn expr_r() -> impl Strategy<Value = ExprR> {
    let leaf = prop_oneof![
        any::<i8>().prop_map(ExprR::Lit),
        (0u8..5).prop_map(ExprR::Var),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| ExprR::ReadA(Box::new(e))),
            ((0u8..8), inner.clone(), inner.clone())
                .prop_map(|(op, a, b)| ExprR::Bin(op, Box::new(a), Box::new(b))),
            ((0u8..6), inner.clone(), inner)
                .prop_map(|(op, a, b)| ExprR::Cmp(op, Box::new(a), Box::new(b))),
        ]
    })
}

fn stmt_r(depth: u32) -> BoxedStrategy<StmtR> {
    let leaf = prop_oneof![
        ((0u8..5), expr_r()).prop_map(|(v, e)| StmtR::Assign(v, e)),
        (expr_r(), expr_r()).prop_map(|(i, v)| StmtR::StoreA(i, v)),
        (expr_r(), expr_r()).prop_map(|(i, v)| StmtR::StoreOut(i, v)),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        prop_oneof![
            4 => leaf,
            1 => (expr_r(), proptest::collection::vec(stmt_r(depth - 1), 0..3),
                  proptest::collection::vec(stmt_r(depth - 1), 0..3))
                .prop_map(|(c, t, e)| StmtR::If(c, t, e)),
            1 => ((2u8..6), proptest::collection::vec(stmt_r(depth - 1), 1..3))
                .prop_map(|(trip, body)| StmtR::Loop(trip, body)),
        ]
        .boxed()
    }
}

fn render_expr(e: &ExprR) -> String {
    match e {
        ExprR::Lit(n) => format!("({n})"),
        ExprR::Var(v) => format!("v{}", v % 5),
        ExprR::ReadA(i) => format!("a[{}]", render_expr(i)),
        ExprR::Bin(op, a, b) => {
            let ops = ["+", "-", "*", "&", "|", "^", "<<", ">>"];
            format!("({} {} {})", render_expr(a), ops[*op as usize % 8], render_expr(b))
        }
        ExprR::Cmp(op, a, b) => {
            let ops = ["<", "<=", ">", ">=", "==", "!="];
            format!("({} {} {})", render_expr(a), ops[*op as usize % 6], render_expr(b))
        }
    }
}

fn render_stmts(stmts: &[StmtR], loop_counter: &mut u32, out: &mut String, indent: usize) {
    let pad = "  ".repeat(indent);
    for s in stmts {
        match s {
            StmtR::Assign(v, e) => {
                out.push_str(&format!("{pad}v{} = {};\n", v % 5, render_expr(e)));
            }
            StmtR::StoreA(i, v) => {
                out.push_str(&format!("{pad}a[{}] = {};\n", render_expr(i), render_expr(v)));
            }
            StmtR::StoreOut(i, v) => {
                out.push_str(&format!("{pad}out[{}] = {};\n", render_expr(i), render_expr(v)));
            }
            StmtR::If(c, t, e) => {
                out.push_str(&format!("{pad}if ({}) {{\n", render_expr(c)));
                render_stmts(t, loop_counter, out, indent + 1);
                out.push_str(&format!("{pad}}} else {{\n"));
                render_stmts(e, loop_counter, out, indent + 1);
                out.push_str(&format!("{pad}}}\n"));
            }
            StmtR::Loop(trip, body) => {
                let l = *loop_counter;
                *loop_counter += 1;
                out.push_str(&format!("{pad}var l{l} = 0;\n"));
                out.push_str(&format!("{pad}while (l{l} < {trip}) {{\n"));
                render_stmts(body, loop_counter, out, indent + 1);
                out.push_str(&format!("{}l{l} = l{l} + 1;\n", "  ".repeat(indent + 1)));
                out.push_str(&format!("{pad}}}\n"));
            }
        }
    }
}

fn render_program(stmts: &[StmtR]) -> String {
    let mut body = String::new();
    let mut lc = 0;
    render_stmts(stmts, &mut lc, &mut body, 1);
    format!(
        "array a[8] = [3, 1, 4, 1, 5, 9, 2, 6];\noutput out[16];\nfunc main() {{\n  \
         var v0 = 1; var v1 = 2; var v2 = 3; var v3 = 4; var v4 = 5;\n{body}  \
         out[15] = v0 + v1 + v2 + v3 + v4;\n}}\n"
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn random_programs_check_and_agree(stmts in proptest::collection::vec(stmt_r(2), 1..8)) {
        let src = render_program(&stmts);
        let mut c = match compile(&src, &CompileOptions::default()) {
            Ok(c) => c,
            Err(e) => panic!("generated program failed to compile: {e}\n{src}"),
        };
        // (a) the reliability transformation always yields well-typed code
        check_program(&c.protected.program, &mut c.protected.arena)
            .unwrap_or_else(|e| panic!("checker rejected compiled output: {e}\n{src}"));
        // (b) differential execution
        let reference = interpret(&c.vir, 2_000_000);
        prop_assume!(reference.halted); // (budget exhaustion: skip, cannot happen with bounded loops)
        let prot = run_program(&c.protected.program, 20_000_000);
        prop_assert_eq!(prot.status, Status::Halted, "protected did not halt\n{}", src);
        prop_assert_eq!(&prot.trace, &reference.trace, "protected trace diverged\n{}", src);
        let base = run_program(&c.baseline.program, 20_000_000);
        prop_assert_eq!(&base.trace, &reference.trace, "baseline trace diverged\n{}", src);
    }
}
