//! Randomized (seeded, dependency-free) property test: for *random* Wile
//! programs, the compiler's protected output (a) always type-checks — the
//! reliability transformation is correct by construction, exactly the
//! paper's "debug compilers that intend to generate reliable code" use case
//! — and (b) executes on the faulty machine with a trace identical to the
//! VIR reference interpreter (and to the unprotected baseline).
//!
//! Program generation lives in `talft_testutil::wile` (shared with the
//! checker-soundness fuzz and the mutation oracle). On failure, the
//! integrated shrinker minimizes the statement recipe before panicking, so
//! the report carries the *smallest* failing program plus the seed to
//! reproduce it.

use talft::compiler::{compile, vir::interpret, CompileOptions};
use talft::core::check_program;
use talft::machine::{run_program, Status};
use talft_testutil::shrink::minimize;
use talft_testutil::wile::{random_stmts, render_program, shrink_candidates, StmtR};
use talft_testutil::SplitMix64;

const SEED: u64 = 0xC0DE_2026;

/// Run the full property on one program; `Some(description)` on failure,
/// `None` if it holds (or is vacuous — reference budget exhausted).
fn property_failure(stmts: &[StmtR]) -> Option<String> {
    let src = render_program(stmts);
    let mut c = match compile(&src, &CompileOptions::default()) {
        Ok(c) => c,
        Err(e) => return Some(format!("generated program failed to compile: {e}")),
    };
    // (a) the reliability transformation always yields well-typed code
    if let Err(e) = check_program(&c.protected.program, &mut c.protected.arena) {
        return Some(format!("checker rejected compiled output: {e}"));
    }
    // (b) differential execution
    let reference = interpret(&c.vir, 2_000_000);
    if !reference.halted {
        return None; // budget exhaustion: vacuous (cannot happen with bounded loops)
    }
    let prot = run_program(&c.protected.program, 20_000_000);
    if prot.status != Status::Halted {
        return Some(format!("protected did not halt ({:?})", prot.status));
    }
    if prot.trace != reference.trace {
        return Some("protected trace diverged from the VIR reference".into());
    }
    let base = run_program(&c.baseline.program, 20_000_000);
    if base.trace != reference.trace {
        return Some("baseline trace diverged from the VIR reference".into());
    }
    None
}

#[test]
fn random_programs_check_and_agree() {
    let mut rng = SplitMix64::new(SEED);
    for case in 0..48 {
        let stmts = random_stmts(&mut rng, 2, 1, 8);
        let Some(why) = property_failure(&stmts) else {
            continue;
        };
        // Shrink to the smallest recipe that still fails (any failure mode
        // counts — a shrunk input may fail for a simpler reason, which is
        // exactly what we want on the operator's screen).
        let minimal = minimize(
            stmts,
            |s| shrink_candidates(s),
            |s| property_failure(s).is_some(),
            2_000,
        );
        let minimal_why = property_failure(&minimal).unwrap_or_else(|| why.clone());
        panic!(
            "case {case} (seed {SEED:#x}): {minimal_why}\n\
             minimal failing program:\n{}",
            render_program(&minimal)
        );
    }
}
