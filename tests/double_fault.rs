//! Tightness of the fault model: TAL_FT guarantees fault tolerance under
//! the **Single** Event Upset assumption (§2.1, "we will work under the
//! standard assumption of a single upset event"). This test shows the
//! assumption is *necessary*: two coordinated faults — one per color —
//! defeat the dual-modular comparison and produce silent data corruption
//! even in a well-typed program.
//!
//! This is not a bug; it is the precise boundary of Theorem 4, made
//! executable.

use std::sync::Arc;

use talft::core::check_program;
use talft::isa::{assemble, Reg};
use talft::machine::{inject, run, FaultSite, Machine, Status};

const PROTECTED: &str = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  mov r3, B 5
  mov r4, B 4096
  stB r4, r3
  halt
"#;

#[test]
fn coordinated_double_fault_defeats_detection() {
    let mut asm = assemble(PROTECTED).expect("assembles");
    check_program(&asm.program, &mut asm.arena).expect("well-typed");
    let p = Arc::new(asm.program);

    // Corrupt the green value right after its mov (before stG enqueues it)…
    let mut m = Machine::boot(Arc::clone(&p));
    while m.steps() < 2 {
        talft::machine::step(&mut m);
    }
    inject(&mut m, FaultSite::Reg(Reg::r(1)), 666);
    // …and the blue value right after *its* mov (before stB compares) —
    // two coordinated SEUs, one per color, outside the paper's model.
    while m.steps() < 8 {
        talft::machine::step(&mut m);
    }
    inject(&mut m, FaultSite::Reg(Reg::r(3)), 666);
    let r = run(&mut m, 10_000);

    // The comparison passes — both copies agree — and corrupt data reaches
    // the output device: silent data corruption.
    assert_eq!(r.status, Status::Halted);
    assert_eq!(m.trace(), &[(4096, 666)], "double fault escaped detection");
}

#[test]
fn uncoordinated_double_faults_are_usually_caught_or_masked() {
    // Two faults of the *same* color still cannot corrupt the other stream;
    // the comparison catches any disagreement they cause.
    let asm = assemble(PROTECTED).expect("assembles");
    let p = Arc::new(asm.program);
    let mut sdc = 0;
    for (v1, v2) in [(666, 667), (1, 2), (-1, -2)] {
        let mut m = Machine::boot(Arc::clone(&p));
        while m.steps() < 8 {
            talft::machine::step(&mut m);
        }
        inject(&mut m, FaultSite::Reg(Reg::r(1)), v1); // green value
        inject(&mut m, FaultSite::Reg(Reg::r(2)), v2); // green address
        let r = run(&mut m, 10_000);
        if r.status == Status::Halted && m.trace() != [(4096, 5)] && !m.trace().is_empty() {
            sdc += 1;
        }
    }
    assert_eq!(sdc, 0, "same-color double faults must still be caught");
}

#[test]
fn single_fault_guarantee_is_exact_here() {
    // Sanity: every *single* fault at the same point is caught or masked —
    // the contrast that makes the double-fault case meaningful.
    let asm = assemble(PROTECTED).expect("assembles");
    let p = Arc::new(asm.program);
    for value in [666, -1, 0, 9999] {
        for reg in 0..8 {
            let mut m = Machine::boot(Arc::clone(&p));
            while m.steps() < 8 {
                talft::machine::step(&mut m);
            }
            inject(&mut m, FaultSite::Reg(Reg::r(reg)), value);
            let r = run(&mut m, 10_000);
            match r.status {
                Status::Halted => {
                    assert!(
                        m.trace() == [(4096, 5)],
                        "single fault in r{reg}←{value} escaped: {:?}",
                        m.trace()
                    );
                }
                Status::Fault => {
                    assert!(m.trace().is_empty() || m.trace() == [(4096, 5)]);
                }
                other => panic!("unexpected status {other:?}"),
            }
        }
    }
}
