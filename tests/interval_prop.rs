//! Interval/pcache transparency over whole compiled programs (E21
//! satellite, mirroring `entail_cache_prop.rs`): the interval pre-solver
//! and the persistent cross-run verdict cache in `talft_logic` must both
//! be *semantically invisible* — for any program the checker reaches a
//! bit-identical verdict, and renders identical diagnostics (including the
//! solver failure-witness notes), across all four combinations of
//! {interval off, on} × {pcache disabled, enabled}.
//!
//! The in-crate unit tests cover each layer's mechanics in isolation
//! (`talft_logic` `interval_tests`, `crates/logic/tests/pcache.rs`); this
//! test drives the *real* query distribution: fixed kernels plus
//! generatively fuzzed Wile sources compiled through the full reliability
//! transformation, and hand-written ill-typed `.talft` programs whose
//! rejection diagnostics carry entailment witnesses. The pcache-enabled
//! combinations share ONE backing file across both interval modes — keys
//! are canonical-normal-form based and mode-independent, so a verdict
//! recorded with the interval layer off must replay bit-identically with
//! it on (and vice versa). Any divergence is a solver unsoundness.
//!
//! Both knobs are process-global, which is why this lives in its own
//! integration-test binary: the combinations run serially and the ambient
//! state is restored at the end.

use talft::compiler::{compile, CompileOptions};
use talft::core::check_program;
use talft::isa::assemble;
use talft::logic::{clear_solver_cache, load_solver_cache, save_solver_cache, set_entail_interval};
use talft_testutil::wile::{random_stmts, render_program};
use talft_testutil::SplitMix64;

const GEN_SEED: u64 = 0xCAC4_E5EE;

/// Ill-typed `.talft` fixtures whose diagnostics carry witness notes; the
/// rendered text (message + every `= note:` line) must be mode-invariant.
const REJECTED: &[&str] = &[
    // §2.2-style store mismatch by a rigid constant: the witness names the
    // residue ("the sides differ by the constant 1").
    r#"
.data
region out at 4096 len 2 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  mov r3, B 5
  mov r4, B 4097
  stB r4, r3
  halt
"#,
    // Symbolic mismatch: no fact relates x and y, so the witness reports
    // the unbounded atom.
    r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall x:int, y:int, m:mem; r1: (G, int, x); r3: (B, int, y); mem: m; }
  mov r2, G 4096
  stG r2, r1
  mov r4, B 4096
  stB r4, r3
  halt
"#,
];

/// One full pass over the corpus under the ambient (knob-set) solver mode:
/// compile-and-check every Wile source, assemble-and-check every rejection
/// fixture. Returns everything the modes must agree on.
fn run_corpus(wile: &[String]) -> (Vec<Result<(), String>>, Vec<String>) {
    let verdicts = wile
        .iter()
        .map(|src| {
            let mut c = compile(src, &CompileOptions::default()).expect("fuzzed source compiles");
            check_program(&c.protected.program, &mut c.protected.arena)
                .map(|_| ())
                .map_err(|e| e.to_string())
        })
        .collect();
    let diags = REJECTED
        .iter()
        .map(|src| {
            let mut asm = assemble(src).expect("fixture assembles");
            let e = check_program(&asm.program, &mut asm.arena).expect_err("fixture is ill-typed");
            assert!(
                !e.notes.is_empty(),
                "rejection fixture must carry a witness note: {e}"
            );
            e.to_diagnostic().render()
        })
        .collect();
    (verdicts, diags)
}

#[test]
fn solver_modes_are_verdict_and_diagnostic_identical() {
    let fixed = [
        "output out[2]; func main() { var a = 6; var b = 7; out[0] = a * b; out[1] = a + b; }"
            .to_string(),
        "array t[4] = [9, 2, 7, 4]; output out[4]; func main() { var i = 0; \
         while (i < 4) { out[i] = t[i] + i; i = i + 1; } }"
            .to_string(),
        "output out[1]; func main() { var i = 0; var s = 0; \
         while (i < 6) { if (i & 1 == 1) { s = s + i; } i = i + 1; } out[0] = s; }"
            .to_string(),
    ];
    let generated: Vec<String> = (0..8)
        .map(|k| {
            let mut r = SplitMix64::new(GEN_SEED + k);
            render_program(&random_stmts(&mut r, 2, 2, 6))
        })
        .collect();
    let wile: Vec<String> = fixed.iter().chain(&generated).cloned().collect();

    let cache_file = std::env::temp_dir().join(format!(
        "talft-interval-prop-{}.solvercache",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&cache_file);

    let ambient = talft::logic::entail_interval_enabled();
    // Order matters for coverage: the first pcache pass (interval OFF)
    // records FM verdicts cold; the second (interval ON) replays them warm
    // across the mode boundary.
    let combos = [(false, false), (true, false), (false, true), (true, true)];
    let mut results = Vec::new();
    for (interval, pcache) in combos {
        set_entail_interval(interval);
        clear_solver_cache();
        if pcache {
            load_solver_cache(&cache_file);
        }
        results.push(run_corpus(&wile));
        if pcache {
            save_solver_cache().expect("cache file writes");
        }
    }
    clear_solver_cache();
    set_entail_interval(ambient);
    let _ = std::fs::remove_file(&cache_file);

    let (baseline_verdicts, baseline_diags) = &results[0];
    for (src_i, v) in baseline_verdicts.iter().enumerate() {
        assert_eq!(
            v,
            &Ok(()),
            "source {src_i}: compiled program must check\n--- source ---\n{}",
            wile[src_i]
        );
    }
    for ((interval, pcache), (verdicts, diags)) in combos.iter().zip(&results).skip(1) {
        assert_eq!(
            verdicts, baseline_verdicts,
            "interval={interval} pcache={pcache} changed a checker verdict"
        );
        assert_eq!(
            diags, baseline_diags,
            "interval={interval} pcache={pcache} changed a rendered diagnostic"
        );
    }
    // The witness notes themselves are part of the cross-mode contract.
    assert!(
        baseline_diags
            .iter()
            .any(|d| d.contains("= note: cannot prove")),
        "no rejection diagnostic rendered a solver witness:\n{baseline_diags:?}"
    );
}
