//! Checker-soundness fuzzing — the strongest dynamic evidence we can give
//! for the paper's central theorem short of re-proving it.
//!
//! Method: start from well-typed compiled programs and apply random
//! single-instruction **mutations** (change a register, flip a color, swap
//! an opcode, perturb an immediate) — the space of plausible compiler bugs.
//! For each mutant:
//!
//! * if the checker **accepts** it, Theorem 4 must hold: a sampled fault
//!   campaign must find zero silent data corruption — otherwise the checker
//!   has a soundness hole;
//! * (diagnostics) if the campaign finds SDC, the checker must have
//!   rejected — we count how often rejection was "justified" this way.
//!
//! The asymmetry is deliberate: an accepted-but-SDC mutant is a *bug in
//! this reproduction*; a rejected-but-harmless mutant is just the type
//! system's conservativity, which the paper accepts by design.

use std::sync::Arc;

use talft_testutil::SplitMix64;

use talft::compiler::{compile, CompileOptions};
use talft::core::check_program;
use talft::faultsim::{golden_run, run_campaign_against, CampaignConfig};
use talft::isa::{CVal, Gpr, Instr, OpSrc, Program};
use talft::machine::Status;

fn mutate(program: &Program, rng: &mut SplitMix64) -> Option<Program> {
    let mut p = program.clone();
    let idx = rng.index(p.instrs.len());
    let instr = &mut p.instrs[idx];
    let flip_gpr = |g: &Gpr, rng: &mut SplitMix64| Gpr((g.0 + rng.range_u64(1, 4) as u16) % 16);
    match rng.below(4) {
        // register substitution (wrong-operand bugs)
        0 => match instr {
            Instr::Op { rs, .. } => *rs = flip_gpr(rs, rng),
            Instr::Mov { rd, .. } => *rd = flip_gpr(rd, rng),
            Instr::Ld { rs, .. } => *rs = flip_gpr(rs, rng),
            Instr::St { rs, .. } => *rs = flip_gpr(rs, rng),
            Instr::Bz { rz, .. } => *rz = flip_gpr(rz, rng),
            Instr::Jmp { rd, .. } => *rd = flip_gpr(rd, rng),
            Instr::Halt => return None,
        },
        // color flip (lost-duplication bugs)
        1 => match instr {
            Instr::Ld { color, .. }
            | Instr::St { color, .. }
            | Instr::Bz { color, .. }
            | Instr::Jmp { color, .. } => *color = color.other(),
            Instr::Mov { v, .. } => v.color = v.color.other(),
            Instr::Op {
                src2: OpSrc::Imm(v),
                ..
            } => v.color = v.color.other(),
            _ => return None,
        },
        // immediate perturbation (wrong-constant bugs)
        2 => match instr {
            Instr::Mov { v, .. } => *v = CVal::new(v.color, v.val.wrapping_add(1)),
            Instr::Op {
                src2: OpSrc::Imm(v),
                ..
            } => {
                *v = CVal::new(v.color, v.val.wrapping_add(1));
            }
            _ => return None,
        },
        // opcode swap st<->ld (wrong-instruction bugs)
        _ => match *instr {
            Instr::St { color, rd, rs } => *instr = Instr::Ld { color, rd, rs },
            Instr::Ld { color, rd, rs } => *instr = Instr::St { color, rd, rs },
            _ => return None,
        },
    }
    Some(p)
}

#[test]
fn accepted_mutants_are_never_sdc_vulnerable() {
    let sources = [
        "output out[2]; func main() { var a = 6; var b = 7; out[0] = a * b; out[1] = a + b; }",
        "array t[4] = [9, 2, 7, 4]; output out[4]; func main() { var i = 0; \
         while (i < 4) { out[i] = t[i] + i; i = i + 1; } }",
        "output out[1]; func main() { var i = 0; var s = 0; \
         while (i < 6) { if (i & 1 == 1) { s = s + i; } i = i + 1; } out[0] = s; }",
    ];
    let mut rng = SplitMix64::new(0xF417_70CE);
    let cfg = CampaignConfig {
        stride: 17,
        mutations_per_site: 2,
        ..Default::default()
    };

    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let mut rejected_with_real_sdc = 0u32;

    for src in sources {
        let base = compile(src, &CompileOptions::default()).expect("compiles");
        for _ in 0..120 {
            let Some(mutant) = mutate(&base.protected.program, &mut rng) else {
                continue;
            };
            // re-seed a fresh arena by recompiling (the arena matches the
            // original program; mutations don't add expressions)
            let mut arena_owner = compile(src, &CompileOptions::default()).expect("compiles");
            let mutant = Arc::new(mutant);
            match check_program(&mutant, &mut arena_owner.protected.arena) {
                Ok(_) => {
                    accepted += 1;
                    // Soundness: an accepted mutant must be fault tolerant.
                    let golden = golden_run(&mutant, &cfg).unwrap_or_else(|e| {
                        panic!("checker accepted a mutant whose fault-free run diverges: {e}")
                    });
                    if golden.status != Status::Halted {
                        // accepted programs must also run clean fault-free
                        // (No False Positives + Progress)
                        panic!(
                            "checker accepted a mutant whose fault-free run ends {:?}",
                            golden.status
                        );
                    }
                    let rep = run_campaign_against(&mutant, &cfg, &golden);
                    assert!(
                        rep.fault_tolerant(),
                        "SOUNDNESS HOLE: accepted mutant has {} SDC / {} other violations",
                        rep.sdc,
                        rep.other_violations
                    );
                }
                Err(_) => {
                    rejected += 1;
                    // Diagnostics: how many rejects correspond to real SDC?
                    // A diverging mutant (budget exhausted) counts as an
                    // obviously-right rejection, like a crashing one.
                    let Ok(golden) = golden_run(&mutant, &cfg) else {
                        rejected_with_real_sdc += 1;
                        continue;
                    };
                    if golden.status == Status::Halted {
                        let rep = run_campaign_against(&mutant, &cfg, &golden);
                        if rep.sdc > 0 {
                            rejected_with_real_sdc += 1;
                        }
                    } else {
                        // mutant crashes on its own: rejection obviously right
                        rejected_with_real_sdc += 1;
                    }
                }
            }
        }
    }

    // The mutation operators are designed to break typing most of the time;
    // sanity-check the fuzz actually exercised both paths.
    assert!(
        rejected > 50,
        "mutation fuzz too weak: {rejected} rejections"
    );
    assert!(
        rejected_with_real_sdc > 0,
        "at least some rejections should correspond to demonstrable SDC"
    );
    // `accepted` may be small (mutants that happen to be harmless renames);
    // every accepted one was campaign-verified above.
    println!(
        "fuzz: {accepted} accepted (all campaign-clean), {rejected} rejected \
         ({rejected_with_real_sdc} with demonstrable SDC or crashes)"
    );
}
