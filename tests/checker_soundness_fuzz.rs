//! Checker-soundness fuzzing — the strongest dynamic evidence we can give
//! for the paper's central theorem short of re-proving it.
//!
//! Method: start from well-typed compiled programs — three fixed kernels
//! plus generatively fuzzed Wile sources from `talft_testutil::wile` — and
//! apply random single-instruction **mutations** (change a register, flip a
//! color, swap an opcode, perturb an immediate) — the space of plausible
//! compiler bugs. (The *systematic* operator catalog lives in
//! `talft-oracle`; this test keeps the cheap randomized angle.) For each
//! mutant:
//!
//! * if the checker **accepts** it, Theorem 4 must hold: a sampled fault
//!   campaign must find zero silent data corruption — otherwise the checker
//!   has a soundness hole. Before panicking, the failing fault plan is
//!   **shrunk** (earliest step, simplest corrupted value) so the report
//!   carries a minimal, seed-reproducible witness;
//! * (diagnostics) if the campaign finds SDC, the checker must have
//!   rejected — we count how often rejection was "justified" this way.
//!
//! The asymmetry is deliberate: an accepted-but-SDC mutant is a *bug in
//! this reproduction*; a rejected-but-harmless mutant is just the type
//! system's conservativity, which the paper accepts by design.

use std::sync::Arc;

use talft_testutil::shrink::minimize;
use talft_testutil::wile::{random_stmts, render_program};
use talft_testutil::SplitMix64;

use talft::compiler::{compile, CompileOptions};
use talft::core::check_program;
use talft::faultsim::{
    golden_run, run_campaign_against, run_plan_campaign, CampaignConfig, FaultPlan, Golden,
    Injection,
};
use talft::isa::{CVal, Gpr, Instr, OpSrc, Program};
use talft::machine::Status;

const GEN_SEED: u64 = 0x51DE_CA5E;

fn mutate(program: &Program, rng: &mut SplitMix64) -> Option<Program> {
    let mut p = program.clone();
    let idx = rng.index(p.instrs.len());
    let instr = &mut p.instrs[idx];
    let flip_gpr = |g: &Gpr, rng: &mut SplitMix64| Gpr((g.0 + rng.range_u64(1, 4) as u16) % 16);
    match rng.below(4) {
        // register substitution (wrong-operand bugs)
        0 => match instr {
            Instr::Op { rs, .. } => *rs = flip_gpr(rs, rng),
            Instr::Mov { rd, .. } => *rd = flip_gpr(rd, rng),
            Instr::Ld { rs, .. } => *rs = flip_gpr(rs, rng),
            Instr::St { rs, .. } => *rs = flip_gpr(rs, rng),
            Instr::Bz { rz, .. } => *rz = flip_gpr(rz, rng),
            Instr::Jmp { rd, .. } => *rd = flip_gpr(rd, rng),
            Instr::Halt => return None,
        },
        // color flip (lost-duplication bugs)
        1 => match instr {
            Instr::Ld { color, .. }
            | Instr::St { color, .. }
            | Instr::Bz { color, .. }
            | Instr::Jmp { color, .. } => *color = color.other(),
            Instr::Mov { v, .. } => v.color = v.color.other(),
            Instr::Op {
                src2: OpSrc::Imm(v),
                ..
            } => v.color = v.color.other(),
            _ => return None,
        },
        // immediate perturbation (wrong-constant bugs)
        2 => match instr {
            Instr::Mov { v, .. } => *v = CVal::new(v.color, v.val.wrapping_add(1)),
            Instr::Op {
                src2: OpSrc::Imm(v),
                ..
            } => {
                *v = CVal::new(v.color, v.val.wrapping_add(1));
            }
            _ => return None,
        },
        // opcode swap st<->ld (wrong-instruction bugs)
        _ => match *instr {
            Instr::St { color, rd, rs } => *instr = Instr::Ld { color, rd, rs },
            Instr::Ld { color, rd, rs } => *instr = Instr::St { color, rd, rs },
            _ => return None,
        },
    }
    Some(p)
}

/// Does this single-strike plan still demonstrate a Theorem 4 violation?
fn still_violates(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    golden: &Golden,
    step: u64,
    site: talft::machine::FaultSite,
    value: i64,
) -> bool {
    let plan = FaultPlan::single(step, site, value);
    let rep = run_plan_campaign(program, cfg, golden, &[plan]);
    !rep.fault_tolerant()
}

/// Shrink a violation witness to the earliest step and simplest corrupted
/// value that still breaks Theorem 4, so the panic message is actionable.
fn shrink_witness(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    golden: &Golden,
    v: &Injection,
) -> (u64, i64) {
    minimize(
        (v.at_step, v.value),
        |&(step, value)| {
            let mut cands = Vec::new();
            if step > 0 {
                cands.push((step / 2, value));
                cands.push((step - 1, value));
            }
            if value != 0 {
                cands.push((step, 0));
                cands.push((step, value / 2));
            }
            cands
        },
        |&(step, value)| still_violates(program, cfg, golden, step, v.site, value),
        200,
    )
}

#[test]
fn accepted_mutants_are_never_sdc_vulnerable() {
    let fixed = [
        "output out[2]; func main() { var a = 6; var b = 7; out[0] = a * b; out[1] = a + b; }"
            .to_string(),
        "array t[4] = [9, 2, 7, 4]; output out[4]; func main() { var i = 0; \
         while (i < 4) { out[i] = t[i] + i; i = i + 1; } }"
            .to_string(),
        "output out[1]; func main() { var i = 0; var s = 0; \
         while (i < 6) { if (i & 1 == 1) { s = s + i; } i = i + 1; } out[0] = s; }"
            .to_string(),
    ];
    // Generative sources: the wile fuzzer feeds this test the same way it
    // feeds prop_compile and the mutation oracle.
    let generated: Vec<String> = (0..3)
        .map(|k| {
            let mut r = SplitMix64::new(GEN_SEED + k);
            render_program(&random_stmts(&mut r, 2, 2, 6))
        })
        .collect();
    let sources: Vec<String> = fixed.into_iter().chain(generated).collect();

    let mut rng = SplitMix64::new(0xF417_70CE);
    let cfg = CampaignConfig {
        stride: 17,
        mutations_per_site: 2,
        ..Default::default()
    };

    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let mut rejected_with_real_sdc = 0u32;

    for (src_idx, src) in sources.iter().enumerate() {
        let base = compile(src, &CompileOptions::default()).expect("compiles");
        for _ in 0..80 {
            let Some(mutant) = mutate(&base.protected.program, &mut rng) else {
                continue;
            };
            // re-seed a fresh arena by recompiling (the arena matches the
            // original program; mutations don't add expressions)
            let mut arena_owner = compile(src, &CompileOptions::default()).expect("compiles");
            let mutant = Arc::new(mutant);
            match check_program(&mutant, &mut arena_owner.protected.arena) {
                Ok(_) => {
                    accepted += 1;
                    // Soundness: an accepted mutant must be fault tolerant.
                    let golden = golden_run(&mutant, &cfg).unwrap_or_else(|e| {
                        panic!("checker accepted a mutant whose fault-free run diverges: {e}")
                    });
                    if golden.status != Status::Halted {
                        // accepted programs must also run clean fault-free
                        // (No False Positives + Progress)
                        panic!(
                            "checker accepted a mutant whose fault-free run ends {:?}",
                            golden.status
                        );
                    }
                    let rep = run_campaign_against(&mutant, &cfg, &golden);
                    if !rep.fault_tolerant() {
                        let witness = rep
                            .violations
                            .first()
                            .expect("non-tolerant report carries a counterexample");
                        let (step, value) = shrink_witness(&mutant, &cfg, &golden, witness);
                        panic!(
                            "SOUNDNESS HOLE (source {src_idx}): accepted mutant has {} SDC / {} \
                             other violations; minimal witness: {:?} at step {step} <- {value} \
                             (shrunk from step {} <- {})",
                            rep.sdc,
                            rep.other_violations,
                            witness.site,
                            witness.at_step,
                            witness.value
                        );
                    }
                }
                Err(_) => {
                    rejected += 1;
                    // Diagnostics: how many rejects correspond to real SDC?
                    // A diverging mutant (budget exhausted) counts as an
                    // obviously-right rejection, like a crashing one.
                    let Ok(golden) = golden_run(&mutant, &cfg) else {
                        rejected_with_real_sdc += 1;
                        continue;
                    };
                    if golden.status == Status::Halted {
                        let rep = run_campaign_against(&mutant, &cfg, &golden);
                        if rep.sdc > 0 {
                            rejected_with_real_sdc += 1;
                        }
                    } else {
                        // mutant crashes on its own: rejection obviously right
                        rejected_with_real_sdc += 1;
                    }
                }
            }
        }
    }

    // The mutation operators are designed to break typing most of the time;
    // sanity-check the fuzz actually exercised both paths.
    assert!(
        rejected > 50,
        "mutation fuzz too weak: {rejected} rejections"
    );
    assert!(
        rejected_with_real_sdc > 0,
        "at least some rejections should correspond to demonstrable SDC"
    );
    // `accepted` may be small (mutants that happen to be harmless renames);
    // every accepted one was campaign-verified above.
    println!(
        "fuzz: {accepted} accepted (all campaign-clean), {rejected} rejected \
         ({rejected_with_real_sdc} with demonstrable SDC or crashes)"
    );
}
