//! Integration: the k-fault campaign engine against compiled benchmark
//! kernels — the E13 boundary experiment as a test.
//!
//! Theorem 4 is indexed to a **single** upset per run. These tests pin both
//! sides of that boundary on the same binaries with the same engine:
//!
//! * at `k = 1` the sampled campaign must stay clean (zero SDC) — the
//!   theorem's promise;
//! * at `k = 2` the stratified + correlated sampler must *find* silent data
//!   corruption in well-typed code — the promise's limit, the coordinated
//!   cross-color pattern of `tests/double_fault.rs` discovered
//!   automatically instead of hand-constructed.

use std::sync::Arc;

use talft::compiler::{compile, CompileOptions};
use talft::faultsim::{
    golden_run, run_multi_campaign, run_plan_campaign, CampaignConfig, FaultPlan, Strike, Verdict,
};
use talft::isa::{assemble, Reg};
use talft::machine::FaultSite;
use talft::suite::{kernels, Scale};

fn cfg() -> CampaignConfig {
    CampaignConfig {
        threads: 2,
        pair_samples: 768,
        max_steps: 10_000_000,
        ..CampaignConfig::default()
    }
}

/// The k=2 sampler finds SDC in protected, type-checked binaries — the
/// single-upset model boundary is real and measurable — while detection
/// still catches a substantial share of double faults.
#[test]
fn k2_campaign_finds_sdc_on_a_protected_kernel() {
    let mut total_sdc = 0u64;
    let mut total = 0u64;
    let mut detected = 0u64;
    for k in kernels(Scale::Tiny).into_iter().take(3) {
        let c = compile(&k.source, &CompileOptions::default()).expect("compiles");
        let rep = run_multi_campaign(&c.protected.program, &cfg(), 2).expect("golden halts");
        assert!(rep.total > 0, "{}: empty k=2 campaign", k.name);
        assert_eq!(rep.fault_order, 2, "{}", k.name);
        assert!(!rep.within_fault_model(), "{}", k.name);
        assert_eq!(rep.engine_errors, 0, "{}: engine must stay healthy", k.name);
        total_sdc += rep.sdc;
        detected += rep.detected;
        total += rep.total;
    }
    assert!(
        total_sdc > 0,
        "the correlated k=2 sampler must breach dual-modular detection somewhere \
         ({total} plans, {detected} detected)"
    );
    assert!(detected > 0, "most double faults should still be detected");
}

/// The same engine, same kernels, at k=1: Theorem 4 holds — zero SDC. The
/// contrast with the k=2 result above is the entire point of E13.
#[test]
fn k1_campaign_on_same_kernels_stays_clean() {
    for k in kernels(Scale::Tiny).into_iter().take(3) {
        let c = compile(&k.source, &CompileOptions::default()).expect("compiles");
        let mut sampled = cfg();
        sampled.stride = 37; // thin the exhaustive sweep for test time
        let rep = run_multi_campaign(&c.protected.program, &sampled, 1).expect("golden halts");
        assert!(rep.total > 0, "{}: empty campaign", k.name);
        assert!(rep.within_fault_model(), "{}", k.name);
        assert!(
            rep.fault_tolerant(),
            "{}: Theorem 4 violated: {:?}",
            k.name,
            rep.violations
        );
    }
}

const PROTECTED_STORE: &str = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  mov r3, B 5
  mov r4, B 4096
  stB r4, r3
  halt
"#;

/// The hand-built coordinated pair of `tests/double_fault.rs`, expressed as
/// a [`FaultPlan`] and classified by the engine: silent data corruption,
/// exactly as the manual machine driving showed.
#[test]
fn engine_classifies_the_manual_coordinated_pair_as_sdc() {
    let asm = assemble(PROTECTED_STORE).expect("assembles");
    let p = Arc::new(asm.program);
    let campaign = CampaignConfig {
        threads: 1,
        ..CampaignConfig::default()
    };
    let golden = golden_run(&p, &campaign).expect("halts");
    let plan = FaultPlan::new(vec![
        Strike {
            at_step: 2,
            site: FaultSite::Reg(Reg::r(1)),
            value: 666,
        },
        Strike {
            at_step: 8,
            site: FaultSite::Reg(Reg::r(3)),
            value: 666,
        },
    ]);
    let rep = run_plan_campaign(&p, &campaign, &golden, std::slice::from_ref(&plan));
    assert_eq!(rep.total, 1);
    assert_eq!(
        rep.sdc, 1,
        "coordinated pair must escape detection: {rep:?}"
    );
    assert_eq!(rep.violations[0].verdict, Verdict::Sdc);
    assert_eq!(rep.violations[0].followups.len(), 1);
    assert_eq!(rep.fault_order, 2);
}

/// The automated sampler rediscovers what the manual test constructs: on
/// the protected store sequence, some sampled k=2 plan produces SDC.
#[test]
fn sampler_rediscovers_the_coordinated_pair() {
    let asm = assemble(PROTECTED_STORE).expect("assembles");
    let p = Arc::new(asm.program);
    let campaign = CampaignConfig {
        threads: 2,
        pair_samples: 512,
        ..CampaignConfig::default()
    };
    let rep = run_multi_campaign(&p, &campaign, 2).expect("halts");
    assert!(
        rep.sdc > 0,
        "sampler missed the coordinated pattern: {rep:?}"
    );
    assert!(
        rep.violations.iter().any(|v| !v.followups.is_empty()),
        "counterexamples must carry their second strike"
    );
}
