//! **talft** — a complete reproduction of *Fault-tolerant Typed Assembly
//! Language* (Perry, Mackey, Reis, Ligatti, August, Walker; PLDI 2007).
//!
//! TAL_FT is a hybrid hardware/software scheme for detecting transient
//! hardware faults (single-event upsets), with — uniquely for its time — a
//! *proof* that well-typed programs are fault tolerant: no single fault can
//! silently change a program's observable output.
//!
//! This crate is a facade over the workspace:
//!
//! * [`logic`] — static expressions and decision procedures (§3.1, App. A.2);
//! * [`isa`] — the instruction set, type syntax, and `.talft` assembler
//!   (Figures 1 & 5);
//! * [`machine`] — the faulty hardware's small-step semantics and the SEU
//!   fault model (§2, Figure 9);
//! * [`core`] — **the paper's contribution**: the TAL_FT type checker (§3);
//! * [`compiler`] — a Wile→TAL_FT compiler with the green/blue reliability
//!   transformation (§5);
//! * [`sim`] — the in-order timing model behind Figure 10;
//! * [`faultsim`] — exhaustive fault-injection campaigns validating
//!   Theorems 1–4;
//! * [`suite`] — the SPEC/MediaBench-class benchmark kernels;
//! * [`oracle`] — adversarial mutation testing of the checker itself
//!   (differential against the fault campaigns; experiment E14);
//! * [`obs`] — dependency-free, zero-cost-when-disabled metrics/tracing
//!   threaded through the checker, machine, and campaign engine (E15).
//!
//! # Quickstart
//!
//! ```
//! use talft::isa::assemble;
//! use talft::core::check_program;
//! use talft::machine::run_program;
//! use std::sync::Arc;
//!
//! // The paper's §2.2 example: store 5 to address 4096, redundantly.
//! let src = r#"
//! .data
//! region out at 4096 len 1 : int output
//! .code
//! main:
//!   .pre { forall m:mem; mem: m; }
//!   mov r1, G 5
//!   mov r2, G 4096
//!   stG r2, r1
//!   mov r3, B 5
//!   mov r4, B 4096
//!   stB r4, r3
//!   halt
//! "#;
//! let mut asm = assemble(src).unwrap();
//! check_program(&asm.program, &mut asm.arena).expect("provably fault tolerant");
//! let run = run_program(&Arc::new(asm.program), 10_000);
//! assert_eq!(run.trace, vec![(4096, 5)]);
//! ```

#![warn(missing_docs)]

pub use talft_compiler as compiler;
pub use talft_core as core;
pub use talft_faultsim as faultsim;
pub use talft_isa as isa;
pub use talft_logic as logic;
pub use talft_machine as machine;
pub use talft_obs as obs;
pub use talft_oracle as oracle;
pub use talft_sim as sim;
pub use talft_suite as suite;
